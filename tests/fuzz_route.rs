//! Adversarial fault-injection / fuzz harness.
//!
//! Drives the router over a fixed 256-seed range of adversarial
//! instances (`bgr::gen::adversarial`) and asserts the fault-tolerance
//! contract (DESIGN.md §11):
//!
//! 1. no panic escapes `route_checked` — ever;
//! 2. every failure is a structured `RouteError`;
//! 3. `BestEffort` always returns `Routed` with a valid forest of trees;
//! 4. `Fail` and `BestEffort` agree: same trees, and `Fail` errors with
//!    exactly the report `BestEffort` attaches;
//! 5. the seed range contains over-constrained instances, and on every
//!    one of them `Fail` errors while `BestEffort` reports;
//! 6. budget-limited routes still end in trees;
//! 7. injected probe faults surface as `RouteError::Internal` carrying
//!    the fault marker.
//!
//! 8. every `BestEffort` result passes the full independent audit
//!    (`bgr::verify`, DESIGN.md §12) — all six from-scratch oracles.
//!
//! On any violated expectation the failing seed is written to
//! `target/fuzz/failing_seed.txt` (the CI `fuzz-smoke` job uploads it as
//! a repro artifact) before the test panics. Differential failures are
//! first delta-debugged (`bgr::gen::shrink_case`): nets and constraints
//! are dropped while the check still fails, and the minimized shape —
//! counts plus the surviving constraint names — is appended to the
//! artifact so the repro starts small.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bgr::gen::{adversarial_case, shrink_case, AdversarialCase};
use bgr::netlist::NetId;
use bgr::router::{
    Budgets, Fault, FaultProbe, GlobalRouter, OnViolation, Phase, RouteError, Routed, RouterConfig,
    Segment, FAULT_MARKER,
};

const SEEDS: std::ops::Range<u64> = 0..256;

/// Records the first failing seed for the CI repro artifact.
fn record_failure(seed: u64, what: &str) {
    let dir = std::path::Path::new("target/fuzz");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(
        dir.join("failing_seed.txt"),
        format!("seed={seed}\nreason={what}\nrepro: adversarial_case({seed})\n"),
    );
}

/// As [`record_failure`], but first delta-debugs the case down to a
/// minimal repro (`bgr::gen::shrink_case`): nets and constraints are
/// dropped while the differential check still fails, and the minimized
/// shape is appended to the artifact. Shrinking re-routes many reduced
/// candidates, so this only runs on the (fatal) failure path.
fn record_shrunk_failure(seed: u64, what: &str, case: &AdversarialCase) {
    let report = shrink_case(case, |cand| {
        // Any outcome other than "the check fails" — including a panic
        // in the harness itself — rejects the candidate.
        matches!(
            catch_unwind(AssertUnwindSafe(|| check_seed(cand).is_err())),
            Ok(true)
        )
    });
    let dir = std::path::Path::new("target/fuzz");
    let _ = std::fs::create_dir_all(dir);
    let survivors: Vec<&str> = report
        .case
        .design
        .constraints
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let _ = std::fs::write(
        dir.join("failing_seed.txt"),
        format!(
            "seed={seed}\nreason={what}\nrepro: adversarial_case({seed})\n\
             {}\nminimal constraints: {survivors:?}\n",
            report.summary()
        ),
    );
}

/// Asserts `routed` is a valid forest: one tree per net, every tree taps
/// exactly its net's terminals, and the widened placement still
/// validates.
fn assert_valid_forest(routed: &Routed) -> Result<(), String> {
    if routed.result.trees.len() != routed.circuit.nets().len() {
        return Err("tree count != net count".into());
    }
    for (i, tree) in routed.result.trees.iter().enumerate() {
        let net = routed.circuit.net(NetId::new(i));
        let mut tapped: Vec<_> = tree
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Branch { term, .. } => Some(*term),
                _ => None,
            })
            .collect();
        tapped.sort();
        tapped.dedup();
        let mut wanted: Vec<_> = net.terms().collect();
        wanted.sort();
        if tapped != wanted {
            return Err(format!("net {i} tree taps wrong terminal set"));
        }
    }
    routed
        .placement
        .validate(&routed.circuit)
        .map_err(|e| format!("placement invalid after route: {e}"))
}

fn config(on_violation: OnViolation) -> RouterConfig {
    RouterConfig {
        on_violation,
        ..RouterConfig::default()
    }
}

/// The per-seed differential check. Returns whether the instance was
/// over-constrained (for the coverage assertion), or a description of
/// the violated expectation.
fn check_seed(case: &AdversarialCase) -> Result<bool, String> {
    let route = |ov: OnViolation| {
        GlobalRouter::new(config(ov)).route_checked(
            case.design.circuit.clone(),
            case.placement.clone(),
            case.design.constraints.clone(),
        )
    };
    let strict = route(OnViolation::Fail);
    let lax = route(OnViolation::BestEffort);

    // (3) BestEffort always completes with a valid forest.
    let lax = match lax {
        Ok(routed) => {
            assert_valid_forest(&routed)?;
            routed
        }
        Err(e) => return Err(format!("BestEffort failed: {e}")),
    };

    // (8) ... and the result is certified by the independent auditor.
    let report = bgr::verify::audit(
        &lax.circuit,
        &lax.placement,
        &case.design.constraints,
        &config(OnViolation::BestEffort),
        &lax.result,
    );
    if let Some(f) = report.first_failure() {
        return Err(format!("independent audit failed: {f}"));
    }

    // (4) Fail agrees with BestEffort.
    let overconstrained = match strict {
        Ok(routed) => {
            if lax.result.violations.is_some() {
                return Err("Fail succeeded but BestEffort reported violations".into());
            }
            if routed.result.trees != lax.result.trees {
                return Err("Fail and BestEffort disagree on trees".into());
            }
            false
        }
        Err(RouteError::ConstraintsUnsatisfied(report)) => {
            if report.is_empty() {
                return Err("Fail errored with an empty violation report".into());
            }
            match &lax.result.violations {
                Some(lax_report) if *lax_report == report => true,
                Some(_) => return Err("Fail and BestEffort reports differ".into()),
                None => return Err("Fail errored but BestEffort reported nothing".into()),
            }
        }
        Err(e) => return Err(format!("Fail errored non-structurally: {e}")),
    };

    // (5) By-construction infeasible instances must be caught.
    if case.expect_overconstrained && !overconstrained {
        return Err("expected over-constrained instance was not flagged".into());
    }
    Ok(overconstrained)
}

#[test]
fn fuzz_differential_over_adversarial_seeds() {
    let mut overconstrained = 0usize;
    for seed in SEEDS {
        // (1)+(2): nothing in case generation or the differential check
        // may panic; `route_checked` inside converts router panics to
        // structured errors, and this boundary catches harness bugs.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let case = adversarial_case(seed);
            check_seed(&case)
        }));
        match outcome {
            Ok(Ok(true)) => overconstrained += 1,
            Ok(Ok(false)) => {}
            Ok(Err(why)) => {
                record_shrunk_failure(seed, &why, &adversarial_case(seed));
                panic!("seed {seed}: {why}");
            }
            Err(_) => {
                record_failure(seed, "panic escaped the harness");
                panic!("seed {seed}: panic escaped");
            }
        }
    }
    // (5) The seed range must actually exercise the degradation path.
    assert!(
        overconstrained >= 1,
        "no over-constrained instance in {SEEDS:?}"
    );
}

#[test]
fn fuzz_budgeted_routes_still_yield_trees() {
    // A sparse subset (the full differential already covers the seeds):
    // tight deterministic budgets must degrade, never corrupt.
    for seed in SEEDS.filter(|s| s % 16 == 3) {
        let case = adversarial_case(seed);
        let config = RouterConfig {
            budgets: Budgets {
                deletion_steps: Some(1 + seed % 40),
                phase_reroutes: Some(seed % 4),
            },
            ..RouterConfig::default()
        };
        match GlobalRouter::new(config).route_checked(
            case.design.circuit.clone(),
            case.placement.clone(),
            case.design.constraints.clone(),
        ) {
            Ok(routed) => {
                if let Err(why) = assert_valid_forest(&routed) {
                    record_failure(seed, &why);
                    panic!("seed {seed} (budgeted): {why}");
                }
            }
            Err(e) => {
                record_failure(seed, &format!("budgeted route failed: {e}"));
                panic!("seed {seed} (budgeted): {e}");
            }
        }
    }
}

#[test]
fn fuzz_injected_faults_become_internal_errors() {
    // (7) Each fault either trips (Internal carrying the marker) or its
    // threshold is past the run's work (clean success) — nothing else.
    let mut tripped = 0usize;
    for seed in SEEDS.filter(|s| s % 32 == 5) {
        let case = adversarial_case(seed);
        let fault = match seed % 4 {
            0 => Fault::PanicAtEvent(seed % 200),
            1 => Fault::PanicAtRekey(seed % 100),
            2 => Fault::PanicAtDensityRead(seed % 5000),
            _ => Fault::PanicAtPhaseEnter(Phase::InitialRouting),
        };
        let outcome = GlobalRouter::new(RouterConfig::default()).route_checked_with_probe(
            case.design.circuit.clone(),
            case.placement.clone(),
            case.design.constraints.clone(),
            FaultProbe::new(fault),
        );
        match outcome {
            Ok(_) => {}
            Err(RouteError::Internal { phase, message }) => {
                if !message.contains(FAULT_MARKER) {
                    record_failure(seed, &format!("non-injected internal error: {message}"));
                    panic!("seed {seed}: Internal without marker: {message} (phase {phase})");
                }
                tripped += 1;
            }
            Err(e) => {
                record_failure(seed, &format!("fault surfaced as wrong variant: {e}"));
                panic!("seed {seed}: expected Internal, got {e}");
            }
        }
    }
    assert!(tripped >= 1, "no injected fault ever tripped");
}
