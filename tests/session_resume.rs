//! Resume-equivalence golden-trace harness (DESIGN.md §13).
//!
//! The sessionized core's contract:
//!
//! ```text
//! route(full)  ≡  route(slice) → snapshot → serialize → parse →
//!                 restore → route(rest)
//! ```
//!
//! with **byte-identical** deterministic observables on both sides:
//!
//! - the trace event stream — per-slice documents are serialized at the
//!   slice's global `seq` offset and their concatenated event lines must
//!   equal the uninterrupted run's, `seq` included;
//! - the selection log (every `(net, edge)` the deletion loop picked);
//! - the routing result (trees, channel tracks) and its independent
//!   `bgr::verify` audit on both endpoints.
//!
//! The matrix crosses worker threads {1, 8} × scoreboard shards {1, 4}
//! — the identity must survive any parallelism/sharding choice, and
//! every suspension passes through the *serialized* checkpoint codec
//! (`write_checkpoint` → `parse_checkpoint`), not an in-memory
//! snapshot. The golden instance's sliced run is additionally pinned
//! against the checked-in `tests/golden/trace.jsonl`, and a
//! deletion-budgeted variant proves the fallback lands at the same
//! point with or without interruption.

use bgr::gen::golden_instance;
use bgr::io::{
    deterministic_event_lines, parse_checkpoint, write_checkpoint, write_trace_jsonl,
    write_trace_jsonl_offset,
};
use bgr::layout::Placement;
use bgr::netlist::Circuit;
use bgr::router::{
    Budgets, CollectingProbe, GlobalRouter, RouteSession, Routed, RouterConfig, StepOutcome,
};
use bgr::timing::PathConstraint;
use bgr::verify::audit_parallel;

const MATRIX: [(usize, usize); 4] = [(1, 1), (1, 4), (8, 1), (8, 4)];

fn config(threads: usize, shards: usize) -> RouterConfig {
    RouterConfig {
        threads,
        shards,
        ..RouterConfig::default()
    }
}

/// Routes in `quota`-selection slices, round-tripping through the
/// serialized checkpoint codec at **every** suspension. Returns the
/// result, the concatenated per-slice event lines, and the hop count.
fn sliced_route(
    config: &RouterConfig,
    circuit: &Circuit,
    placement: &Placement,
    constraints: &[PathConstraint],
    quota: u64,
) -> (Routed, String, usize) {
    let mut session = RouteSession::start(
        config.clone(),
        circuit.clone(),
        placement.clone(),
        constraints.to_vec(),
        CollectingProbe::new(),
    )
    .expect("session starts");
    let mut events = String::new();
    let mut start_events = 0u64;
    let mut hops = 0usize;
    loop {
        let outcome = session.step(Some(quota)).expect("step succeeds");
        if outcome == StepOutcome::Ready {
            break;
        }
        // Suspension: serialize, drop the live session, re-parse,
        // resume — the codec is on the hot path of every boundary.
        let snapshot = session.snapshot();
        let text = write_checkpoint(&snapshot);
        let trace = session.into_probe().finish();
        events.push_str(&deterministic_event_lines(&write_trace_jsonl_offset(
            &trace,
            start_events,
        )));
        let reparsed = parse_checkpoint(&text).expect("checkpoint parses");
        start_events = reparsed.events_emitted;
        session = RouteSession::resume(reparsed, CollectingProbe::new()).expect("resume succeeds");
        hops += 1;
    }
    let (routed, probe) = session.finish().expect("finish succeeds");
    let trace = probe.finish();
    events.push_str(&deterministic_event_lines(&write_trace_jsonl_offset(
        &trace,
        start_events,
    )));
    (routed, events, hops)
}

#[test]
fn resume_equals_uninterrupted_across_threads_and_shards() {
    let ds = golden_instance();
    let mut event_streams: Vec<String> = Vec::new();
    for (threads, shards) in MATRIX {
        let config = config(threads, shards);
        let (full, trace) = GlobalRouter::new(config.clone())
            .route_traced(
                ds.design.circuit.clone(),
                ds.placement.clone(),
                ds.design.constraints.clone(),
            )
            .expect("full route succeeds");
        let full_events = deterministic_event_lines(&write_trace_jsonl(&trace));

        let (sliced, sliced_events, hops) = sliced_route(
            &config,
            &ds.design.circuit,
            &ds.placement,
            &ds.design.constraints,
            3,
        );
        assert!(hops > 3, "quota 3 must force several resumes (got {hops})");

        // Byte-identical observables on both sides of the interruption.
        assert_eq!(
            sliced_events, full_events,
            "event stream diverged at threads={threads} shards={shards}"
        );
        assert_eq!(sliced.result.trees, full.result.trees);
        assert_eq!(sliced.result.channel_tracks, full.result.channel_tracks);
        assert_eq!(
            sliced.result.stats.selection_log,
            full.result.stats.selection_log
        );
        assert_eq!(sliced.result.stats.deletions, full.result.stats.deletions);

        // Independent audit certifies both endpoints, identically.
        let audit_full = audit_parallel(
            threads,
            &full.circuit,
            &full.placement,
            &ds.design.constraints,
            &config,
            &full.result,
        );
        let audit_sliced = audit_parallel(
            threads,
            &sliced.circuit,
            &sliced.placement,
            &ds.design.constraints,
            &config,
            &sliced.result,
        );
        assert!(audit_full.is_clean(), "{:?}", audit_full.first_failure());
        assert_eq!(audit_full, audit_sliced);

        event_streams.push(sliced_events);
    }
    // The whole matrix agrees on the deterministic stream.
    for s in &event_streams[1..] {
        assert_eq!(*s, event_streams[0], "matrix entries disagree");
    }
}

#[test]
fn sliced_golden_instance_matches_checked_in_trace() {
    let golden = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("golden")
            .join("trace.jsonl"),
    )
    .expect("golden trace checked in (bless via golden_trace test)");
    let ds = golden_instance();
    let (_, sliced_events, hops) = sliced_route(
        &RouterConfig::default(),
        &ds.design.circuit,
        &ds.placement,
        &ds.design.constraints,
        5,
    );
    assert!(hops > 0);
    assert_eq!(
        sliced_events,
        deterministic_event_lines(&golden),
        "sliced run drifted from the checked-in golden event lines"
    );
}

#[test]
fn budget_exhaustion_point_survives_interruption() {
    // A deletion budget makes initial routing stop early and emit the
    // budget-fallback event; the fallback must land at the same global
    // selection whether or not the run was checkpoint-interrupted.
    let ds = golden_instance();
    let base = RouterConfig {
        budgets: Budgets {
            deletion_steps: Some(7),
            phase_reroutes: None,
        },
        ..RouterConfig::default()
    };
    let (full, trace) = GlobalRouter::new(base.clone())
        .route_traced(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("budgeted route succeeds");
    let full_events = deterministic_event_lines(&write_trace_jsonl(&trace));
    let (sliced, sliced_events, hops) = sliced_route(
        &base,
        &ds.design.circuit,
        &ds.placement,
        &ds.design.constraints,
        2,
    );
    assert!(hops >= 3, "budget 7 at quota 2 must hop (got {hops})");
    assert_eq!(sliced_events, full_events);
    assert_eq!(sliced.result.trees, full.result.trees);
}
