//! Shape assertions for the paper's evaluation claims, on a C1-lite data
//! set (kept small so `cargo test` stays fast; the full-size numbers are
//! produced by the `bgr-bench` table binaries).

use bgr::channel::route_channels;
use bgr::gen::circuits::custom;
use bgr::gen::{GenParams, PlacementStyle};
use bgr::router::{GlobalRouter, RouterConfig};
use bgr::timing::{DelayModel, WireParams};

fn c1_lite(style: PlacementStyle) -> bgr::gen::DataSet {
    let params = GenParams {
        seed: 0xC1,
        logic_cells: 260,
        depth: 10,
        rows: 6,
        ff_fraction: 0.15,
        diff_pairs: 3,
        pads: 10,
        feeds_per_row: 8,
        global_fanin: 0.25,
        num_constraints: 10,
        wire_budget: 0.30,
        geometry: bgr::layout::Geometry {
            track_pitch_um: 4.0,
            ..bgr::layout::Geometry::default()
        },
    };
    custom("C1lite", params, style)
}

fn measure(ds: &bgr::gen::DataSet, config: RouterConfig) -> (f64, f64, usize, Vec<f64>) {
    let routed = GlobalRouter::new(config)
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("routes");
    let detail = route_channels(
        &routed.circuit,
        &routed.placement,
        &routed.result,
        &ds.design.constraints,
        DelayModel::Capacitance,
        WireParams::default(),
    )
    .expect("channel-routes");
    (
        detail.timing.max_arrival_ps(),
        detail.area_mm2,
        detail.timing.violations(),
        detail
            .timing
            .constraints
            .iter()
            .map(|c| c.arrival_ps)
            .collect(),
    )
}

#[test]
fn constrained_beats_unconstrained_with_comparable_area() {
    let ds = c1_lite(PlacementStyle::EvenFeed);
    let (delay_con, area_con, viol_con, arr_con) = measure(&ds, RouterConfig::default());
    let (delay_unc, area_unc, viol_unc, arr_unc) = measure(&ds, RouterConfig::unconstrained());
    // Table 2 shape: delay improves, area almost unchanged.
    assert!(
        delay_con <= delay_unc + 1e-6,
        "constrained {delay_con} vs unconstrained {delay_unc}"
    );
    assert!(viol_con <= viol_unc);
    assert!(
        (area_con - area_unc).abs() / area_unc < 0.10,
        "area almost unchanged: {area_con} vs {area_unc}"
    );
    // Mean constrained arrival strictly better (the 17.6% story in
    // miniature: some reduction on average).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&arr_con) < mean(&arr_unc));
}

#[test]
fn even_feed_placement_not_worse_than_aside() {
    // The paper's P2 exists "to test the even spacing effect of feed-cell
    // insertion": with feeds pushed aside, detours and insertions grow.
    let p1 = c1_lite(PlacementStyle::EvenFeed);
    let p2 = c1_lite(PlacementStyle::FeedAside);
    let r1 = GlobalRouter::new(RouterConfig::default())
        .route(
            p1.design.circuit.clone(),
            p1.placement.clone(),
            p1.design.constraints.clone(),
        )
        .expect("routes");
    let r2 = GlobalRouter::new(RouterConfig::default())
        .route(
            p2.design.circuit.clone(),
            p2.placement.clone(),
            p2.design.constraints.clone(),
        )
        .expect("routes");
    // Evenly spread feeds give assignment more nearby slots: the total
    // estimated wirelength should not degrade, and the inserted-cell
    // count should not be larger.
    assert!(
        r1.result.stats.feed_cells_inserted <= r2.result.stats.feed_cells_inserted + 2,
        "P1 insertion {} vs P2 {}",
        r1.result.stats.feed_cells_inserted,
        r2.result.stats.feed_cells_inserted
    );
}

#[test]
fn timing_criteria_help_over_density_only() {
    use bgr::router::CriteriaOrder;
    let ds = c1_lite(PlacementStyle::EvenFeed);
    let (delay_timing, ..) = measure(&ds, RouterConfig::default());
    let (delay_density, ..) = measure(
        &ds,
        RouterConfig {
            criteria_order: CriteriaOrder::DensityOnly,
            recover_passes: 0,
            delay_passes: 0,
            ..RouterConfig::default()
        },
    );
    assert!(
        delay_timing <= delay_density + 1e-6,
        "timing-driven {delay_timing} vs density-only {delay_density}"
    );
}
