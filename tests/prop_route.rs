//! Property-based tests over randomly generated designs: the router's
//! guarantees must hold for *every* valid input, not just the benchmark
//! seeds.

use bgr::channel::route_channels;
use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::netlist::NetId;
use bgr::router::{GlobalRouter, RouterConfig, Segment};
use bgr::timing::{DelayModel, WireParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GenParams> {
    (
        any::<u64>(),
        20usize..120,
        3usize..10,
        2usize..6,
        0usize..4,
        0usize..12,
        0usize..6,
    )
        .prop_map(
            |(seed, logic_cells, depth, rows, diff_pairs, feeds_per_row, num_constraints)| {
                GenParams {
                    seed,
                    logic_cells,
                    depth,
                    rows,
                    ff_fraction: 0.12,
                    diff_pairs,
                    pads: 4,
                    feeds_per_row,
                    global_fanin: 0.15,
                    num_constraints,
                    wire_budget: 0.35,
                    geometry: bgr::layout::Geometry::default(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_generated_design_routes_to_valid_trees(params in arb_params()) {
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(design.circuit.clone(), placement, design.constraints.clone())
            .expect("every generated design routes");
        // Every net tree taps all of its terminals exactly once.
        for (i, tree) in routed.result.trees.iter().enumerate() {
            let net = routed.circuit.net(NetId::new(i));
            let mut tapped: Vec<_> = tree.segments.iter().filter_map(|s| match s {
                Segment::Branch { term, .. } => Some(*term),
                _ => None,
            }).collect();
            tapped.sort();
            tapped.dedup();
            let mut wanted: Vec<_> = net.terms().collect();
            wanted.sort();
            prop_assert_eq!(tapped, wanted);
        }
        // The widened placement stays valid.
        routed.placement.validate(&routed.circuit).expect("placement valid");
        // Channel routing succeeds and realizes at least the density.
        let detail = route_channels(
            &routed.circuit,
            &routed.placement,
            &routed.result,
            &design.constraints,
            DelayModel::Capacitance,
            WireParams::default(),
        ).expect("channel routing succeeds");
        for (c, &t) in detail.tracks.iter().enumerate() {
            prop_assert!(t as i32 >= routed.result.channel_tracks[c]);
        }
        // Lengths are finite and positive where wiring exists.
        for &len in &detail.net_lengths_um {
            prop_assert!(len.is_finite() && len >= 0.0);
        }
    }

    #[test]
    fn unconstrained_mode_routes_everything_too(params in arb_params()) {
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::FeedAside);
        let routed = GlobalRouter::new(RouterConfig::unconstrained())
            .route(design.circuit, placement, design.constraints)
            .expect("unconstrained routing succeeds");
        prop_assert_eq!(routed.result.trees.len(), routed.circuit.nets().len());
    }
}
