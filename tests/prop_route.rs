//! Randomized tests over generated designs: the router's guarantees must
//! hold for *every* valid input, not just the benchmark seeds.

use bgr::channel::route_channels;
use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::netlist::{NetId, SplitMix64};
use bgr::router::{GlobalRouter, RouterConfig, Segment};
use bgr::timing::{DelayModel, WireParams};

fn random_params(rng: &mut SplitMix64) -> GenParams {
    GenParams {
        seed: rng.next_u64(),
        logic_cells: rng.range_usize(20, 120),
        depth: rng.range_usize(3, 10),
        rows: rng.range_usize(2, 6),
        ff_fraction: 0.12,
        diff_pairs: rng.range_usize(0, 4),
        pads: 4,
        feeds_per_row: rng.range_usize(0, 12),
        global_fanin: 0.15,
        num_constraints: rng.range_usize(0, 6),
        wire_budget: 0.35,
        geometry: bgr::layout::Geometry::default(),
    }
}

#[test]
fn any_generated_design_routes_to_valid_trees() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x7031E ^ (case << 9));
        let params = random_params(&mut rng);
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(
                design.circuit.clone(),
                placement,
                design.constraints.clone(),
            )
            .expect("every generated design routes");
        // Every net tree taps all of its terminals exactly once.
        for (i, tree) in routed.result.trees.iter().enumerate() {
            let net = routed.circuit.net(NetId::new(i));
            let mut tapped: Vec<_> = tree
                .segments
                .iter()
                .filter_map(|s| match s {
                    Segment::Branch { term, .. } => Some(*term),
                    _ => None,
                })
                .collect();
            tapped.sort();
            tapped.dedup();
            let mut wanted: Vec<_> = net.terms().collect();
            wanted.sort();
            assert_eq!(tapped, wanted);
        }
        // The widened placement stays valid.
        routed
            .placement
            .validate(&routed.circuit)
            .expect("placement valid");
        // Channel routing succeeds and realizes at least the density.
        let detail = route_channels(
            &routed.circuit,
            &routed.placement,
            &routed.result,
            &design.constraints,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .expect("channel routing succeeds");
        for (c, &t) in detail.tracks.iter().enumerate() {
            assert!(t as i32 >= routed.result.channel_tracks[c]);
        }
        // Lengths are finite and positive where wiring exists.
        for &len in &detail.net_lengths_um {
            assert!(len.is_finite() && len >= 0.0);
        }
    }
}

#[test]
fn unconstrained_mode_routes_everything_too() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x0C0DE ^ (case << 9));
        let params = random_params(&mut rng);
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::FeedAside);
        let routed = GlobalRouter::new(RouterConfig::unconstrained())
            .route(design.circuit, placement, design.constraints)
            .expect("unconstrained routing succeeds");
        assert_eq!(routed.result.trees.len(), routed.circuit.nets().len());
    }
}
