//! Distributed ≡ local, byte for byte (DESIGN.md §15).
//!
//! A fleet of TCP loopback workers draining a coordinator must leave
//! the job queue in *exactly* the state a single-process
//! [`JobQueue::run`] produces: per-job streams (trace events with
//! contiguous `seq`, progress records, audited `done` records)
//! byte-identical, states, counters and completion verdicts equal —
//! for any worker count, and even when a worker takes a lease and dies
//! mid-slice (its lease expires and is reassigned, by construction with
//! an identical outcome).
//!
//! Speculative portfolio racing rides the same proof: one suspended
//! checkpoint fanned under three improvement-criteria arms picks the
//! same winner with the same arm streams whether drained by one worker
//! or by three with crash injection.

use std::net::TcpListener;
use std::time::Duration;

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::write_checkpoint;
use bgr::metrics::MetricsRegistry;
use bgr::net::{run_worker, serve_drain, Coordinator, NetMetrics, WorkerOptions};
use bgr::router::config::CriteriaOrder;
use bgr::router::{CollectingProbe, RouteSession, RouterConfig};
use bgr::serve::{JobQueue, SessionState};

fn small_case(
    seed: u64,
) -> (
    bgr::netlist::Circuit,
    bgr::layout::Placement,
    Vec<bgr::timing::PathConstraint>,
) {
    let params = GenParams::small(seed);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    (design.circuit, placement, design.constraints)
}

fn submit_fleet_jobs(queue: &mut JobQueue) {
    for (i, seed) in [3u64, 11, 42, 7].iter().enumerate() {
        let (c, p, k) = small_case(*seed);
        // Mixed quotas: multi-slice jobs and a run-to-completion job.
        let quota = if i == 3 { None } else { Some(4 + 2 * i as u64) };
        queue.submit(format!("job{i}"), c, p, k, RouterConfig::default(), quota);
    }
}

/// Drains `coordinator` over TCP loopback with the given worker
/// options (one thread per worker), returning the drained coordinator
/// and each worker's (report, registry).
fn drain_over_loopback(
    coordinator: Coordinator,
    workers: Vec<WorkerOptions>,
) -> (Coordinator, Vec<(bgr::net::WorkerReport, MetricsRegistry)>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || serve_drain(listener, coordinator).expect("drain"));
    let worker_threads: Vec<_> = workers
        .into_iter()
        .map(|opts| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let registry = MetricsRegistry::new();
                let report = run_worker(&addr, &opts, &registry).expect("worker");
                (report, registry)
            })
        })
        .collect();
    let reports: Vec<_> = worker_threads
        .into_iter()
        .map(|t| t.join().expect("worker thread"))
        .collect();
    (server.join().expect("server thread"), reports)
}

#[test]
fn fleet_drain_is_byte_identical_to_local_run() {
    // Reference: the plain single-process queue.
    let mut local = JobQueue::new();
    submit_fleet_jobs(&mut local);
    local.run(4);

    // Distributed: three workers over TCP loopback.
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let coordinator = Coordinator::new(queue, Duration::from_secs(10));
    let (drained, reports) = drain_over_loopback(
        coordinator,
        (0..3)
            .map(|i| WorkerOptions::named(format!("w{i}")))
            .collect(),
    );

    assert!(drained.all_completed());
    for (i, (dist, loc)) in drained
        .queue()
        .jobs()
        .iter()
        .zip(local.jobs().iter())
        .enumerate()
    {
        assert_eq!(dist.state(), SessionState::Completed, "job {i}");
        assert_eq!(dist.slices(), loc.slices(), "job {i} slice count");
        assert_eq!(dist.selections_done(), loc.selections_done(), "job {i}");
        assert_eq!(dist.events_emitted(), loc.events_emitted(), "job {i}");
        // The load-bearing assertion: merged streams byte-identical.
        assert_eq!(dist.stream(), loc.stream(), "job {i} stream diverged");
        // Completion verdicts agree with the local audit.
        let verdict = dist.verdict().expect("remote verdict");
        let local_audit = loc.audit().expect("local audit");
        assert_eq!(verdict.audit_line, local_audit.to_string(), "job {i}");
        assert!(verdict.audit_clean, "job {i}");
    }
    // The slices were genuinely spread over the fleet, and every
    // live worker shipped a metrics snapshot for aggregation.
    let total: u64 = reports.iter().map(|(r, _)| r.slices).sum();
    let local_slices: u64 = local.jobs().iter().map(|j| j.slices()).sum();
    assert_eq!(total, local_slices, "fleet executed exactly the work");
    assert!(
        reports.iter().filter(|(r, _)| r.slices > 0).count() >= 2,
        "work should spread across the fleet"
    );
    assert_eq!(drained.worker_snapshots().len(), 3);
}

#[test]
fn killed_worker_lease_expires_and_is_reassigned() {
    let mut local = JobQueue::new();
    submit_fleet_jobs(&mut local);
    local.run(1);

    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let registry = MetricsRegistry::new();
    // Short lease timeout so the dead worker's slice is reassigned
    // quickly. The timeout is wall clock; the *outcome* is not.
    let coordinator = Coordinator::new(queue, Duration::from_millis(250)).with_metrics(&registry);
    let mut victim = WorkerOptions::named("victim");
    victim.die_on_lease = Some(2); // take the 2nd lease, vanish mid-slice
    let (drained, reports) =
        drain_over_loopback(coordinator, vec![victim, WorkerOptions::named("survivor")]);

    let died: Vec<_> = reports.iter().filter(|(r, _)| r.died).collect();
    assert_eq!(died.len(), 1, "crash injection must have fired");
    assert_eq!(died[0].0.slices, 1, "victim died before its 2nd slice");

    // The orphaned lease expired and was re-granted.
    let metrics = NetMetrics::register(&registry);
    assert!(
        metrics.leases_expired_total.get() >= 1,
        "expected at least one expired-lease re-grant"
    );

    // And the crash changed nothing observable.
    assert!(drained.all_completed());
    for (i, (dist, loc)) in drained
        .queue()
        .jobs()
        .iter()
        .zip(local.jobs().iter())
        .enumerate()
    {
        assert_eq!(dist.stream(), loc.stream(), "job {i} stream diverged");
    }
    // Only the survivor shipped a snapshot; the victim vanished.
    assert_eq!(drained.worker_snapshots().len(), 1);
    assert_eq!(drained.worker_snapshots()[0].0, "survivor");
}

#[test]
fn misbehaving_client_is_connection_local() {
    use bgr::net::{recv, send, write_frame, Message, PROTO_VERSION};

    let mut local = JobQueue::new();
    submit_fleet_jobs(&mut local);
    local.run(1);

    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let coordinator = Coordinator::new(queue, Duration::from_secs(10));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || serve_drain(listener, coordinator).expect("drain"));

    // A rogue client: valid handshake, then a well-framed RESULT whose
    // payload is garbage at the proto layer. It must be answered with
    // a Nack and cost nothing beyond its own connection.
    {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect rogue");
        send(
            &mut stream,
            &Message::Hello {
                version: PROTO_VERSION,
                worker: "rogue".into(),
                token: None,
            },
        )
        .expect("hello");
        assert!(matches!(
            recv(&mut stream).expect("welcome"),
            Message::Welcome { .. }
        ));
        write_frame(&mut stream, 6, b"garbage, not the Result schema\n").expect("rogue frame");
        match recv(&mut stream).expect("nack") {
            Message::Nack { code, .. } => assert_eq!(code, "bad-request"),
            other => panic!("expected Nack, got {other:?}"),
        }
    }

    // An honest worker still drains everything, and the fully drained
    // coordinator comes back despite the rogue's protocol violation.
    let registry = MetricsRegistry::new();
    run_worker(&addr, &WorkerOptions::named("honest"), &registry).expect("worker");
    let drained = server.join().expect("server thread");
    assert!(drained.all_completed());
    for (i, (dist, loc)) in drained
        .queue()
        .jobs()
        .iter()
        .zip(local.jobs().iter())
        .enumerate()
    {
        assert_eq!(dist.stream(), loc.stream(), "job {i} stream diverged");
    }
}

/// A mid-run suspended checkpoint of a small instance — the portfolio
/// race's shared starting point.
fn mid_run_checkpoint() -> String {
    let (c, p, k) = small_case(11);
    let mut session = RouteSession::start(RouterConfig::default(), c, p, k, CollectingProbe::new())
        .expect("session starts");
    for _ in 0..2 {
        session.step(Some(4)).expect("step");
    }
    write_checkpoint(&session.snapshot())
}

fn three_arms() -> Vec<(String, RouterConfig)> {
    [
        CriteriaOrder::DelayFirst,
        CriteriaOrder::AreaFirst,
        CriteriaOrder::DensityOnly,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, order)| {
        let config = RouterConfig {
            criteria_order: order,
            ..RouterConfig::default()
        };
        (format!("arm{i}"), config)
    })
    .collect()
}

fn race(workers: Vec<WorkerOptions>) -> Coordinator {
    let queue = JobQueue::new();
    let mut coordinator = Coordinator::new(queue, Duration::from_millis(250));
    coordinator
        .race_portfolio("race", &mid_run_checkpoint(), &three_arms(), Some(8), 64)
        .expect("portfolio submits");
    let (drained, _) = drain_over_loopback(coordinator, workers);
    drained
}

#[test]
fn portfolio_race_picks_the_same_winner_under_any_fleet() {
    let solo = race(vec![WorkerOptions::named("w0")]);
    let mut victim = WorkerOptions::named("victim");
    victim.die_on_lease = Some(3);
    let fleet = race(vec![
        WorkerOptions::named("w0"),
        WorkerOptions::named("w1"),
        victim,
    ]);

    let p_solo = &solo.portfolios()[0];
    let p_fleet = &fleet.portfolios()[0];
    assert!(p_solo.decided && p_fleet.decided);
    let winner = p_solo.winner.expect("an arm finishes within budget");
    assert_eq!(
        p_fleet.winner,
        Some(winner),
        "winner must not depend on fleet"
    );

    for (pos, (&a, &b)) in p_solo.arms.iter().zip(p_fleet.arms.iter()).enumerate() {
        let ja = solo.queue().job(a);
        let jb = fleet.queue().job(b);
        assert_eq!(ja.stream(), jb.stream(), "arm {pos} stream diverged");
        assert_eq!(ja.slices(), jb.slices(), "arm {pos} slice count");
        assert!(ja.slices() <= 64, "arm {pos} exceeded its budget");
        match (ja.verdict(), jb.verdict()) {
            (Some(va), Some(vb)) => assert_eq!(va, vb, "arm {pos} verdict diverged"),
            (None, None) => {}
            other => panic!("arm {pos} verdict presence diverged: {other:?}"),
        }
    }
    // The decided winner must actually be best under the total order.
    let winner_verdict = solo
        .queue()
        .job(p_solo.arms[winner])
        .verdict()
        .expect("winner has a verdict");
    for (pos, &id) in p_solo.arms.iter().enumerate() {
        if pos == winner {
            continue;
        }
        if let Some(v) = solo.queue().job(id).verdict() {
            assert!(
                !v.beats(winner_verdict),
                "arm {pos} should not beat the declared winner"
            );
        }
    }
}
