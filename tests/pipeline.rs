//! Cross-crate integration: generator → global router → channel router,
//! checking the invariants the paper's flow guarantees.

use bgr::channel::route_channels;
use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::netlist::NetId;
use bgr::router::{GlobalRouter, Routed, RouterConfig, Segment};
use bgr::timing::{DelayModel, WireParams};

fn route_small(seed: u64, config: RouterConfig) -> (bgr::gen::GeneratedDesign, Routed) {
    let params = GenParams::small(seed);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let routed = GlobalRouter::new(config)
        .route(
            design.circuit.clone(),
            placement,
            design.constraints.clone(),
        )
        .expect("small designs route");
    (design, routed)
}

#[test]
fn every_net_gets_a_tree_tapping_all_terminals() {
    let (_, routed) = route_small(11, RouterConfig::default());
    assert_eq!(routed.result.trees.len(), routed.circuit.nets().len());
    for (i, tree) in routed.result.trees.iter().enumerate() {
        let net = routed.circuit.net(NetId::new(i));
        // Every terminal of the net is tapped by exactly one branch.
        let mut tapped: Vec<bgr::netlist::TermId> = tree
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Branch { term, .. } => Some(*term),
                _ => None,
            })
            .collect();
        tapped.sort();
        tapped.dedup();
        let mut wanted: Vec<bgr::netlist::TermId> = net.terms().collect();
        wanted.sort();
        assert_eq!(tapped, wanted, "net {i} taps all its terminals once");
        assert!(tree.length_um > 0.0);
    }
}

#[test]
fn detail_tracks_cover_global_density_everywhere() {
    let (design, routed) = route_small(12, RouterConfig::default());
    let detail = route_channels(
        &routed.circuit,
        &routed.placement,
        &routed.result,
        &design.constraints,
        DelayModel::Capacitance,
        WireParams::default(),
    )
    .expect("channel routing succeeds");
    assert_eq!(detail.tracks.len(), routed.placement.num_channels());
    for (c, &t) in detail.tracks.iter().enumerate() {
        assert!(
            t as i32 >= routed.result.channel_tracks[c],
            "channel {c}: {} tracks < density {}",
            t,
            routed.result.channel_tracks[c]
        );
    }
    // Channel-routed lengths dominate the x-extent of each net.
    for (i, &len) in detail.net_lengths_um.iter().enumerate() {
        let tree = &routed.result.trees[i];
        let trunk_um: f64 = tree
            .segments
            .iter()
            .map(|s| match s {
                Segment::Trunk { x1, x2, .. } => (x2 - x1) as f64 * 8.0,
                _ => 0.0,
            })
            .sum();
        assert!(
            len + 1e-9 >= trunk_um,
            "net {i} detail length covers trunks"
        );
    }
}

#[test]
fn routing_is_deterministic_across_runs() {
    let (_, r1) = route_small(13, RouterConfig::default());
    let (_, r2) = route_small(13, RouterConfig::default());
    assert_eq!(r1.result.trees, r2.result.trees);
    assert_eq!(r1.result.channel_tracks, r2.result.channel_tracks);
    assert_eq!(r1.result.stats.deletions, r2.result.stats.deletions);
}

#[test]
fn constrained_never_loses_to_unconstrained_on_its_own_estimate() {
    let (design, con) = route_small(14, RouterConfig::default());
    let (_, unc) = route_small(14, RouterConfig::unconstrained());
    let det = |routed: &Routed| {
        route_channels(
            &routed.circuit,
            &routed.placement,
            &routed.result,
            &design.constraints,
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .expect("channel routing succeeds")
    };
    let dc = det(&con);
    let du = det(&unc);
    // Violations and worst delay must not be worse with constraints on.
    assert!(dc.timing.violations() <= du.timing.violations());
    assert!(dc.timing.max_arrival_ps() <= du.timing.max_arrival_ps() * 1.02);
}

#[test]
fn diff_pairs_route_in_lockstep_when_possible() {
    let (_, routed) = route_small(15, RouterConfig::default());
    let stats = &routed.result.stats;
    assert!(
        stats.diff_pairs_locked + stats.diff_pairs_independent == routed.circuit.diff_pairs().len()
    );
    for &(a, b) in routed.circuit.diff_pairs() {
        let ta = &routed.result.trees[a.index()];
        let tb = &routed.result.trees[b.index()];
        // Locked pairs have congruent trees (same segment count & length).
        if stats.diff_pairs_independent == 0 {
            assert_eq!(ta.segments.len(), tb.segments.len());
            assert!((ta.length_um - tb.length_um).abs() < 1e-6);
        }
    }
}

#[test]
fn widened_placement_stays_valid() {
    // Scarce feeds force insertion; circuit + placement must stay
    // consistent afterwards.
    let params = GenParams {
        feeds_per_row: 1,
        ..GenParams::small(16)
    };
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let routed = GlobalRouter::new(RouterConfig::default())
        .route(design.circuit, placement, design.constraints)
        .expect("routes with insertion");
    assert!(routed.result.stats.feed_cells_inserted > 0);
    routed
        .placement
        .validate(&routed.circuit)
        .expect("widened placement valid");
}
