//! Overload-safe serving (DESIGN.md §15 "Overload & degradation
//! ladder").
//!
//! A fleet hammered past every configured limit — admission caps,
//! connection-concurrency caps, lease-table depth, per-job deadlines,
//! a journal disk that fills up mid-drain — must shed load
//! *deterministically*: every refusal is a structured verdict (an
//! admission `Rejected`, a `Nack(busy)` with a retry hint, a
//! `DeadlineExpired` failure, a journal-degradation marker), never a
//! panic or a hang, and every job that *was* admitted still completes
//! byte-identical to a no-pressure single-process run.
//!
//! The inverse is asserted too: governance that is configured but
//! never tripped leaves the drain byte-identical to an ungoverned one
//! — the overload machinery is provably inert until a limit actually
//! trips.

use std::net::TcpListener;
use std::time::Duration;

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::{read_journal, JournalTail, JournalWriter};
use bgr::metrics::MetricsRegistry;
use bgr::net::{
    run_worker, serve_drain_with, Coordinator, DiskFaults, DrainOptions, FaultyDisk, NetMetrics,
    ProtoError, WorkerOptions, WorkerReport,
};
use bgr::router::{RouteError, RouterConfig};
use bgr::serve::{JobQueue, QueuePolicy, ServeMetrics, SessionState};

fn small_case(
    seed: u64,
) -> (
    bgr::netlist::Circuit,
    bgr::layout::Placement,
    Vec<bgr::timing::PathConstraint>,
) {
    let params = GenParams::small(seed);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    (design.circuit, placement, design.constraints)
}

const FLEET_SEEDS: [u64; 4] = [3, 11, 42, 7];

fn fleet_quota(i: usize) -> Option<u64> {
    if i == 3 {
        None
    } else {
        Some(4 + 2 * i as u64)
    }
}

/// Submits the standard fleet jobs through the *governed* intake,
/// returning each job's admission verdict.
fn try_submit_fleet_jobs(queue: &mut JobQueue) -> Vec<Result<usize, bgr::serve::Rejected>> {
    FLEET_SEEDS
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let (c, p, k) = small_case(seed);
            queue.try_submit(
                format!("job{i}"),
                c,
                p,
                k,
                RouterConfig::default(),
                fleet_quota(i),
            )
        })
        .collect()
}

/// The no-pressure single-process reference for the first `n` fleet
/// jobs, drained with the legacy ungoverned `submit` path.
fn local_reference(n: usize) -> JobQueue {
    let mut local = JobQueue::new();
    for (i, &seed) in FLEET_SEEDS.iter().take(n).enumerate() {
        let (c, p, k) = small_case(seed);
        local.submit(
            format!("job{i}"),
            c,
            p,
            k,
            RouterConfig::default(),
            fleet_quota(i),
        );
    }
    local.run(4);
    local
}

/// Byte-identity of the drained fleet queue against the local
/// reference: streams, slice counts, audit verdicts.
fn assert_matches_local(drained: &Coordinator, local: &JobQueue, ctx: &str) {
    assert!(drained.all_completed(), "{ctx}: drain did not complete");
    assert_eq!(
        drained.queue().jobs().len(),
        local.jobs().len(),
        "{ctx}: job count"
    );
    for (i, (dist, loc)) in drained
        .queue()
        .jobs()
        .iter()
        .zip(local.jobs().iter())
        .enumerate()
    {
        assert_eq!(
            dist.stream(),
            loc.stream(),
            "{ctx}: job {i} stream diverged"
        );
        assert_eq!(dist.slices(), loc.slices(), "{ctx}: job {i} slice count");
        let verdict = dist.verdict().expect("remote verdict");
        let local_audit = loc.audit().expect("local audit");
        assert_eq!(
            verdict.audit_line,
            local_audit.to_string(),
            "{ctx}: job {i} audit verdict diverged"
        );
    }
}

/// The headline invariant. Every limit is configured *and* hammered
/// past at once: 4 jobs offered against `max_jobs 3`, a 64-connection
/// storm against a 4-slot connection cap. The over-limit job is
/// rejected with a structured verdict, excess connections are answered
/// `Nack(busy)` (never a hang, never a protocol error), and the three
/// admitted jobs drain byte-identical to the no-pressure local
/// reference.
#[test]
fn fleet_hammered_past_every_limit_sheds_deterministically() {
    let local = local_reference(3);

    let registry = MetricsRegistry::new();
    let mut queue = JobQueue::with_metrics(&registry);
    queue.set_policy(QueuePolicy {
        max_jobs: Some(3),
        max_checkpoint_bytes: None,
        deadline_ms: None,
    });
    let verdicts = try_submit_fleet_jobs(&mut queue);
    assert_eq!(verdicts.iter().filter(|v| v.is_ok()).count(), 3);
    match &verdicts[3] {
        Err(bgr::serve::Rejected::QueueFull { max_jobs, live }) => {
            assert_eq!((*max_jobs, *live), (3, 3));
        }
        other => panic!("job3 must be refused queue-full, got {other:?}"),
    }

    let coordinator = Coordinator::new(queue, Duration::from_secs(10)).with_metrics(&registry);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let opts = DrainOptions {
        token: None,
        max_conns: Some(4),
        retry_after_ms: 5,
    };
    let server =
        std::thread::spawn(move || serve_drain_with(listener, coordinator, &opts).expect("drain"));

    // The storm: 64 workers against 4 connection slots. Slices are
    // slowed a little so connections genuinely pile up at the door.
    let workers: Vec<_> = (0..64)
        .map(|i| {
            let addr = addr.clone();
            let mut opts = WorkerOptions::named(format!("storm{i}"));
            opts.slice_delay = Some(Duration::from_millis(10));
            opts.retry_max = 6;
            opts.retry_base = Duration::from_millis(2);
            opts.retry_cap = Duration::from_millis(20);
            std::thread::spawn(move || run_worker(&addr, &opts, &MetricsRegistry::new()))
        })
        .collect();

    // Every connection must end in exactly one of the ladder's rungs:
    // welcomed and drained (Ok), shed with the busy verdict, or — for
    // stragglers that dialed after the drain settled — a plain
    // connect/transport failure. Nothing else is acceptable.
    let mut welcomed = 0u64;
    let mut shed = 0u64;
    for h in workers {
        match h.join().expect("worker thread must not panic") {
            Ok(WorkerReport { .. }) => welcomed += 1,
            Err(ProtoError::Refused { code, .. }) => {
                assert_eq!(code, "busy", "only busy refusals are legitimate here");
                shed += 1;
            }
            Err(e) => assert!(
                e.is_retryable(),
                "storm worker died with a non-retryable error: {e}"
            ),
        }
    }
    let drained = server.join().expect("server thread");

    assert!(welcomed >= 1, "somebody must have drained the queue");
    assert!(
        shed >= 1,
        "a 64-connection storm against 4 slots must shed at the door"
    );
    let net = NetMetrics::register(&registry);
    assert!(
        net.conns_shed_total.get() >= shed,
        "every busy refusal is counted: {} < {shed}",
        net.conns_shed_total.get()
    );
    let serve = ServeMetrics::register(&registry);
    assert_eq!(
        serve.rejected_queue_full_total.get(),
        1,
        "exactly one admission rejection"
    );
    assert_matches_local(&drained, &local, "overload storm");
}

/// Expired deadlines propagate into leases: a job whose budget is
/// already spent is abandoned *by the worker* (the slice never runs)
/// and fails with the same structured `DeadlineExpired` verdict the
/// local path produces, counted coordinator-side.
#[test]
fn expired_deadline_is_abandoned_by_workers_with_the_structured_verdict() {
    let registry = MetricsRegistry::new();
    let mut queue = JobQueue::with_metrics(&registry);
    queue.set_policy(QueuePolicy {
        max_jobs: None,
        max_checkpoint_bytes: None,
        deadline_ms: Some(0),
    });
    let (c, p, k) = small_case(3);
    queue
        .try_submit("doomed", c, p, k, RouterConfig::default(), Some(4))
        .expect("admission is not the limit under test");

    let coordinator = Coordinator::new(queue, Duration::from_secs(10)).with_metrics(&registry);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || {
        serve_drain_with(listener, coordinator, &DrainOptions::default()).expect("drain")
    });

    let worker_registry = MetricsRegistry::new();
    let report = run_worker(&addr, &WorkerOptions::named("w0"), &worker_registry)
        .expect("abandonment is a clean outcome, not a worker error");
    let drained = server.join().expect("server thread");

    assert_eq!(report.leases, 1, "one lease, granted once");
    assert_eq!(report.slices, 0, "the slice must never run");
    let job = &drained.queue().jobs()[0];
    assert_eq!(job.state(), SessionState::Failed);
    assert!(
        matches!(job.error(), Some(RouteError::DeadlineExpired { .. })),
        "structured verdict, got {:?}",
        job.error()
    );
    let serve = ServeMetrics::register(&registry);
    assert_eq!(serve.deadline_missed_total.get(), 1);
}

/// A journal disk that fills mid-drain: the append error is a
/// structured `JournalError`, the coordinator degrades loudly to
/// journal-less operation (marker + counter), the surviving journal
/// prefix stays replayable, and the drain itself completes
/// byte-identical to the reference — durability degrades, correctness
/// does not.
#[test]
fn journal_disk_faults_degrade_loudly_and_the_drain_still_completes() {
    let local = local_reference(4);

    let registry = MetricsRegistry::new();
    let mut queue = JobQueue::with_metrics(&registry);
    for v in try_submit_fleet_jobs(&mut queue) {
        v.expect("unbounded policy admits everything");
    }
    let disk = FaultyDisk::new(DiskFaults {
        fail_after_bytes: Some(200),
        fail_every_kth_append: None,
    });
    let buffer = disk.buffer();
    let coordinator = Coordinator::new(queue, Duration::from_secs(10))
        .with_metrics(&registry)
        .with_journal(JournalWriter::with_sink(Box::new(disk)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || {
        serve_drain_with(listener, coordinator, &DrainOptions::default()).expect("drain")
    });

    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let opts = WorkerOptions::named(format!("w{i}"));
            std::thread::spawn(move || run_worker(&addr, &opts, &MetricsRegistry::new()))
        })
        .collect();
    for h in workers {
        h.join()
            .expect("worker thread")
            .expect("disk faults are coordinator-side; workers never see them");
    }
    let drained = server.join().expect("server thread");

    let degradation = drained
        .journal_degradation()
        .expect("the full disk must degrade the journal");
    assert!(
        degradation.contains("journal append failed"),
        "{degradation}"
    );
    let net = NetMetrics::register(&registry);
    assert_eq!(net.journal_degraded_total.get(), 1, "degrades exactly once");

    // The bytes that landed before the fault are a valid journal
    // prefix: replayable records, at worst a torn tail.
    let bytes = buffer.lock().expect("disk buffer").clone();
    let (entries, tail) = read_journal(&bytes).expect("prefix must stay parseable");
    assert!(
        !entries.is_empty() || matches!(tail, JournalTail::Truncated { .. }),
        "something must have been journaled before the disk filled"
    );
    assert_matches_local(&drained, &local, "journal degradation");
}

/// The lease-table depth cap throttles concurrency without changing a
/// byte: grants beyond the cap are deferred (`NoWork`), counted, and
/// the drain still matches the reference.
#[test]
fn lease_depth_cap_defers_grants_but_drains_identically() {
    let local = local_reference(4);

    let registry = MetricsRegistry::new();
    let mut queue = JobQueue::with_metrics(&registry);
    for v in try_submit_fleet_jobs(&mut queue) {
        v.expect("unbounded policy admits everything");
    }
    let coordinator = Coordinator::new(queue, Duration::from_secs(10))
        .with_metrics(&registry)
        .with_max_live_leases(Some(1));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || {
        serve_drain_with(listener, coordinator, &DrainOptions::default()).expect("drain")
    });

    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let mut opts = WorkerOptions::named(format!("w{i}"));
            opts.slice_delay = Some(Duration::from_millis(5));
            std::thread::spawn(move || run_worker(&addr, &opts, &MetricsRegistry::new()))
        })
        .collect();
    for h in workers {
        h.join().expect("worker thread").expect("worker");
    }
    let drained = server.join().expect("server thread");

    let net = NetMetrics::register(&registry);
    assert!(
        net.leases_deferred_total.get() >= 1,
        "3 workers against a depth of 1 must defer at least once"
    );
    assert_matches_local(&drained, &local, "lease depth cap");
}

/// The inertness proof at fleet level: a drain under fully configured
/// but never-tripped governance (generous caps on everything) is
/// byte-identical to a drain with no governance at all — and both
/// match the local reference.
#[test]
fn untripped_governance_is_byte_identical_to_ungoverned() {
    let local = local_reference(4);

    let run = |governed: bool| -> Coordinator {
        let mut queue = JobQueue::new();
        if governed {
            queue.set_policy(QueuePolicy {
                max_jobs: Some(100),
                max_checkpoint_bytes: Some(1 << 30),
                deadline_ms: Some(3_600_000),
            });
        }
        for v in try_submit_fleet_jobs(&mut queue) {
            v.expect("generous limits admit everything");
        }
        let mut coordinator = Coordinator::new(queue, Duration::from_secs(10));
        let opts = if governed {
            coordinator = coordinator.with_max_live_leases(Some(100));
            DrainOptions {
                token: None,
                max_conns: Some(64),
                retry_after_ms: 5,
            }
        } else {
            DrainOptions::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound").to_string();
        let server = std::thread::spawn(move || {
            serve_drain_with(listener, coordinator, &opts).expect("drain")
        });
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                let opts = WorkerOptions::named(format!("w{i}"));
                std::thread::spawn(move || run_worker(&addr, &opts, &MetricsRegistry::new()))
            })
            .collect();
        for h in workers {
            h.join().expect("worker thread").expect("worker");
        }
        server.join().expect("server thread")
    };

    let governed = run(true);
    let ungoverned = run(false);
    for (i, (a, b)) in governed
        .queue()
        .jobs()
        .iter()
        .zip(ungoverned.queue().jobs().iter())
        .enumerate()
    {
        assert_eq!(
            a.stream(),
            b.stream(),
            "job {i}: governance-on-untripped vs off diverged"
        );
    }
    assert_matches_local(&governed, &local, "governed-untripped");
    assert_matches_local(&ungoverned, &local, "ungoverned");
}
