//! Sensitivity of the independent verifier: one test per corruption
//! family, each asserting the [`bgr::verify`] audit not only fails but
//! *localizes* the damage — right invariant, right net / channel /
//! constraint (DESIGN.md §12).
//!
//! Families:
//!
//! * density flip — a phantom span injected into the engine's
//!   incremental density map (`Corruption::FlipDensitySpan`);
//! * stale champion — a net whose scoreboard keys are dropped so its
//!   deletion never finishes (`Corruption::StaleChampion`);
//! * skewed memo — the memoized analyzer's length for one net inflated
//!   behind the dirty-tracking's back (`Corruption::SkewDelay`);
//! * broken tree — a trunk segment dropped from the result post hoc;
//! * silent constraint miss — a violation entry deleted post hoc.
//!
//! The first three go through the engine (fault-probe state-corruption
//! injection), proving the auditor catches *incremental-state* bugs,
//! not just mangled outputs.

use bgr::gen::{adversarial_case, AdversarialCase};
use bgr::layout::ChannelId;
use bgr::netlist::NetId;
use bgr::router::{
    Corruption, Fault, FaultProbe, GlobalRouter, OnViolation, Routed, RouterConfig, Segment,
    VerifyLevel,
};
use bgr::verify::{audit, AuditReport, Invariant};

/// A seed that routes cleanly (no violations) — the fuzz harness
/// exercises all of `0..256`; any feasible one works here.
const CLEAN_SEED: u64 = 0;

fn config() -> RouterConfig {
    RouterConfig {
        on_violation: OnViolation::BestEffort,
        // The engine's own self-audit (BGR_VERIFY) would abort the
        // corrupted routes before they finish; these tests exist to
        // prove the *external* auditor catches the damage on its own.
        verify: VerifyLevel::Off,
        ..RouterConfig::default()
    }
}

fn route(case: &AdversarialCase, fault: Option<Fault>) -> Routed {
    let router = GlobalRouter::new(config());
    match fault {
        None => router
            .route_checked(
                case.design.circuit.clone(),
                case.placement.clone(),
                case.design.constraints.clone(),
            )
            .expect("BestEffort route completes"),
        Some(f) => {
            router
                .route_checked_with_probe(
                    case.design.circuit.clone(),
                    case.placement.clone(),
                    case.design.constraints.clone(),
                    FaultProbe::new(f),
                )
                .expect("corrupted BestEffort route still completes")
                .0
        }
    }
}

fn audit_routed(case: &AdversarialCase, routed: &Routed) -> AuditReport {
    audit(
        &routed.circuit,
        &routed.placement,
        &case.design.constraints,
        &config(),
        &routed.result,
    )
}

/// First seed whose constraints are infeasible by construction — the
/// fuzz contract guarantees its BestEffort route carries a non-empty
/// violation report.
fn overconstrained_case() -> AdversarialCase {
    (0..256)
        .map(adversarial_case)
        .find(|c| c.expect_overconstrained)
        .expect("adversarial seed range contains over-constrained instances")
}

#[test]
fn sanity_uncorrupted_route_audits_clean() {
    let case = adversarial_case(CLEAN_SEED);
    let routed = route(&case, None);
    let report = audit_routed(&case, &routed);
    assert!(
        report.is_clean(),
        "healthy route must audit clean:\n{report}"
    );
}

#[test]
fn density_flip_is_localized_to_the_channel() {
    let case = adversarial_case(CLEAN_SEED);
    // A phantom 3-pitch span across the whole of channel 2, added to
    // the incremental map without the scoreboard being told (x2 far
    // past the chip edge; `add_span` clamps).
    let routed = route(
        &case,
        Some(Fault::Corrupt(Corruption::FlipDensitySpan {
            channel: 2,
            x1: 0,
            x2: 1_000_000,
            width: 3,
        })),
    );
    let report = audit_routed(&case, &routed);
    let f = report
        .verdict(Invariant::Density)
        .failure
        .as_ref()
        .expect("phantom span must break the density invariant");
    assert_eq!(f.channel, Some(ChannelId::new(2)), "{f}");
    // The trees themselves are genuine — only the density map lied.
    assert!(
        report.verdict(Invariant::Forest).failure.is_none(),
        "density corruption must not implicate the forest"
    );
}

#[test]
fn stale_champion_is_localized_to_the_frozen_net() {
    let case = adversarial_case(CLEAN_SEED);
    // Freeze nets until one that actually had deletable edges shows up:
    // a frozen net keeps its cyclic initial graph, so the from-scratch
    // forest oracle must flag exactly it.
    let mut caught = false;
    for net in 0..case.design.circuit.nets().len().min(12) {
        let routed = route(
            &case,
            Some(Fault::Corrupt(Corruption::StaleChampion {
                net: NetId::new(net),
            })),
        );
        let report = audit_routed(&case, &routed);
        if let Some(f) = &report.verdict(Invariant::Forest).failure {
            assert_eq!(
                f.net,
                Some(NetId::new(net)),
                "forest failure must localize to the frozen net: {f}"
            );
            caught = true;
            break;
        }
    }
    assert!(caught, "no frozen net ever produced a forest divergence");
}

#[test]
fn skewed_delay_memo_is_localized_to_a_constraint() {
    let case = overconstrained_case();
    // Pass 1 (healthy): learn which net the violation report blames.
    let healthy = route(&case, None);
    let entry = &healthy
        .result
        .violations
        .as_ref()
        .expect("over-constrained")
        .entries[0];
    let victim = entry.critical_nets[0];
    // Pass 2: skew that net's memoized length by 100 mm. The violation
    // report quotes the poisoned analyzer; the fresh recompute does not.
    let routed = route(
        &case,
        Some(Fault::Corrupt(Corruption::SkewDelay {
            net: victim,
            extra_um: 100_000.0,
        })),
    );
    let report = audit_routed(&case, &routed);
    let f = report
        .verdict(Invariant::Timing)
        .failure
        .as_ref()
        .expect("skewed arrivals must break the timing invariant");
    assert!(
        f.constraint.is_some(),
        "timing failure names a constraint: {f}"
    );
}

#[test]
fn dropped_trunk_is_localized_to_the_net() {
    let case = adversarial_case(CLEAN_SEED);
    let mut routed = route(&case, None);
    let (net, pos) = routed
        .result
        .trees
        .iter()
        .enumerate()
        .find_map(|(i, t)| {
            t.segments
                .iter()
                .position(|s| matches!(s, Segment::Trunk { .. }))
                .map(|p| (i, p))
        })
        .expect("routed instance has a trunk segment");
    routed.result.trees[net].segments.remove(pos);
    let report = audit_routed(&case, &routed);
    let f = report
        .verdict(Invariant::Forest)
        .failure
        .as_ref()
        .expect("a dropped trunk must break the forest invariant");
    assert_eq!(f.net, Some(NetId::new(net)), "{f}");
}

#[test]
fn silent_constraint_miss_is_localized_by_name() {
    let case = overconstrained_case();
    let mut routed = route(&case, None);
    let report = routed.result.violations.as_mut().expect("over-constrained");
    // Suppress the worst entry, as a buggy recovery pass would.
    let worst = report
        .entries
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.violation_ps.total_cmp(&b.violation_ps))
        .map(|(i, _)| i)
        .expect("non-empty violation report");
    let suppressed = report.entries.remove(worst);
    assert!(
        suppressed.violation_ps > 1e-3,
        "test instance must violate by a detectable margin"
    );
    let report = audit_routed(&case, &routed);
    let f = report
        .verdict(Invariant::Constraints)
        .failure
        .as_ref()
        .expect("a silent miss must break the constraints invariant");
    assert_eq!(
        f.constraint.as_deref(),
        Some(suppressed.name.as_str()),
        "{f}"
    );
}
