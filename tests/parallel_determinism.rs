//! Parallel-execution determinism: threads × shards never change the
//! route.
//!
//! The parallel subsystem (scoped-thread champion re-keying in
//! `bgr_core::par`, channel-region scoreboard shards in
//! `bgr_core::shard`) promises that worker threads and shard counts are
//! *pure performance knobs*: every deterministic observable — selection
//! log, routed trees, track counts, and the full `TraceEvent` stream —
//! is byte-identical for threads ∈ {1, 2, 8} × shards ∈ {1, 4}, and
//! identical to the `FullRescan` oracle. These tests prove it on the
//! same four generated circuit shapes as `tests/oracle_equivalence.rs`
//! (see DESIGN.md §10 for the structural argument the proof backs).

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::router::{GlobalRouter, RouteTrace, Routed, RouterConfig, SelectionStrategy, TraceEvent};

/// The threads × shards matrix every shape is routed under.
const MATRIX: [(usize, usize); 6] = [(1, 1), (1, 4), (2, 1), (2, 4), (8, 1), (8, 4)];

fn route_traced(params: &GenParams, config: RouterConfig) -> (Routed, RouteTrace) {
    let design = generate(params);
    let placement = place_design(&design, params, PlacementStyle::EvenFeed);
    GlobalRouter::new(config)
        .route_traced(
            design.circuit.clone(),
            placement,
            design.constraints.clone(),
        )
        .expect("generated designs route")
}

/// First index where two event streams diverge, for a readable failure.
fn first_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| x != y)
}

fn assert_matrix_matches_oracle(params: &GenParams, base: RouterConfig) {
    let oracle_config = RouterConfig {
        selection: SelectionStrategy::FullRescan,
        threads: 1,
        shards: 1,
        ..base.clone()
    };
    let (oracle, oracle_trace) = route_traced(params, oracle_config);
    // Re-key attribution is scoreboard-only (the rescan derives no dirty
    // sets); it must still be invariant across the matrix.
    let mut rekey_reference = None;
    for (threads, shards) in MATRIX {
        let config = RouterConfig {
            selection: SelectionStrategy::Scoreboard,
            threads,
            shards,
            ..base.clone()
        };
        let (routed, trace) = route_traced(params, config);
        let tag = format!("seed {} threads {threads} shards {shards}", params.seed);
        assert_eq!(
            routed.result.stats.selection_log, oracle.result.stats.selection_log,
            "{tag}: deletion sequences diverge"
        );
        assert_eq!(
            routed.result.trees, oracle.result.trees,
            "{tag}: routed trees diverge"
        );
        assert_eq!(
            routed.result.channel_tracks, oracle.result.channel_tracks,
            "{tag}: channel track counts diverge"
        );
        assert_eq!(
            routed.result.total_length_um, oracle.result.total_length_um,
            "{tag}: total lengths diverge"
        );
        let rekeys = routed.result.stats.rekey_causes;
        match rekey_reference {
            None => rekey_reference = Some(rekeys),
            Some(reference) => assert_eq!(
                rekeys, reference,
                "{tag}: rekey-cause attribution diverges across the matrix"
            ),
        }
        if let Some(i) = first_divergence(&trace.events, &oracle_trace.events) {
            panic!(
                "{tag}: trace streams diverge at event {i}: {:?} vs oracle {:?}",
                trace.events.get(i),
                oracle_trace.events.get(i)
            );
        }
    }
}

#[test]
fn small_constrained_circuit_is_thread_and_shard_invariant() {
    assert_matrix_matches_oracle(&GenParams::small(21), RouterConfig::default());
}

#[test]
fn wider_constrained_circuit_is_thread_and_shard_invariant() {
    let params = GenParams {
        logic_cells: 90,
        depth: 6,
        rows: 4,
        diff_pairs: 3,
        feeds_per_row: 4,
        num_constraints: 5,
        ..GenParams::small(22)
    };
    assert_matrix_matches_oracle(&params, RouterConfig::default());
}

#[test]
fn deep_tightly_constrained_circuit_is_thread_and_shard_invariant() {
    let params = GenParams {
        logic_cells: 70,
        depth: 9,
        rows: 3,
        global_fanin: 0.3,
        num_constraints: 6,
        wire_budget: 0.25,
        ..GenParams::small(23)
    };
    assert_matrix_matches_oracle(&params, RouterConfig::default());
}

#[test]
fn unconstrained_area_routing_is_thread_and_shard_invariant() {
    let params = GenParams {
        logic_cells: 60,
        rows: 3,
        ..GenParams::small(24)
    };
    assert_matrix_matches_oracle(&params, RouterConfig::unconstrained());
}

/// Deterministic budgets (DESIGN.md §11) are step counts, so exhaustion
/// — the `BudgetExhausted` event and the fallback completion path it
/// triggers — must land at the same stream position under every
/// threads × shards combination and match the oracle.
#[test]
fn budgeted_route_is_thread_and_shard_invariant() {
    use bgr::router::Budgets;
    let base = RouterConfig {
        budgets: Budgets {
            deletion_steps: Some(25),
            phase_reroutes: Some(2),
        },
        ..RouterConfig::default()
    };
    assert_matrix_matches_oracle(&GenParams::small(21), base);
}

/// Counters are diagnostics and *may* differ across configurations —
/// but the deterministic work counters (key evaluations, density
/// queries, memo traffic) must not: the same scans run in the same
/// order whatever the thread count. Only heap/shard/parallelism
/// bookkeeping is allowed to move, and with a fixed shard count even
/// heap traffic must match.
#[test]
fn scan_counters_are_thread_invariant() {
    use bgr::router::Counter;
    let params = GenParams::small(21);
    let reference = route_traced(
        &params,
        RouterConfig {
            threads: 1,
            shards: 4,
            ..RouterConfig::default()
        },
    )
    .1;
    for threads in [2, 8] {
        let trace = route_traced(
            &params,
            RouterConfig {
                threads,
                shards: 4,
                ..RouterConfig::default()
            },
        )
        .1;
        for c in [
            Counter::KeyEval,
            Counter::DensityWindowQuery,
            Counter::DensityAggregateQuery,
            Counter::HypCacheHit,
            Counter::HypCacheMiss,
            Counter::DelayMemoHit,
            Counter::DelayMemoMiss,
            Counter::HeapPush,
            Counter::HeapPop,
            Counter::StaleHeapPop,
        ] {
            assert_eq!(
                trace.counter(c),
                reference.counter(c),
                "threads {threads}: {} diverged",
                c.label()
            );
        }
    }
}
