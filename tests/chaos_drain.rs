//! Chaos-hardened distributed draining (DESIGN.md §15 "Failure model").
//!
//! Every fault class the failure model names — connection reset at a
//! frame boundary, reset tearing a frame mid-write, write stalls,
//! duplicate delivery, worker crash with resend, coordinator kill with
//! journal restart — is injected here, and after every one of them the
//! drain completes with job streams, selection logs and audit verdicts
//! **byte-identical** to an uninterrupted single-process run. Faults
//! change wall-clock timing; they must never change a byte of output.
//!
//! The injection schedule is a pure function of the chaos seed
//! (`bgr::net::ChaosProxy`), so a failing run replays exactly.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::JournalWriter;
use bgr::metrics::MetricsRegistry;
use bgr::net::{
    run_worker, serve_drain, serve_drain_with, ChaosOptions, ChaosProxy, ChaosUpstream,
    Coordinator, DrainOptions, NetMetrics, ProtoError, WorkerOptions, WorkerReport,
};
use bgr::router::RouterConfig;
use bgr::serve::{run_slice, JobQueue, ReplayStats};

fn small_case(
    seed: u64,
) -> (
    bgr::netlist::Circuit,
    bgr::layout::Placement,
    Vec<bgr::timing::PathConstraint>,
) {
    let params = GenParams::small(seed);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    (design.circuit, placement, design.constraints)
}

fn submit_fleet_jobs(queue: &mut JobQueue) {
    for (i, seed) in [3u64, 11, 42, 7].iter().enumerate() {
        let (c, p, k) = small_case(*seed);
        let quota = if i == 3 { None } else { Some(4 + 2 * i as u64) };
        queue.submit(format!("job{i}"), c, p, k, RouterConfig::default(), quota);
    }
}

/// The uninterrupted single-process reference every faulted drain must
/// match byte for byte.
fn local_reference() -> JobQueue {
    let mut local = JobQueue::new();
    submit_fleet_jobs(&mut local);
    local.run(4);
    local
}

/// The load-bearing assertion: a drain that went through faults left
/// the queue byte-identical to the local reference.
fn assert_matches_local(drained: &Coordinator, local: &JobQueue, ctx: &str) {
    assert!(drained.all_completed(), "{ctx}: drain did not complete");
    for (i, (dist, loc)) in drained
        .queue()
        .jobs()
        .iter()
        .zip(local.jobs().iter())
        .enumerate()
    {
        assert_eq!(
            dist.stream(),
            loc.stream(),
            "{ctx}: job {i} stream diverged"
        );
        assert_eq!(dist.slices(), loc.slices(), "{ctx}: job {i} slice count");
        let verdict = dist.verdict().expect("remote verdict");
        let local_audit = loc.audit().expect("local audit");
        assert_eq!(
            verdict.audit_line,
            local_audit.to_string(),
            "{ctx}: job {i} audit verdict diverged"
        );
        assert!(verdict.audit_clean, "{ctx}: job {i} audit not clean");
    }
}

/// Joins worker threads, tolerating exactly one failure shape: a
/// *retryable* transport error, which a worker legitimately reports
/// when the drain settles while it sits in reconnect backoff (its
/// retries then find nobody listening). Fatal errors and panics fail
/// the test — no fault class may produce them.
fn join_workers(
    handles: Vec<std::thread::JoinHandle<Result<WorkerReport, ProtoError>>>,
) -> Vec<WorkerReport> {
    handles
        .into_iter()
        .filter_map(|h| match h.join().expect("worker thread must not panic") {
            Ok(report) => Some(report),
            Err(e) => {
                assert!(
                    e.is_retryable(),
                    "worker died with a non-retryable error under transport chaos: {e}"
                );
                None
            }
        })
        .collect()
}

/// Resets (frame-boundary and mid-frame), stalls and duplicate
/// delivery, over a small seed matrix — each seeded drain must be
/// byte-identical to the local reference, and across the matrix every
/// injected fault class must actually have fired (a chaos harness that
/// silently injects nothing proves nothing).
#[test]
fn chaos_proxy_faults_leave_the_drain_byte_identical() {
    let local = local_reference();
    let mut fired = bgr::net::ChaosStats {
        connections: 0,
        frames: 0,
        resets: 0,
        mid_frame_resets: 0,
        stalls: 0,
        duplicates: 0,
    };
    let mut reconnects = 0u64;
    for seed in [1u64, 7, 42] {
        let mut queue = JobQueue::new();
        submit_fleet_jobs(&mut queue);
        let coordinator = Coordinator::new(queue, Duration::from_millis(500));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let upstream = listener.local_addr().expect("bound").to_string();
        let server = std::thread::spawn(move || serve_drain(listener, coordinator).expect("drain"));

        let proxy = ChaosProxy::start(
            ChaosUpstream::Addr(upstream),
            ChaosOptions {
                seed,
                reset_per_frame: 0.05,
                mid_frame: 0.5,
                stall_per_frame: 0.06,
                stall: Duration::from_millis(5),
                duplicate_per_frame: 0.12,
            },
        )
        .expect("proxy starts");
        let proxied = proxy.addr().to_string();

        let workers: Vec<_> = (0..3)
            .map(|i| {
                let addr = proxied.clone();
                let mut opts = WorkerOptions::named(format!("w{i}"));
                opts.retry_max = 25;
                opts.retry_base = Duration::from_millis(2);
                opts.retry_cap = Duration::from_millis(40);
                std::thread::spawn(move || run_worker(&addr, &opts, &MetricsRegistry::new()))
            })
            .collect();
        let reports = join_workers(workers);
        let drained = server.join().expect("server thread");
        let stats = proxy.shutdown();

        assert_matches_local(&drained, &local, &format!("seed {seed}"));
        reconnects += reports.iter().map(|r| r.reconnects).sum::<u64>();
        fired.resets += stats.resets;
        fired.mid_frame_resets += stats.mid_frame_resets;
        fired.stalls += stats.stalls;
        fired.duplicates += stats.duplicates;
        fired.frames += stats.frames;
    }
    // The harness must have genuinely exercised every fault class.
    assert!(fired.resets >= 1, "no reset fired across the matrix");
    assert!(fired.mid_frame_resets >= 1, "no mid-frame tear fired");
    assert!(fired.stalls >= 1, "no stall fired");
    assert!(fired.duplicates >= 1, "no duplicate delivery fired");
    assert!(
        reconnects >= 1,
        "resets fired but no worker ever reconnected"
    );
}

/// Worker crash right after submitting a result: the connection is
/// severed before the reply, the worker reconnects through its backoff
/// and resends the in-doubt result, and the coordinator rejects the
/// duplicate as stale. The reply that died on the wire had already
/// granted the next lease, so that orphan must expire and be re-granted
/// — the two recovery mechanisms compose. No byte of output moves.
#[test]
fn worker_crash_after_result_resends_and_lands_stale() {
    let local = local_reference();
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let registry = MetricsRegistry::new();
    let coordinator = Coordinator::new(queue, Duration::from_millis(250)).with_metrics(&registry);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || serve_drain(listener, coordinator).expect("drain"));

    let mut opts = WorkerOptions::named("crasher");
    opts.die_after_result = Some(2);
    opts.retry_base = Duration::from_millis(2);
    opts.retry_cap = Duration::from_millis(20);
    let worker_registry = MetricsRegistry::new();
    let report = run_worker(&addr, &opts, &worker_registry).expect("worker survives its crash");
    let drained = server.join().expect("server thread");

    assert!(report.reconnects >= 1, "crash injection must reconnect");
    assert!(!report.died, "die_after_result recovers; it does not exit");
    let metrics = NetMetrics::register(&registry);
    assert!(
        metrics.results_stale_total.get() >= 1,
        "the resent result must land stale"
    );
    assert!(
        metrics.leases_expired_total.get() >= 1,
        "the lease granted in the severed reply must recover by expiry"
    );
    assert_matches_local(&drained, &local, "die-after-result");
}

/// A slow-but-alive worker: its slice takes longer than the entire
/// lease timeout, but the in-slice heartbeat loop (on the cadence the
/// coordinator advertised in WELCOME) keeps the lease fresh — the work
/// is never forfeited to an expiry re-grant.
#[test]
fn slow_worker_heartbeats_keep_the_lease_alive() {
    let (c, p, k) = small_case(5);
    let mut local = JobQueue::new();
    local.submit("slow", c, p, k, RouterConfig::default(), None);
    local.run(1);

    let (c, p, k) = small_case(5);
    let mut queue = JobQueue::new();
    queue.submit("slow", c, p, k, RouterConfig::default(), None);
    let registry = MetricsRegistry::new();
    // Lease timeout 300 ms, slice pinned to ~700 ms: without
    // heartbeats the lease would expire twice over.
    let coordinator = Coordinator::new(queue, Duration::from_millis(300)).with_metrics(&registry);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || serve_drain(listener, coordinator).expect("drain"));

    let mut opts = WorkerOptions::named("tortoise");
    opts.slice_delay = Some(Duration::from_millis(700));
    let worker_registry = MetricsRegistry::new();
    let report = run_worker(&addr, &opts, &worker_registry).expect("worker");
    let drained = server.join().expect("server thread");

    assert!(report.slices >= 1);
    let metrics = NetMetrics::register(&registry);
    assert!(
        metrics.heartbeats_total.get() >= 2,
        "the slow slice must have been kept alive by heartbeats, got {}",
        metrics.heartbeats_total.get()
    );
    assert_eq!(
        metrics.leases_expired_total.get(),
        0,
        "a heartbeating worker must never forfeit its lease"
    );
    assert_matches_local(&drained, &local, "slow-worker");
}

/// A worker presenting the wrong shared secret (or none) is refused
/// with `Nack(auth)` — a fatal, non-retryable error — while an
/// authenticated worker drains everything as if nothing happened.
#[test]
fn wrong_token_is_refused_and_the_drain_still_settles() {
    let local = local_reference();
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let coordinator = Coordinator::new(queue, Duration::from_secs(10));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let opts = DrainOptions {
        token: Some("fleet-secret".to_string()),
        ..DrainOptions::default()
    };
    let server =
        std::thread::spawn(move || serve_drain_with(listener, coordinator, &opts).expect("drain"));

    let mut intruder = WorkerOptions::named("intruder");
    intruder.token = Some("wrong-secret".to_string());
    match run_worker(&addr, &intruder, &MetricsRegistry::new()) {
        Err(ProtoError::Refused { code, .. }) => assert_eq!(code, "auth"),
        other => panic!("wrong token must be refused with Nack(auth), got {other:?}"),
    }
    // No token at all is refused identically.
    match run_worker(
        &addr,
        &WorkerOptions::named("anon"),
        &MetricsRegistry::new(),
    ) {
        Err(e @ ProtoError::Refused { .. }) => assert!(!e.is_retryable()),
        other => panic!("tokenless worker must be refused, got {other:?}"),
    }

    let mut honest = WorkerOptions::named("honest");
    honest.token = Some("fleet-secret".to_string());
    run_worker(&addr, &honest, &MetricsRegistry::new()).expect("authenticated worker");
    let drained = server.join().expect("server thread");
    assert_matches_local(&drained, &local, "auth");
}

/// Coordinator kill + restart: the write-ahead journal alone carries
/// the drain across the crash. The first coordinator applies a few
/// results and is destroyed without any graceful teardown; a second
/// process-life re-submits the same jobs, replays the journal to the
/// exact pre-crash queue state, finishes the drain over TCP — and the
/// result is byte-identical to a run that never crashed. A torn tail
/// (kill mid-append) costs exactly the torn record, nothing else.
#[test]
fn coordinator_kill_and_journal_restart_is_byte_identical() {
    let local = local_reference();
    let dir = std::env::temp_dir().join(format!("bgr-chaos-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("drain.bgrj");
    let _ = std::fs::remove_file(&path);

    // First life: apply three results, journaling each before it
    // mutates the queue, then die with no teardown whatsoever.
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let mut first = Coordinator::new(queue, Duration::from_secs(10))
        .with_journal(JournalWriter::create(&path).expect("journal create"));
    for _ in 0..3 {
        let spec = first.next_lease(Instant::now()).expect("leasable");
        let out = run_slice(&spec.checkpoint, spec.quota);
        assert!(first.apply_result(spec.job, spec.slice, out));
    }
    assert!(first.journal_degradation().is_none());
    drop(first); // kill -9: in-memory state gone; only the journal survives

    let bytes = std::fs::read(&path).expect("journal survives the crash");

    // A kill mid-append tears the tail: replaying the truncated bytes
    // loses exactly the torn record and errors on nothing.
    {
        let mut torn_queue = JobQueue::new();
        submit_fleet_jobs(&mut torn_queue);
        let mut torn = Coordinator::new(torn_queue, Duration::from_secs(10));
        let stats = torn
            .replay_journal(&bytes[..bytes.len() - 3])
            .expect("torn tail is tolerated");
        assert_eq!(
            stats,
            ReplayStats {
                applied: 2,
                stale: 0
            }
        );
    }

    // Second life: same jobs, full replay, then finish over TCP with
    // the journal re-attached in append mode.
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let mut second = Coordinator::new(queue, Duration::from_secs(10));
    let stats = second.replay_journal(&bytes).expect("replay");
    assert_eq!(
        stats,
        ReplayStats {
            applied: 3,
            stale: 0
        }
    );
    // Replaying the same journal twice is harmless: every record is
    // now stale by slice index.
    let again = second.replay_journal(&bytes).expect("double replay");
    assert_eq!(
        again,
        ReplayStats {
            applied: 0,
            stale: 3
        }
    );
    let second = second.with_journal(JournalWriter::open_append(&path).expect("journal append"));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || serve_drain(listener, second).expect("drain"));
    run_worker(
        &addr,
        &WorkerOptions::named("finisher"),
        &MetricsRegistry::new(),
    )
    .expect("worker");
    let drained = server.join().expect("server thread");
    assert!(drained.journal_degradation().is_none());
    assert_matches_local(&drained, &local, "journal-restart");

    // The journal now holds every applied result of the whole drain in
    // order: a third life can reconstruct the *completed* queue from
    // the journal alone, without executing a single slice.
    let full = std::fs::read(&path).expect("journal");
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let mut third = Coordinator::new(queue, Duration::from_secs(10));
    let stats = third.replay_journal(&full).expect("full replay");
    let total: u64 = local.jobs().iter().map(|j| j.slices()).sum();
    assert_eq!(
        stats,
        ReplayStats {
            applied: total,
            stale: 0
        }
    );
    assert_matches_local(&third, &local, "journal-only reconstruction");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// The coordinator restart composes with the chaos proxy: workers keep
/// pointing at the proxy, the proxy re-reads the coordinator's address
/// file per connection, and a restart on a *different* ephemeral port
/// is just another transport fault from the fleet's point of view.
#[test]
fn restart_behind_the_proxy_is_transparent_to_workers() {
    let local = local_reference();
    let dir = std::env::temp_dir().join(format!("bgr-chaos-addrfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr_file = dir.join("coordinator.addr");
    let journal = dir.join("drain.bgrj");
    let _ = std::fs::remove_file(&journal);

    let write_addr = |addr: &str| {
        let tmp = addr_file.with_extension("tmp");
        std::fs::write(&tmp, addr).expect("write addr");
        std::fs::rename(&tmp, &addr_file).expect("rename addr");
    };

    // First coordinator life, reachable only through the proxy.
    let mut queue = JobQueue::new();
    submit_fleet_jobs(&mut queue);
    let first = Coordinator::new(queue, Duration::from_secs(10))
        .with_journal(JournalWriter::create(&journal).expect("journal create"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    write_addr(&listener.local_addr().expect("bound").to_string());
    let proxy = ChaosProxy::start(
        ChaosUpstream::AddrFile(addr_file.clone()),
        ChaosOptions::quiet(9),
    )
    .expect("proxy starts");
    let proxied = proxy.addr().to_string();

    // One worker drives the first life just past two results, then the
    // "machine dies": listener and coordinator vanish mid-drain.
    let server = std::thread::spawn(move || serve_drain(listener, first));
    {
        let addr = proxied.clone();
        let mut opts = WorkerOptions::named("early");
        opts.die_on_lease = Some(3); // vanish while the drain is live
        let report = run_worker(&addr, &opts, &MetricsRegistry::new()).expect("early worker");
        assert!(report.died);
    }
    // Kill the first life: nothing drains it, so the serve loop is
    // still waiting for connections — drop its listener by replacing
    // the address file and severing: simplest faithful kill is to
    // leave it serving an address nobody will dial again and abandon
    // the thread; the journal holds everything it applied.
    write_addr("127.0.0.1:1"); // black hole until the restart rebinds
    drop(server); // abandoned, never joined — a killed process joins nobody

    // Restart on a fresh ephemeral port, replaying the journal.
    let applied_so_far = {
        let bytes = std::fs::read(&journal).expect("journal");
        let mut queue = JobQueue::new();
        submit_fleet_jobs(&mut queue);
        let mut second = Coordinator::new(queue, Duration::from_secs(1));
        let stats = second.replay_journal(&bytes).expect("replay");
        let second =
            second.with_journal(JournalWriter::open_append(&journal).expect("journal append"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("rebind");
        write_addr(&listener.local_addr().expect("bound").to_string());
        let server = std::thread::spawn(move || serve_drain(listener, second).expect("drain"));
        let mut opts = WorkerOptions::named("late");
        opts.retry_base = Duration::from_millis(2);
        run_worker(&proxied, &opts, &MetricsRegistry::new()).expect("late worker");
        let drained = server.join().expect("server thread");
        assert_matches_local(&drained, &local, "restart-behind-proxy");
        stats.applied
    };
    assert!(
        applied_so_far >= 2,
        "the first life must have journaled its progress"
    );
    proxy.shutdown();
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&addr_file);
    let _ = std::fs::remove_dir(&dir);
}
