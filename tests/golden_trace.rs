//! Golden-trace regression check (DESIGN.md §10).
//!
//! Routes the fixed [`bgr::gen::golden_instance`] and compares the
//! deterministic prefix of its trace (meta + event lines) against the
//! checked-in `tests/golden/trace.jsonl`. Counters, histograms and
//! spans are machine- and strategy-dependent diagnostics and are
//! excluded by [`bgr::io::trace_divergence`].
//!
//! On an intentional behavior change, re-bless with:
//!
//! ```text
//! BGR_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! The failure message quotes the first diverging deterministic line,
//! so behavioral drift (a different deletion pick, a new or missing
//! budget/degradation event) is caught at event granularity.

use std::path::PathBuf;

use bgr::gen::golden_instance;
use bgr::io::{deterministic_lines, trace_divergence, write_trace_jsonl};
use bgr::router::{GlobalRouter, RouterConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace.jsonl")
}

#[test]
fn deterministic_events_match_checked_in_golden() {
    let ds = golden_instance();
    let (routed, trace) = GlobalRouter::new(RouterConfig::default())
        .route_traced(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("golden instance routes");
    assert_eq!(routed.result.trees.len(), ds.design.circuit.nets().len());

    let jsonl = write_trace_jsonl(&trace);
    let path = golden_path();
    if std::env::var("BGR_BLESS").is_ok_and(|v| v == "1") {
        let det = deterministic_lines(&jsonl);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &det).expect("write golden trace");
        println!(
            "blessed {} ({} deterministic lines)",
            path.display(),
            det.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read golden {}: {e} (bless with BGR_BLESS=1)",
            path.display()
        )
    });
    if let Some(diff) = trace_divergence(&golden, &jsonl) {
        panic!(
            "golden trace drift against {}:\n{diff}\n\
             if the change is intentional, re-bless with BGR_BLESS=1",
            path.display()
        );
    }
}
