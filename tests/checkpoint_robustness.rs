//! Checkpoint robustness: damaged checkpoints must surface as
//! structured errors — `bgr::io::ParseError` from the codec or
//! `RouteError::Checkpoint` from [`RouteSession::resume`] — and
//! **never** as a panic (DESIGN.md §13). Damage the restore path can't
//! see syntactically (a mutated statistic) must instead be caught by
//! the independent post-restore audit.
//!
//! Covered here:
//!
//! - truncation at every granularity (whole-line cuts across the file
//!   and mid-line byte cuts) → `ParseError`;
//! - token corruption (garbled hex, non-numeric counts, wrong
//!   keywords, bad mask characters) → `ParseError`;
//! - version skew → `ParseError` naming the version;
//! - a syntactically valid checkpoint whose alive-mask disconnects a
//!   net → `RouteError::Checkpoint` at resume;
//! - a `diff_pairs_locked` stat bump — parses and resumes cleanly, but
//!   the finished result fails the differential-pair oracle of the
//!   independent audit.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bgr::gen::golden_instance;
use bgr::io::{parse_checkpoint, write_checkpoint};
use bgr::router::{CollectingProbe, RouteError, RouteSession, RouterConfig};
use bgr::verify::{audit, Invariant};

/// A mid-run checkpoint of the golden instance (parked inside the
/// deletion loop, several suspensions in).
fn mid_run_checkpoint() -> String {
    let ds = golden_instance();
    let mut session = RouteSession::start(
        RouterConfig::default(),
        ds.design.circuit.clone(),
        ds.placement.clone(),
        ds.design.constraints.clone(),
        CollectingProbe::new(),
    )
    .expect("session starts");
    for _ in 0..3 {
        session.step(Some(4)).expect("step succeeds");
    }
    write_checkpoint(&session.snapshot())
}

/// Asserts `parse_checkpoint(text)` errors structurally — and, via
/// `catch_unwind`, that it does not panic either.
fn assert_parse_rejects(text: &str, what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| parse_checkpoint(text).map(|_| ())));
    match outcome {
        Ok(Err(_)) => {}
        Ok(Ok(())) => panic!("{what}: damaged checkpoint parsed cleanly"),
        Err(_) => panic!("{what}: parser panicked instead of erroring"),
    }
}

#[test]
fn truncation_never_panics_and_always_errors() {
    let text = mid_run_checkpoint();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 40, "checkpoint too small to exercise cuts");
    // Whole-line cuts spread over the file (0 lines up to all-but-one).
    for keep in [0, 1, 2, lines.len() / 4, lines.len() / 2, lines.len() - 1] {
        let cut = lines[..keep].join("\n");
        assert_parse_rejects(&cut, &format!("cut after {keep} lines"));
    }
    // Mid-line byte cuts (sliced at char boundaries).
    for frac in [1usize, 3, 7] {
        let mut cut = text.len() * frac / 8;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_parse_rejects(&text[..cut], &format!("byte cut at {cut}"));
    }
}

#[test]
fn corrupted_tokens_are_parse_errors() {
    let text = mid_run_checkpoint();
    let cases: Vec<(String, &str)> = vec![
        (
            text.replacen("bgr-checkpoint v1", "bgr-checkpoint v2", 1),
            "version skew",
        ),
        (
            text.replacen("bgr-checkpoint v1", "some other file", 1),
            "foreign header",
        ),
        (text.replacen("stage", "stge", 1), "misspelled keyword"),
        (
            text.replacen("stat deletions ", "stat deletions x", 1),
            "non-numeric stat",
        ),
        (
            text.replacen("config wire ", "config wire zz", 1),
            "garbled hex",
        ),
    ];
    for (damaged, what) in &cases {
        assert_ne!(damaged, &text, "{what}: mutation did not apply");
        assert_parse_rejects(damaged, what);
    }
    // Bad alive-mask character.
    let masked = {
        let idx = text.find("\na ").expect("alive section present");
        let mut t = text.clone();
        t.replace_range(idx + 3..idx + 4, "2");
        t
    };
    assert_parse_rejects(&masked, "bad mask char");
}

#[test]
fn version_skew_error_names_the_version() {
    let text = mid_run_checkpoint().replacen("bgr-checkpoint v1", "bgr-checkpoint v7", 1);
    let err = parse_checkpoint(&text).expect_err("skewed version must not parse");
    assert!(
        err.to_string().contains("version"),
        "unhelpful version error: {err}"
    );
}

#[test]
fn disconnecting_alive_mask_is_a_checkpoint_error() {
    let text = mid_run_checkpoint();
    // Kill every edge of the first net: terminals can no longer connect.
    let idx = text.find("\na ").expect("alive section present") + 1;
    let end = text[idx..].find('\n').map(|e| idx + e).unwrap();
    let dead = "a ".to_string() + &"0".repeat(end - idx - 2);
    let damaged = format!("{}{}{}", &text[..idx], dead, &text[end..]);
    let snapshot = parse_checkpoint(&damaged).expect("mask damage is syntactically valid");
    let err = match RouteSession::resume(snapshot, CollectingProbe::new()) {
        Err(e) => e,
        Ok(_) => panic!("resume must reject a disconnecting mask"),
    };
    assert!(
        matches!(&err, RouteError::Checkpoint { .. }),
        "wrong variant: {err}"
    );
    assert!(err.to_string().contains("disconnect"), "unhelpful: {err}");
}

#[test]
fn stat_mutation_is_caught_by_the_post_restore_audit() {
    let ds = golden_instance();
    let config = RouterConfig::default();
    let text = mid_run_checkpoint();

    // Bump `diff_pairs_locked`: syntactically fine, semantically a lie —
    // the restore path cannot see it, the independent audit can
    // (locked + independent must equal the circuit's pair count).
    let line_start = text
        .find("stat diff_pairs_locked ")
        .expect("stat line present");
    let val_start = line_start + "stat diff_pairs_locked ".len();
    let val_end = val_start + text[val_start..].find('\n').unwrap();
    let locked: usize = text[val_start..val_end].parse().unwrap();
    let damaged = format!("{}{}{}", &text[..val_start], locked + 1, &text[val_end..]);

    let snapshot = parse_checkpoint(&damaged).expect("stat lie parses");
    let mut session =
        RouteSession::resume(snapshot, CollectingProbe::new()).expect("stat lie resumes");
    while session.step(None).expect("step succeeds") != bgr::router::StepOutcome::Ready {}
    let (routed, _) = session.finish().expect("finish succeeds");

    let report = audit(
        &routed.circuit,
        &routed.placement,
        &ds.design.constraints,
        &config,
        &routed.result,
    );
    assert!(!report.is_clean(), "audit missed the corrupted statistic");
    assert!(
        report.verdict(Invariant::DiffPair).failure.is_some(),
        "corruption should fail the differential-pair oracle, got: {:?}",
        report.first_failure()
    );
}
