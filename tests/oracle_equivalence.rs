//! Scoreboard vs full-rescan oracle equivalence.
//!
//! The incremental candidate scoreboard
//! (`bgr_core::SelectionStrategy::Scoreboard`) is defined to reproduce
//! the naive full-rescan selection **exactly** — same deletion sequence,
//! same trees, same track counts. These tests route generated circuits
//! of several shapes under both strategies and compare every observable.

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::router::{GlobalRouter, Routed, RouterConfig, SelectionStrategy};

fn route_with(params: &GenParams, selection: SelectionStrategy, base: RouterConfig) -> Routed {
    let design = generate(params);
    let placement = place_design(&design, params, PlacementStyle::EvenFeed);
    let config = RouterConfig { selection, ..base };
    GlobalRouter::new(config)
        .route(
            design.circuit.clone(),
            placement,
            design.constraints.clone(),
        )
        .expect("generated designs route")
}

fn assert_equivalent(params: &GenParams, base: RouterConfig) {
    let fast = route_with(params, SelectionStrategy::Scoreboard, base.clone());
    let oracle = route_with(params, SelectionStrategy::FullRescan, base);
    assert_eq!(
        fast.result.stats.selection_log, oracle.result.stats.selection_log,
        "seed {}: deletion sequences diverge",
        params.seed
    );
    assert_eq!(
        fast.result.stats.deletions, oracle.result.stats.deletions,
        "seed {}: deletion totals diverge",
        params.seed
    );
    assert_eq!(
        fast.result.stats.reroutes, oracle.result.stats.reroutes,
        "seed {}: reroute totals diverge",
        params.seed
    );
    assert_eq!(
        fast.result.trees, oracle.result.trees,
        "seed {}: routed trees diverge",
        params.seed
    );
    assert_eq!(
        fast.result.channel_tracks, oracle.result.channel_tracks,
        "seed {}: channel track counts diverge",
        params.seed
    );
    assert_eq!(
        fast.result.total_length_um, oracle.result.total_length_um,
        "seed {}: total lengths diverge",
        params.seed
    );
}

#[test]
fn small_constrained_circuit_matches_oracle() {
    assert_equivalent(&GenParams::small(21), RouterConfig::default());
}

#[test]
fn wider_constrained_circuit_matches_oracle() {
    let params = GenParams {
        logic_cells: 90,
        depth: 6,
        rows: 4,
        diff_pairs: 3,
        feeds_per_row: 4,
        num_constraints: 5,
        ..GenParams::small(22)
    };
    assert_equivalent(&params, RouterConfig::default());
}

#[test]
fn deep_tightly_constrained_circuit_matches_oracle() {
    let params = GenParams {
        logic_cells: 70,
        depth: 9,
        rows: 3,
        global_fanin: 0.3,
        num_constraints: 6,
        wire_budget: 0.25,
        ..GenParams::small(23)
    };
    assert_equivalent(&params, RouterConfig::default());
}

#[test]
fn unconstrained_area_routing_matches_oracle() {
    let params = GenParams {
        logic_cells: 60,
        rows: 3,
        ..GenParams::small(24)
    };
    assert_equivalent(&params, RouterConfig::unconstrained());
}
