//! `RouterConfig::verify` wiring: audit scheduling per [`VerifyLevel`]
//! and the §9/§10 determinism guarantee that `Off` and `Final` produce
//! byte-identical traces (DESIGN.md §12).

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::{deterministic_lines, write_trace_jsonl};
use bgr::router::{
    CollectingProbe, GlobalRouter, RouteTrace, Routed, RouterConfig, TraceEvent, VerifyLevel,
};

fn route_traced(verify: VerifyLevel) -> (Routed, RouteTrace) {
    let params = GenParams::small(3);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let config = RouterConfig {
        verify,
        ..RouterConfig::default()
    };
    let (routed, probe) = GlobalRouter::new(config)
        .route_with_probe(
            design.circuit,
            placement,
            design.constraints,
            CollectingProbe::new(),
        )
        .expect("instance routes");
    (routed, probe.finish())
}

fn audit_events(trace: &RouteTrace) -> (usize, usize) {
    let passed = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::AuditPassed { .. }))
        .count();
    let steps = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::AuditStep { .. }))
        .count();
    (passed, steps)
}

#[test]
fn off_runs_no_audits() {
    let (routed, trace) = route_traced(VerifyLevel::Off);
    assert_eq!(routed.result.stats.audits_passed, 0);
    assert_eq!(routed.result.stats.audit_checks, 0);
    assert_eq!(audit_events(&trace), (0, 0));
}

#[test]
fn final_audits_once_and_silently() {
    let (routed, trace) = route_traced(VerifyLevel::Final);
    assert_eq!(routed.result.stats.audits_passed, 1);
    assert!(routed.result.stats.audit_checks > 0);
    // Final never emits trace events — that is what keeps it safe to
    // enable under golden-trace comparison.
    assert_eq!(audit_events(&trace), (0, 0));
}

#[test]
fn phases_audit_each_engine_phase_boundary() {
    let (routed, trace) = route_traced(VerifyLevel::Phases);
    let (passed, steps) = audit_events(&trace);
    // InitialRouting, RecoverViolate, ImproveDelay, ImproveArea.
    assert!(passed >= 2, "expected several phase audits, got {passed}");
    assert_eq!(steps, 0);
    assert_eq!(routed.result.stats.audits_passed as usize, passed);
    assert!(routed.result.stats.audit_checks > 0);
}

#[test]
fn steps_audit_inside_the_deletion_loop() {
    let (routed, trace) = route_traced(VerifyLevel::Steps(8));
    let (passed, steps) = audit_events(&trace);
    assert!(steps >= 1, "expected step audits every 8 selections");
    assert!(passed >= 2, "Steps includes the phase audits too");
    assert_eq!(routed.result.stats.audits_passed as usize, passed + steps);
}

#[test]
fn final_trace_is_byte_identical_to_off() {
    let (_, off) = route_traced(VerifyLevel::Off);
    let (_, fin) = route_traced(VerifyLevel::Final);
    assert_eq!(
        deterministic_lines(&write_trace_jsonl(&off)),
        deterministic_lines(&write_trace_jsonl(&fin)),
        "VerifyLevel::Final must not perturb the decision stream"
    );
}
