//! Observability must be free (DESIGN.md §14): attaching the
//! hierarchical self-profiler or a metrics registry changes no
//! deterministic observable.
//!
//! * [`ProfilingProbe`] vs [`CollectingProbe`]: identical `TraceEvent`
//!   streams and selection logs across threads ∈ {1, 8} × shards ∈
//!   {1, 4} — even though profiling restructures the deletion loop's
//!   rekey batches for per-cause attribution.
//! * `bgr-serve` job streams: byte-identical with and without a
//!   [`MetricsRegistry`] attached, across thread counts.
//! * The Prometheus exposition itself renders the serve metric family
//!   deterministically (names, labels, ordering).

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::metrics::MetricsRegistry;
use bgr::router::{GlobalRouter, RouterConfig};
use bgr::serve::JobQueue;

fn params() -> GenParams {
    GenParams {
        logic_cells: 220,
        rows: 6,
        diff_pairs: 2,
        num_constraints: 6,
        ..GenParams::small(0x0B5E7)
    }
}

#[test]
fn profiling_probe_changes_no_deterministic_observable() {
    let p = params();
    let design = generate(&p);
    let placement = place_design(&design, &p, PlacementStyle::EvenFeed);

    type DeterministicKey = (Vec<String>, Vec<(bgr::netlist::NetId, u32)>);
    let mut reference: Option<DeterministicKey> = None;
    for threads in [1usize, 8] {
        for shards in [1usize, 4] {
            let config = RouterConfig {
                threads,
                shards,
                ..RouterConfig::default()
            };
            let (traced, trace) = GlobalRouter::new(config.clone())
                .route_traced(
                    design.circuit.clone(),
                    placement.clone(),
                    design.constraints.clone(),
                )
                .expect("instance routes");
            let (profiled, profile_trace, profile) = GlobalRouter::new(config)
                .route_profiled(
                    design.circuit.clone(),
                    placement.clone(),
                    design.constraints.clone(),
                )
                .expect("instance routes");

            assert_eq!(
                trace.events, profile_trace.events,
                "threads={threads} shards={shards}: profiling changed the event stream"
            );
            assert_eq!(
                traced.result.stats.selection_log, profiled.result.stats.selection_log,
                "threads={threads} shards={shards}: profiling changed the selection log"
            );
            assert!(profile.total() > std::time::Duration::ZERO);
            assert!(!profile.entries().is_empty());

            // And every (threads, shards) cell agrees with the first.
            let key = (
                bgr::io::deterministic_lines(&bgr::io::write_trace_jsonl(&trace))
                    .lines()
                    .map(str::to_owned)
                    .collect::<Vec<_>>(),
                traced.result.stats.selection_log.clone(),
            );
            match &reference {
                None => reference = Some(key),
                Some(want) => assert_eq!(
                    want, &key,
                    "threads={threads} shards={shards}: deterministic stream drifted"
                ),
            }
        }
    }
}

#[test]
fn serve_streams_are_identical_with_and_without_metrics() {
    let p = params();
    let design = generate(&p);
    let placement = place_design(&design, &p, PlacementStyle::EvenFeed);

    let mut reference: Option<Vec<String>> = None;
    for threads in [1usize, 8] {
        for metered in [false, true] {
            let registry = MetricsRegistry::new();
            let mut q = if metered {
                JobQueue::with_metrics(&registry)
            } else {
                JobQueue::new()
            };
            for (i, quota) in [Some(3), None].iter().enumerate() {
                q.submit(
                    format!("job{i}"),
                    design.circuit.clone(),
                    placement.clone(),
                    design.constraints.clone(),
                    RouterConfig::default(),
                    *quota,
                );
            }
            q.run(threads);
            let streams: Vec<String> = q.jobs().iter().map(|j| j.stream().to_string()).collect();
            match &reference {
                None => reference = Some(streams),
                Some(want) => assert_eq!(
                    want, &streams,
                    "threads={threads} metered={metered}: job streams drifted"
                ),
            }
            if metered {
                // The exposition is live and renders every family.
                let text = registry.render_prometheus();
                for name in ["bgr_slices_total", "bgr_slice_latency_us_count"] {
                    assert!(text.contains(name), "missing {name}");
                }
            }
        }
    }
}

/// The overload instruments (admission rejections, deadline misses,
/// connection sheds, lease deferrals, journal degradation) must be as
/// free as every other metric: a governed-but-untripped queue with the
/// full instrument set attached produces byte-identical job streams to
/// a bare ungoverned queue.
#[test]
fn overload_instruments_are_perturbation_free() {
    let p = params();
    let design = generate(&p);
    let placement = place_design(&design, &p, PlacementStyle::EvenFeed);

    let mut reference: Option<Vec<String>> = None;
    for governed in [false, true] {
        let registry = MetricsRegistry::new();
        let mut q = if governed {
            let mut q = JobQueue::with_metrics(&registry);
            q.set_policy(bgr::serve::QueuePolicy {
                max_jobs: Some(16),
                max_checkpoint_bytes: Some(1 << 30),
                deadline_ms: Some(3_600_000),
            });
            q
        } else {
            JobQueue::new()
        };
        for (i, quota) in [Some(3), None].iter().enumerate() {
            let submitted = if governed {
                q.try_submit(
                    format!("job{i}"),
                    design.circuit.clone(),
                    placement.clone(),
                    design.constraints.clone(),
                    RouterConfig::default(),
                    *quota,
                )
                .expect("generous limits admit everything")
            } else {
                q.submit(
                    format!("job{i}"),
                    design.circuit.clone(),
                    placement.clone(),
                    design.constraints.clone(),
                    RouterConfig::default(),
                    *quota,
                )
            };
            assert_eq!(submitted, i);
        }
        q.run(4);
        let streams: Vec<String> = q.jobs().iter().map(|j| j.stream().to_string()).collect();
        match &reference {
            None => reference = Some(streams),
            Some(want) => assert_eq!(
                want, &streams,
                "governed={governed}: untripped governance perturbed a stream"
            ),
        }
        if governed {
            // Nothing tripped, so every shed instrument reads zero.
            let m = bgr::serve::ServeMetrics::register(&registry);
            assert_eq!(m.rejected_queue_full_total.get(), 0);
            assert_eq!(m.rejected_checkpoint_bytes_total.get(), 0);
            assert_eq!(m.deadline_missed_total.get(), 0);
        }
    }
}

/// The new instruments render deterministically in the Prometheus
/// exposition — labeled rejection reasons included — and merge through
/// the fleet snapshot path like every other counter.
#[test]
fn overload_instruments_render_and_merge_deterministically() {
    let render = || {
        let registry = MetricsRegistry::new();
        let m = bgr::serve::ServeMetrics::register(&registry);
        m.rejected_queue_full_total.add(2);
        m.rejected_checkpoint_bytes_total.inc();
        m.deadline_missed_total.add(3);
        let n = bgr::net::NetMetrics::register(&registry);
        n.conns_shed_total.add(60);
        n.leases_deferred_total.add(4);
        n.journal_degraded_total.inc();
        registry
    };
    let a = render().render_prometheus();
    assert_eq!(a, render().render_prometheus());
    assert!(
        a.contains("bgr_jobs_rejected_total{reason=\"queue-full\"} 2"),
        "{a}"
    );
    assert!(
        a.contains("bgr_jobs_rejected_total{reason=\"checkpoint-bytes\"} 1"),
        "{a}"
    );
    assert!(a.contains("bgr_deadline_missed_total 3"), "{a}");
    assert!(a.contains("bgr_net_conns_shed_total 60"), "{a}");
    assert!(a.contains("bgr_net_leases_deferred_total 4"), "{a}");
    assert!(a.contains("bgr_net_journal_degraded_total 1"), "{a}");

    // Fleet merge: a worker snapshot carrying the same families sums
    // into the coordinator's exposition.
    let coordinator = render();
    let worker = render();
    let merged = coordinator.render_merged(&[worker.snapshot()]);
    assert!(
        merged.contains("bgr_jobs_rejected_total{reason=\"queue-full\"} 4"),
        "{merged}"
    );
    assert!(merged.contains("bgr_net_conns_shed_total 120"), "{merged}");
}

#[test]
fn serve_exposition_renders_deterministically() {
    // Two registries fed the same deterministic updates render
    // byte-identically — wall-clock lives only in values the test
    // doesn't exercise (the latency histogram stays empty here).
    let render = || {
        let registry = MetricsRegistry::new();
        let m = bgr::serve::ServeMetrics::register(&registry);
        m.slices_total.add(7);
        m.selections_total.add(41);
        m.queue_depth.set(3);
        m.audit_clean_total.inc();
        m.jobs_completed_total.inc();
        registry.render_prometheus()
    };
    let a = render();
    assert_eq!(a, render());
    assert!(a.contains("bgr_audit_total{verdict=\"clean\"} 1"), "{a}");
    assert!(a.contains("bgr_jobs_terminal_total{state=\"completed\"} 1"));
    assert!(a.contains("bgr_queue_depth 3"));
}
