//! Degenerate-input robustness: inputs at the boundary of the domain
//! must route — or error with a structured `RouteError` — cleanly in
//! both `OnViolation` modes, with no panic (DESIGN.md §11).

use bgr::layout::{Geometry, Placement, PlacementBuilder};
use bgr::netlist::{CellLibrary, Circuit, CircuitBuilder};
use bgr::router::{GlobalRouter, OnViolation, Routed, RouterConfig};
use bgr::timing::PathConstraint;

fn config(ov: OnViolation) -> RouterConfig {
    RouterConfig {
        on_violation: ov,
        ..RouterConfig::default()
    }
}

/// Routes in both modes behind the panic boundary; asserts both modes
/// produce the same class of outcome and returns the BestEffort one.
fn route_both_modes(
    circuit: &Circuit,
    placement: &Placement,
    constraints: &[PathConstraint],
) -> Result<Routed, bgr::router::RouteError> {
    let run = |ov| {
        GlobalRouter::new(config(ov)).route_checked(
            circuit.clone(),
            placement.clone(),
            constraints.to_vec(),
        )
    };
    let strict = run(OnViolation::Fail);
    let lax = run(OnViolation::BestEffort);
    match (&strict, &lax) {
        // Fail may reject what BestEffort degrades through; any other
        // disagreement between the modes is a bug.
        (Err(bgr::router::RouteError::ConstraintsUnsatisfied(_)), Ok(_)) => {}
        (Ok(a), Ok(b)) => assert_eq!(a.result.trees, b.result.trees),
        (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
        (a, b) => panic!("modes disagree: Fail={a:?} vs BestEffort={b:?}"),
    }
    lax
}

#[test]
fn empty_circuit_routes_to_empty_forest() {
    let lib = CellLibrary::ecl();
    let cb = CircuitBuilder::new(lib);
    let circuit = cb.finish().expect("empty circuit validates");
    let placement = PlacementBuilder::new(Geometry::default(), 1)
        .finish(&circuit)
        .expect("empty placement validates");
    match route_both_modes(&circuit, &placement, &[]) {
        Ok(routed) => {
            assert!(routed.result.trees.is_empty());
            assert_eq!(routed.result.total_length_um, 0.0);
            assert_eq!(routed.result.violations, None);
        }
        Err(e) => panic!("empty circuit must route trivially, got {e}"),
    }
}

#[test]
fn single_net_circuit_routes() {
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let a = cb.add_input_pad("a");
    let u = cb.add_cell("u", inv);
    cb.add_net("n", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 1);
    pb.append_with_width(0, bgr::netlist::CellId::new(0), 3);
    pb.place_pad_bottom(a, 0);
    let placement = pb.finish(&circuit).unwrap();
    let routed = route_both_modes(&circuit, &placement, &[]).expect("single net routes");
    assert_eq!(routed.result.trees.len(), 1);
    assert!(!routed.result.trees[0].segments.is_empty());
}

#[test]
fn net_with_all_terminals_in_one_row_routes() {
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let nor2 = lib.kind_by_name("NOR2").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let u0 = cb.add_cell("u0", inv);
    let u1 = cb.add_cell("u1", nor2);
    let u2 = cb.add_cell("u2", nor2);
    // One driver fanning out to two sinks, all three cells in row 0.
    cb.add_net(
        "n",
        cb.cell_term(u0, "Y").unwrap(),
        [
            cb.cell_term(u1, "A").unwrap(),
            cb.cell_term(u2, "B").unwrap(),
        ],
    )
    .unwrap();
    let a = cb.add_input_pad("a");
    cb.add_net("na", cb.pad_term(a), [cb.cell_term(u0, "A").unwrap()])
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 1);
    pb.append_with_width(0, bgr::netlist::CellId::new(0), 3);
    pb.append_with_width(0, bgr::netlist::CellId::new(1), 4);
    pb.append_with_width(0, bgr::netlist::CellId::new(2), 4);
    pb.place_pad_bottom(a, 0);
    let placement = pb.finish(&circuit).unwrap();
    let routed = route_both_modes(&circuit, &placement, &[]).expect("same-row net routes");
    assert_eq!(routed.result.trees.len(), 2);
    for tree in &routed.result.trees {
        assert!(!tree.segments.is_empty());
    }
}

#[test]
fn zero_constraints_with_use_constraints_on_routes() {
    // `use_constraints = true` (the default) with an empty constraint
    // list: the delay criteria all collapse to zero, the recovery and
    // delay phases see no constraints, and nothing may divide by the
    // empty set.
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let a = cb.add_input_pad("a");
    let y = cb.add_output_pad("y");
    let u = cb.add_cell("u", inv);
    cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
        .unwrap();
    cb.add_net("n2", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 1);
    pb.append_with_width(0, bgr::netlist::CellId::new(0), 3);
    pb.place_pad_bottom(a, 0);
    pb.place_pad_top(y, 2);
    let placement = pb.finish(&circuit).unwrap();
    let mut cfg = config(OnViolation::Fail);
    assert!(cfg.use_constraints, "default must exercise the phase code");
    let strict = GlobalRouter::new(cfg.clone())
        .route_checked(circuit.clone(), placement.clone(), vec![])
        .expect("zero constraints route in Fail mode");
    cfg.on_violation = OnViolation::BestEffort;
    let lax = GlobalRouter::new(cfg)
        .route_checked(circuit, placement, vec![])
        .expect("zero constraints route in BestEffort mode");
    assert_eq!(strict.result.trees, lax.result.trees);
    assert_eq!(strict.result.violations, None);
    assert_eq!(lax.result.violations, None);
    assert_eq!(strict.result.trees.len(), 2);
}
