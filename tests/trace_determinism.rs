//! The observability determinism contract (see `bgr_core::probe`).
//!
//! The structured [`TraceEvent`] stream must be a pure function of the
//! router's inputs: identical across the `Scoreboard` and `FullRescan`
//! selection strategies (whose deletion sequences are already proven
//! equal by the oracle tests — here the *provenance and event structure*
//! must agree too), identical across repeated runs, and consistent with
//! the untraced route and its `RouteStats` accounting. Wall-clock may
//! only appear in phase spans; counters and histograms are
//! strategy-dependent diagnostics and are deliberately not compared.

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::router::probe::{RouteTrace, TraceEvent};
use bgr::router::{GlobalRouter, Routed, RouterConfig, SelectionStrategy};

fn route_traced(params: &GenParams, selection: SelectionStrategy) -> (Routed, RouteTrace) {
    let design = generate(params);
    let placement = place_design(&design, params, PlacementStyle::EvenFeed);
    let config = RouterConfig {
        selection,
        ..RouterConfig::default()
    };
    GlobalRouter::new(config)
        .route_traced(
            design.circuit.clone(),
            placement,
            design.constraints.clone(),
        )
        .expect("generated designs route")
}

fn instances() -> Vec<GenParams> {
    vec![
        GenParams::small(0x0B5),
        GenParams {
            logic_cells: 260,
            rows: 6,
            diff_pairs: 3,
            num_constraints: 8,
            ..GenParams::small(0x0B5E)
        },
    ]
}

#[test]
fn event_stream_is_strategy_independent() {
    for params in instances() {
        let (_, fast) = route_traced(&params, SelectionStrategy::Scoreboard);
        let (_, oracle) = route_traced(&params, SelectionStrategy::FullRescan);
        assert_eq!(
            fast.events, oracle.events,
            "seed {}: event streams diverge between strategies",
            params.seed
        );
    }
}

#[test]
fn event_stream_is_repeatable() {
    for params in instances() {
        let (_, a) = route_traced(&params, SelectionStrategy::Scoreboard);
        let (_, b) = route_traced(&params, SelectionStrategy::Scoreboard);
        assert_eq!(
            a.events, b.events,
            "seed {}: event stream not repeatable",
            params.seed
        );
    }
}

#[test]
fn provenance_breakdown_sums_to_selections() {
    for params in instances() {
        let (routed, trace) = route_traced(&params, SelectionStrategy::Scoreboard);
        let selections = trace.selections();
        assert!(selections > 0);
        let tier_total: usize = trace.tier_breakdown().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            tier_total, selections,
            "seed {}: every selection must have exactly one deciding tier",
            params.seed
        );
        assert_eq!(
            selections,
            routed.result.stats.selection_log.len(),
            "seed {}: one DeletionSelected per logged selection",
            params.seed
        );
        assert_eq!(
            trace.deletions(),
            routed.result.stats.deletions,
            "seed {}: event stream must account for every deletion",
            params.seed
        );
    }
}

/// With budgets enabled the degradation events — `BudgetExhausted` and
/// the `FallbackDeleted` stream behind it — are part of the
/// deterministic contract: strategy-independent, repeatable, and still
/// summing to the stats accounting.
#[test]
fn budgeted_event_stream_is_strategy_independent_and_accounted() {
    use bgr::router::Budgets;
    let params = instances().remove(0);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let route = |selection| {
        let config = RouterConfig {
            selection,
            budgets: Budgets {
                deletion_steps: Some(30),
                phase_reroutes: Some(2),
            },
            ..RouterConfig::default()
        };
        GlobalRouter::new(config)
            .route_traced(
                design.circuit.clone(),
                placement.clone(),
                design.constraints.clone(),
            )
            .expect("budgeted route completes")
    };
    let (routed, fast) = route(SelectionStrategy::Scoreboard);
    let (_, oracle) = route(SelectionStrategy::FullRescan);
    assert_eq!(
        fast.events, oracle.events,
        "budgeted event streams diverge between strategies"
    );
    let exhausted = fast
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::BudgetExhausted { .. }))
        .count();
    let fallbacks = fast
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FallbackDeleted { .. }))
        .count();
    assert!(
        exhausted >= 1,
        "a 30-selection ceiling must exhaust on this instance"
    );
    assert!(fallbacks >= 1, "exhaustion must trigger fallback deletions");
    assert_eq!(
        fast.deletions(),
        routed.result.stats.deletions,
        "fallback deletions must be accounted in the stream"
    );
}

#[test]
fn tracing_does_not_change_the_route() {
    let params = instances().remove(0);
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let router = GlobalRouter::new(RouterConfig::default());
    let plain = router
        .route(
            design.circuit.clone(),
            placement.clone(),
            design.constraints.clone(),
        )
        .expect("routes");
    let (traced, _) = router
        .route_traced(design.circuit.clone(), placement, design.constraints)
        .expect("routes");
    assert_eq!(plain.result.trees, traced.result.trees);
    assert_eq!(plain.result.channel_tracks, traced.result.channel_tracks);
    assert_eq!(
        plain.result.stats.selection_log,
        traced.result.stats.selection_log
    );
}

#[test]
fn phase_markers_bracket_the_route() {
    let params = instances().remove(0);
    let (_, trace) = route_traced(&params, SelectionStrategy::Scoreboard);
    let enters = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PhaseEnter { .. }))
        .count();
    let exits = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PhaseExit { .. }))
        .count();
    assert_eq!(enters, exits);
    assert_eq!(enters, trace.spans.len());
    assert!(matches!(trace.events[0], TraceEvent::PhaseEnter { .. }));
    assert!(matches!(
        trace.events[trace.events.len() - 1],
        TraceEvent::PhaseExit { .. }
    ));
}
