//! `bgr` command-line interface.
//!
//! ```text
//! bgr route   --netlist D.bgrn --placement D.bgrp [--constraints D.bgrt]
//!             [--unconstrained] [--elmore] [--svg OUT.svg] [--report]
//! bgr gen     --cells N [--rows R] [--seed S] --out PREFIX
//! bgr render  --netlist D.bgrn --placement D.bgrp --svg OUT.svg
//! ```
//!
//! `route` reads the text formats, runs the global + channel routers and
//! prints the Table-2-style measurement line; `gen` writes a synthetic
//! benchmark to `PREFIX.bgrn/.bgrp/.bgrt`; `render` draws a placement.

use std::process::ExitCode;

use bgr::channel::route_channels;
use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::{
    parse_constraints, parse_netlist, parse_placement, render_svg, write_constraints,
    write_netlist, write_placement,
};
use bgr::router::{GlobalRouter, RouterConfig};
use bgr::timing::{DelayModel, WireParams};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("route") => cmd_route(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bgr route  --netlist D.bgrn --placement D.bgrp [--constraints D.bgrt]
             [--unconstrained] [--elmore] [--svg OUT.svg] [--report]
  bgr gen    --cells N [--rows R] [--seed S] [--constraints K] --out PREFIX
  bgr render --netlist D.bgrn --placement D.bgrp --svg OUT.svg";

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Minimal `--key value` / `--flag` argument scanner.
struct Opts<'a> {
    args: &'a [String],
}

impl<'a> Opts<'a> {
    fn value(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&'a str, String> {
        self.value(key).ok_or_else(|| format!("missing {key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
}

fn cmd_route(args: &[String]) -> CliResult {
    let opts = Opts { args };
    let netlist_text = std::fs::read_to_string(opts.required("--netlist")?)?;
    let circuit = parse_netlist(&netlist_text)?;
    let placement_text = std::fs::read_to_string(opts.required("--placement")?)?;
    let placement = parse_placement(&circuit, &placement_text)?;
    let constraints = match opts.value("--constraints") {
        Some(path) => parse_constraints(&circuit, &std::fs::read_to_string(path)?)?,
        None => Vec::new(),
    };
    let config = RouterConfig {
        use_constraints: !opts.flag("--unconstrained") && !constraints.is_empty(),
        delay_model: if opts.flag("--elmore") {
            DelayModel::Elmore
        } else {
            DelayModel::Capacitance
        },
        ..RouterConfig::default()
    };
    let t = std::time::Instant::now();
    let routed =
        GlobalRouter::new(config.clone()).route(circuit, placement, constraints.clone())?;
    let cpu = t.elapsed().as_secs_f64();
    let detail = route_channels(
        &routed.circuit,
        &routed.placement,
        &routed.result,
        &constraints,
        config.delay_model,
        WireParams::default(),
    )?;
    println!(
        "delay {:.0} ps | area {:.3} mm² | length {:.2} mm | cpu {:.2} s | violations {}/{}",
        detail.timing.max_arrival_ps(),
        detail.area_mm2,
        detail.total_length_mm(),
        cpu,
        detail.timing.violations(),
        constraints.len()
    );
    if opts.flag("--report") {
        println!("\nper-constraint timing:");
        for c in &detail.timing.constraints {
            println!(
                "  {:<12} arrival {:>8.1} ps  limit {:>8.1} ps  margin {:>+8.1} ps",
                c.name, c.arrival_ps, c.limit_ps, c.margin_ps
            );
        }
        println!("\nchannel tracks (global estimate -> channel-routed):");
        for (c, (&g, &d)) in routed
            .result
            .channel_tracks
            .iter()
            .zip(&detail.tracks)
            .enumerate()
        {
            println!("  channel {c:>3}: {g:>4} -> {d:>4}");
        }
        println!("\ncongestion:");
        let congestion = bgr::router::CongestionReport::from_result(
            &routed.result,
            routed.placement.width_pitches().max(1) as usize,
        );
        print!("{}", congestion.to_ascii());
        let s = &routed.result.stats;
        println!(
            "\nstats: {} deletions, {} reroutes, {} feed cells inserted (+{} pitches), \
             {} diff pairs locked",
            s.deletions, s.reroutes, s.feed_cells_inserted, s.widened_pitches, s.diff_pairs_locked
        );
    }
    if let Some(path) = opts.value("--svg") {
        std::fs::write(
            path,
            render_svg(&routed.circuit, &routed.placement, Some(&routed.result)),
        )?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> CliResult {
    let opts = Opts { args };
    let cells: usize = opts.required("--cells")?.parse()?;
    let rows: usize = opts.value("--rows").unwrap_or("6").parse()?;
    let seed: u64 = opts.value("--seed").unwrap_or("1").parse()?;
    let num_constraints: usize = opts.value("--constraints").unwrap_or("8").parse()?;
    let prefix = opts.required("--out")?;
    let params = GenParams {
        logic_cells: cells,
        rows,
        depth: (cells / 20).clamp(4, 24),
        num_constraints,
        ..GenParams::small(seed)
    };
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    std::fs::write(format!("{prefix}.bgrn"), write_netlist(&design.circuit))?;
    std::fs::write(
        format!("{prefix}.bgrp"),
        write_placement(&design.circuit, &placement),
    )?;
    std::fs::write(
        format!("{prefix}.bgrt"),
        write_constraints(&design.circuit, &design.constraints),
    )?;
    println!(
        "wrote {prefix}.bgrn/.bgrp/.bgrt ({} cells, {} nets, {} constraints)",
        design.circuit.cells().len(),
        design.circuit.nets().len(),
        design.constraints.len()
    );
    Ok(())
}

fn cmd_render(args: &[String]) -> CliResult {
    let opts = Opts { args };
    let circuit = parse_netlist(&std::fs::read_to_string(opts.required("--netlist")?)?)?;
    let placement = parse_placement(
        &circuit,
        &std::fs::read_to_string(opts.required("--placement")?)?,
    )?;
    let out = opts.required("--svg")?;
    std::fs::write(out, render_svg(&circuit, &placement, None))?;
    println!("wrote {out}");
    Ok(())
}
