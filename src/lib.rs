//! `bgr` — a timing- and area-optimizing global router for high-speed
//! bipolar LSIs.
//!
//! Rust reproduction of Harada & Kitazawa, *"A Global Router Optimizing
//! Timing and Area for High-Speed Bipolar LSI's"*, DAC 1994. This facade
//! crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `bgr-netlist` | cell library, circuits, nets, differential pairs |
//! | [`layout`] | `bgr-layout` | rows, channels, feedthrough slots, placements |
//! | [`timing`] | `bgr-timing` | delay models, `G_D`, constraint graphs `G_d(P)`, STA |
//! | [`router`] | `bgr-core` | **the paper's router**: edge deletion, criteria, phases |
//! | [`channel`] | `bgr-channel` | left-edge channel routing, final area/length/delay |
//! | [`gen`] | `bgr-gen` | synthetic ECL benchmarks (C1–C3 reconstruction) |
//! | [`io`] | `bgr-io` | text interchange formats (.bgrn/.bgrp/.bgrt) + SVG rendering |
//! | [`verify`] | `bgr-verify` | independent from-scratch audit of routing results |
//! | [`serve`] | `bgr-serve` | sessionized job queue: budgeted slices, checkpoints, resume |
//! | [`metrics`] | `bgr-metrics` | operational metrics registry + Prometheus text exporter |
//! | [`net`] | `bgr-net` | distributed slice draining: wire protocol, coordinator, workers |
//!
//! # Quickstart
//!
//! Generate a small design, route it with and without constraints, and
//! compare the critical-path delay after channel routing:
//!
//! ```
//! use bgr::channel::route_channels;
//! use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
//! use bgr::router::{GlobalRouter, RouterConfig};
//! use bgr::timing::{DelayModel, WireParams};
//!
//! let params = GenParams::small(1);
//! let design = generate(&params);
//! let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
//!
//! let routed = GlobalRouter::new(RouterConfig::default()).route(
//!     design.circuit.clone(),
//!     placement,
//!     design.constraints.clone(),
//! )?;
//! let detail = route_channels(
//!     &routed.circuit,
//!     &routed.placement,
//!     &routed.result,
//!     &design.constraints,
//!     DelayModel::Capacitance,
//!     WireParams::default(),
//! )?;
//! println!(
//!     "delay {:.0} ps over {:.2} mm² ({} violations)",
//!     detail.timing.max_arrival_ps(),
//!     detail.area_mm2,
//!     detail.timing.violations(),
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use bgr_channel as channel;
pub use bgr_core as router;
pub use bgr_gen as gen;
pub use bgr_io as io;
pub use bgr_layout as layout;
pub use bgr_metrics as metrics;
pub use bgr_net as net;
pub use bgr_netlist as netlist;
pub use bgr_serve as serve;
pub use bgr_timing as timing;
pub use bgr_verify as verify;
