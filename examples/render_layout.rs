//! Render a routed layout: generate a design, route it, and write the
//! interchange files plus an SVG picture next to the target directory.
//!
//! Run with `cargo run --release --example render_layout`, then open
//! `target/bgr_layout.svg` in a browser.

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::io::{render_svg, write_constraints, write_netlist, write_placement};
use bgr::router::{GlobalRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GenParams {
        logic_cells: 60,
        depth: 6,
        rows: 4,
        ..GenParams::small(31)
    };
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    let routed = GlobalRouter::new(RouterConfig::default()).route(
        design.circuit.clone(),
        placement,
        design.constraints.clone(),
    )?;

    std::fs::create_dir_all("target")?;
    std::fs::write("target/bgr_design.bgrn", write_netlist(&routed.circuit))?;
    std::fs::write(
        "target/bgr_design.bgrp",
        write_placement(&routed.circuit, &routed.placement),
    )?;
    std::fs::write(
        "target/bgr_design.bgrt",
        write_constraints(&routed.circuit, &design.constraints),
    )?;
    let svg = render_svg(&routed.circuit, &routed.placement, Some(&routed.result));
    std::fs::write("target/bgr_layout.svg", &svg)?;
    println!(
        "wrote target/bgr_design.bgrn/.bgrp/.bgrt and target/bgr_layout.svg ({} nets, {} bytes of SVG)",
        routed.result.trees.len(),
        svg.len()
    );
    Ok(())
}
