//! Quickstart: build a tiny ECL circuit by hand, place it in two rows,
//! route it under one path constraint, and print the routed trees and
//! the timing report.
//!
//! Run with `cargo run --example quickstart`.

use bgr::channel::route_channels;
use bgr::layout::{Geometry, PlacementBuilder};
use bgr::netlist::{CellLibrary, CircuitBuilder};
use bgr::router::{GlobalRouter, RouterConfig, Segment};
use bgr::timing::{DelayModel, PathConstraint, WireParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-gate circuit: a, b -> NOR2 -> INV -> y, with a side branch.
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").expect("ecl kind");
    let nor2 = lib.kind_by_name("NOR2").expect("ecl kind");
    let feed = lib.kind_by_name("FEED1").expect("ecl kind");

    let mut cb = CircuitBuilder::new(lib);
    let a = cb.add_input_pad("a");
    let b = cb.add_input_pad("b");
    let y = cb.add_output_pad("y");
    let u0 = cb.add_cell("u0", inv);
    let u1 = cb.add_cell("u1", inv);
    let u2 = cb.add_cell("u2", nor2);
    let u3 = cb.add_cell("u3", inv);
    let f0 = cb.add_cell("f0", feed);
    let f1 = cb.add_cell("f1", feed);

    cb.add_net("na", cb.pad_term(a), [cb.cell_term(u0, "A")?])?;
    cb.add_net("nb", cb.pad_term(b), [cb.cell_term(u1, "A")?])?;
    cb.add_net("n0", cb.cell_term(u0, "Y")?, [cb.cell_term(u2, "A")?])?;
    cb.add_net("n1", cb.cell_term(u1, "Y")?, [cb.cell_term(u2, "B")?])?;
    cb.add_net("n2", cb.cell_term(u2, "Y")?, [cb.cell_term(u3, "A")?])?;
    cb.add_net("ny", cb.cell_term(u3, "Y")?, [cb.pad_term(y)])?;

    let constraints = vec![
        PathConstraint::new("a->y", cb.pad_term(a), cb.pad_term(y), 700.0),
        PathConstraint::new("b->y", cb.pad_term(b), cb.pad_term(y), 700.0),
    ];
    let circuit = cb.finish()?;

    // Two rows with one feed cell each; pads on the chip boundary.
    let mut pb = PlacementBuilder::new(Geometry::default(), 2);
    pb.append_with_width(0, u0, 3);
    pb.append_with_width(0, u1, 3);
    pb.append_with_width(0, f0, 1);
    pb.append_with_width(1, u2, 4);
    pb.append_with_width(1, u3, 3);
    pb.append_with_width(1, f1, 1);
    pb.place_pad_bottom(a, 0);
    pb.place_pad_bottom(b, 4);
    pb.place_pad_top(y, 6);
    let placement = pb.finish(&circuit)?;

    // Global routing (Fig. 2 of the paper).
    let routed = GlobalRouter::new(RouterConfig::default()).route(
        circuit,
        placement,
        constraints.clone(),
    )?;

    println!("== routed trees ==");
    for (i, tree) in routed.result.trees.iter().enumerate() {
        let name = routed
            .circuit
            .net(bgr::netlist::NetId::new(i))
            .name()
            .to_owned();
        print!("{name:>3}: {:6.1} µm |", tree.length_um);
        for seg in &tree.segments {
            match seg {
                Segment::Trunk { channel, x1, x2 } => {
                    print!(" trunk[ch{}:{}..{}]", channel.index(), x1, x2)
                }
                Segment::Branch { channel, x, .. } => print!(" tap[ch{}@{}]", channel.index(), x),
                Segment::Feed { row, x } => print!(" feed[row{row}@{x}]"),
            }
        }
        println!();
    }

    println!("\n== channel densities (global estimate) ==");
    for (c, t) in routed.result.channel_tracks.iter().enumerate() {
        println!("channel {c}: {t} tracks");
    }

    // Detailed (channel) routing and final measurements.
    let detail = route_channels(
        &routed.circuit,
        &routed.placement,
        &routed.result,
        &constraints,
        DelayModel::Capacitance,
        WireParams::default(),
    )?;
    println!("\n== final timing (after channel routing) ==");
    for c in &detail.timing.constraints {
        println!(
            "{:>5}: arrival {:6.1} ps, limit {:6.1} ps, margin {:+7.1} ps",
            c.name, c.arrival_ps, c.limit_ps, c.margin_ps
        );
    }
    println!(
        "\narea {:.4} mm², total length {:.3} mm",
        detail.area_mm2,
        detail.total_length_mm()
    );
    Ok(())
}
