//! Bipolar-specific features (§4 of the paper): a differential DBUF link
//! routed in lockstep and a 2-pitch clock net, shown on a hand-built
//! circuit small enough to inspect.
//!
//! Run with `cargo run --example differential_clock`.

use bgr::layout::{Geometry, PlacementBuilder};
use bgr::netlist::{CellLibrary, CircuitBuilder, NetId};
use bgr::router::{GlobalRouter, RouterConfig, Segment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::ecl();
    let dbuf = lib.kind_by_name("DBUF").expect("ecl kind");
    let dff = lib.kind_by_name("DFF").expect("ecl kind");
    let clkdrv = lib.kind_by_name("CLKDRV").expect("ecl kind");
    let inv = lib.kind_by_name("INV").expect("ecl kind");
    let feed = lib.kind_by_name("FEED1").expect("ecl kind");

    let mut cb = CircuitBuilder::new(lib);
    let clk = cb.add_input_pad("clk");
    let din = cb.add_input_pad("din");
    let dinn = cb.add_input_pad("dinn");
    let out = cb.add_output_pad("out");

    // Differential link: DBUF driver -> DBUF receiver (true + complement).
    let tx = cb.add_cell("tx", dbuf);
    let rx = cb.add_cell("rx", dbuf);
    cb.add_net("din", cb.pad_term(din), [cb.cell_term(tx, "A")?])?;
    cb.add_net("dinn", cb.pad_term(dinn), [cb.cell_term(tx, "AN")?])?;
    let p = cb.add_net("pair_p", cb.cell_term(tx, "Y")?, [cb.cell_term(rx, "A")?])?;
    let n = cb.add_net("pair_n", cb.cell_term(tx, "YN")?, [cb.cell_term(rx, "AN")?])?;
    cb.mark_diff_pair(p, n)?;

    // Two flip-flops clocked by a 2-pitch clock net from a CLKDRV.
    let drv = cb.add_cell("clkdrv", clkdrv);
    let ff0 = cb.add_cell("ff0", dff);
    let ff1 = cb.add_cell("ff1", dff);
    cb.add_net("cin", cb.pad_term(clk), [cb.cell_term(drv, "A")?])?;
    cb.add_wide_net(
        "clk2p",
        cb.cell_term(drv, "Y")?,
        [cb.cell_term(ff0, "CK")?, cb.cell_term(ff1, "CK")?],
        2,
    )?;
    cb.add_net("d0", cb.cell_term(rx, "Y")?, [cb.cell_term(ff0, "D")?])?;
    cb.add_net("d1", cb.cell_term(rx, "YN")?, [cb.cell_term(ff1, "D")?])?;
    let u = cb.add_cell("u", inv);
    cb.add_net("q0", cb.cell_term(ff0, "Q")?, [cb.cell_term(u, "A")?])?;
    cb.add_net("qo", cb.cell_term(u, "Y")?, [cb.pad_term(out)])?;
    // ff1.Q intentionally unloaded.
    let f0 = cb.add_cell("f0", feed);
    let f1 = cb.add_cell("f1", feed);
    let f2 = cb.add_cell("f2", feed);
    let circuit = cb.finish()?;

    let mut pb = PlacementBuilder::new(Geometry::default(), 2);
    pb.append_with_width(0, tx, 5);
    pb.append_with_width(0, drv, 10);
    pb.append_with_width(0, f0, 1);
    pb.append_with_width(0, f1, 1);
    pb.append_with_width(1, rx, 5);
    pb.append_with_width(1, ff0, 8);
    pb.append_with_width(1, ff1, 8);
    pb.append_with_width(1, u, 3);
    pb.append_with_width(1, f2, 1);
    pb.place_pad_bottom(din, 0);
    pb.place_pad_bottom(dinn, 2);
    pb.place_pad_bottom(clk, 8);
    pb.place_pad_top(out, 20);
    let placement = pb.finish(&circuit)?;

    let routed = GlobalRouter::new(RouterConfig::default()).route(circuit, placement, vec![])?;
    let stats = &routed.result.stats;
    println!(
        "differential pairs locked: {}, independent: {}",
        stats.diff_pairs_locked, stats.diff_pairs_independent
    );

    let tree_p = &routed.result.trees[p.index()];
    let tree_n = &routed.result.trees[n.index()];
    println!("\npair_p ({:.0} µm):", tree_p.length_um);
    print_tree(tree_p);
    println!("pair_n ({:.0} µm):", tree_n.length_um);
    print_tree(tree_n);
    println!("\nThe two trees are congruent, shifted by one pitch — the §4.1");
    println!("lockstep deletion keeps the pair physically parallel.");

    let clk_net = routed
        .circuit
        .net_ids()
        .find(|&id| routed.circuit.net(id).name() == "clk2p")
        .expect("clock net exists");
    let clk_tree = &routed.result.trees[clk_net.index()];
    println!(
        "\nclock net: width {} pitches, {:.0} µm — every trunk counts double in channel density",
        clk_tree.width_pitches, clk_tree.length_um
    );
    // §4.2: multi-pitch wires exist to keep clock skew down. Compare the
    // RC skew of this tree at 1-pitch vs its actual 2-pitch width.
    let dists: Vec<f64> = clk_tree
        .terminal_dists_um
        .iter()
        .filter(|&&(_, d)| d > 0.0)
        .map(|&(_, d)| d)
        .collect();
    let wire = bgr::timing::WireParams::default();
    println!(
        "clock length skew {:.0} µm -> RC skew {:.3} ps at 1 pitch, {:.3} ps at 2 pitches",
        clk_tree.length_skew_um(),
        bgr::timing::rc_skew_ps(&wire, &dists, 1, 9.0),
        bgr::timing::rc_skew_ps(&wire, &dists, 2, 9.0),
    );
    let _ = NetId::new(0);
    Ok(())
}

fn print_tree(tree: &bgr::router::NetTree) {
    for seg in &tree.segments {
        match seg {
            Segment::Trunk { channel, x1, x2 } => {
                println!("  trunk  channel {} x {}..{}", channel.index(), x1, x2)
            }
            Segment::Branch { channel, x, .. } => {
                println!("  tap    channel {} x {}", channel.index(), x)
            }
            Segment::Feed { row, x } => println!("  feed   row {row} x {x}"),
        }
    }
}
