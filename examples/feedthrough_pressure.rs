//! Feed-cell insertion under feedthrough scarcity (§4.3): generate a
//! multi-row design with almost no pre-placed feed cells and watch the
//! router insert exactly enough to guarantee complete assignment,
//! widening the chip by `F` pitches.
//!
//! Run with `cargo run --release --example feedthrough_pressure`.

use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::router::{GlobalRouter, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>9} {:>12} {:>10} {:>12} {:>12}",
        "pre-feeds", "inserted", "widened", "width(pit)", "len(mm)"
    );
    for feeds_per_row in [12, 6, 3, 1, 0] {
        let params = GenParams {
            logic_cells: 160,
            depth: 8,
            rows: 6,
            feeds_per_row,
            num_constraints: 0,
            ..GenParams::small(77)
        };
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
        let width_before = placement.width_pitches();
        let routed = GlobalRouter::new(RouterConfig::unconstrained()).route(
            design.circuit.clone(),
            placement,
            vec![],
        )?;
        println!(
            "{:>9} {:>12} {:>10} {:>5} -> {:>4} {:>12.2}",
            feeds_per_row,
            routed.result.stats.feed_cells_inserted,
            routed.result.stats.widened_pitches,
            width_before,
            routed.placement.width_pitches(),
            routed.result.total_length_um / 1000.0
        );
    }
    println!("\nFewer pre-placed feed cells force more insertion; the §4.3");
    println!("re-assignment with width flags always completes the routing.");
    Ok(())
}
