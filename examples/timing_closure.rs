//! Timing closure sweep: route one generated design under progressively
//! tighter constraint sets and watch the delay/area/violation trade-off
//! — the scenario that motivates a timing-driven global router.
//!
//! Run with `cargo run --release --example timing_closure`.

use bgr::channel::route_channels;
use bgr::gen::{generate, place_design, GenParams, PlacementStyle};
use bgr::router::{GlobalRouter, RouterConfig};
use bgr::timing::{DelayModel, PathConstraint, WireParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GenParams {
        logic_cells: 200,
        depth: 10,
        rows: 6,
        num_constraints: 8,
        ..GenParams::small(2024)
    };
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);

    println!(
        "design: {} cells, {} nets, {} constraints",
        design.circuit.cells().len(),
        design.circuit.nets().len(),
        design.constraints.len()
    );
    println!(
        "\n{:<10} {:>10} {:>10} {:>10} {:>6}",
        "tighten", "delay(ps)", "area(mm2)", "len(mm)", "viol"
    );

    // Scale every harvested limit by the tightening factor.
    for tighten in [1.30, 1.15, 1.00, 0.90, 0.80] {
        let constraints: Vec<PathConstraint> = design
            .constraints
            .iter()
            .map(|c| PathConstraint::new(&c.name, c.source, c.sink, c.limit_ps * tighten))
            .collect();
        let routed = GlobalRouter::new(RouterConfig::default()).route(
            design.circuit.clone(),
            placement.clone(),
            constraints.clone(),
        )?;
        let detail = route_channels(
            &routed.circuit,
            &routed.placement,
            &routed.result,
            &constraints,
            DelayModel::Capacitance,
            WireParams::default(),
        )?;
        println!(
            "{:<10.2} {:>10.0} {:>10.3} {:>10.2} {:>4}/{}",
            tighten,
            detail.timing.max_arrival_ps(),
            detail.area_mm2,
            detail.total_length_mm(),
            detail.timing.violations(),
            constraints.len()
        );
    }
    println!("\nTighter limits push the router to shorten critical paths until");
    println!("the placement's wiring floor is hit; beyond that, violations grow.");
    Ok(())
}
