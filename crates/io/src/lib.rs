//! Text interchange formats and SVG rendering for the `bgr` workspace.
//!
//! Three line-oriented text formats cover the router's inputs, plus an
//! SVG renderer for routed layouts:
//!
//! * **netlist** (`.bgrn`): cell library + circuit (cells, pads, nets,
//!   differential pairs, multi-pitch widths) —
//!   [`write_netlist`] / [`parse_netlist`];
//! * **placement** (`.bgrp`): geometry, rows, cell and pad positions —
//!   [`write_placement`] / [`parse_placement`];
//! * **constraints** (`.bgrt`): path constraints `(S, T, τ)` —
//!   [`write_constraints`] / [`parse_constraints`];
//! * **SVG**: [`render_svg`] draws rows, cells, feedthroughs and every
//!   routed trunk/branch of a [`bgr_core::RoutingResult`];
//! * **trace** (`.jsonl`): [`write_trace_jsonl`] serializes a
//!   [`bgr_core::RouteTrace`] one JSON record per line;
//! * **checkpoint** (`.bgrc`): versioned serialization of a suspended
//!   route session's [`bgr_core::EngineSnapshot`] —
//!   [`write_checkpoint`] / [`parse_checkpoint`].
//!
//! All writers round-trip: `parse(write(x))` reconstructs an equivalent
//! object (see the crate's property tests).
//!
//! # Example
//!
//! ```
//! use bgr_io::{parse_netlist, write_netlist};
//! use bgr_netlist::{CellLibrary, CircuitBuilder};
//!
//! let lib = CellLibrary::ecl();
//! let inv = lib.kind_by_name("INV").unwrap();
//! let mut cb = CircuitBuilder::new(lib);
//! let a = cb.add_input_pad("a");
//! let u = cb.add_cell("u1", inv);
//! let y = cb.add_output_pad("y");
//! cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u, "A")?])?;
//! cb.add_net("n1", cb.cell_term(u, "Y")?, [cb.pad_term(y)])?;
//! let circuit = cb.finish()?;
//!
//! let text = write_netlist(&circuit);
//! let back = parse_netlist(&text)?;
//! assert_eq!(back.cells().len(), 1);
//! assert_eq!(back.nets().len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod constraints;
pub mod error;
pub mod journal;
pub mod json;
pub mod netlist;
pub mod placement;
pub mod svg;
pub mod trace;

pub use checkpoint::{
    design_hash, externalize_design, parse_checkpoint, parse_checkpoint_in, reconfigure_checkpoint,
    write_checkpoint, write_checkpoint_ref, DesignRefs,
};
pub use constraints::{parse_constraints, write_constraints};
pub use error::ParseError;
pub use journal::{
    encode_journal_record, read_journal, FileSink, JournalEntry, JournalError, JournalSink,
    JournalTail, JournalWriter, JOURNAL_MAGIC,
};
pub use json::{escape_json, Json, JsonError};
pub use netlist::{parse_netlist, write_netlist};
pub use placement::{parse_placement, write_placement};
pub use svg::render_svg;
pub use trace::{
    deterministic_event_lines, deterministic_lines, segment_seq_span, trace_divergence,
    write_trace_jsonl, write_trace_jsonl_offset, TraceStats,
};
