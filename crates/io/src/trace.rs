//! JSONL serialization of [`RouteTrace`]s.
//!
//! One JSON object per line, hand-rolled (the workspace is hermetic —
//! no serde). Every value is a number or one of the fixed snake_case
//! labels from `bgr_core::probe`, so no string escaping is needed. The
//! line order is: one `meta` record, the deterministic `event` records
//! in emission order, the `counter` and `hist` diagnostics, then the
//! wall-clock `span` records. Because events carry no wall-clock, the
//! event prefix of two traces of the same input diffs clean even across
//! machines; only `span.wall_us` varies.
//!
//! Schema (`format` is bumped on breaking changes):
//!
//! ```text
//! {"type":"meta","format":"bgr-trace","version":1,"events":N}
//! {"type":"event","seq":0,"kind":"phase_enter","phase":"feed_assign"}
//! {"type":"event","seq":7,"kind":"deletion_selected","net":3,"edge":9,"tier":"d_max"}
//! {"type":"counter","name":"key_evals","value":1234}
//! {"type":"hist","name":"dirty_set_size","buckets":[0,5,3,0,0,0,0,0]}
//! {"type":"span","phase":"initial_routing","wall_us":8123,"events":152,"counters":{...}}
//! ```

use std::fmt::Write as _;

use bgr_core::probe::{Counter, Hist, RouteTrace, TraceEvent};

use crate::json::Json;

fn write_event(out: &mut String, seq: usize, ev: &TraceEvent) {
    let _ = write!(out, "{{\"type\":\"event\",\"seq\":{seq},");
    match *ev {
        TraceEvent::PhaseEnter { phase } => {
            let _ = write!(
                out,
                "\"kind\":\"phase_enter\",\"phase\":\"{}\"",
                phase.label()
            );
        }
        TraceEvent::PhaseExit { phase } => {
            let _ = write!(
                out,
                "\"kind\":\"phase_exit\",\"phase\":\"{}\"",
                phase.label()
            );
        }
        TraceEvent::DeletionSelected { net, edge, tier } => {
            let _ = write!(
                out,
                "\"kind\":\"deletion_selected\",\"net\":{},\"edge\":{},\"tier\":\"{}\"",
                net.index(),
                edge,
                tier.label()
            );
        }
        TraceEvent::CascadeDeleted { net, edge } => {
            let _ = write!(
                out,
                "\"kind\":\"cascade_deleted\",\"net\":{},\"edge\":{}",
                net.index(),
                edge
            );
        }
        TraceEvent::Pruned { net, count } => {
            let _ = write!(
                out,
                "\"kind\":\"pruned\",\"net\":{},\"count\":{}",
                net.index(),
                count
            );
        }
        TraceEvent::NetBecameTree { net } => {
            let _ = write!(out, "\"kind\":\"net_became_tree\",\"net\":{}", net.index());
        }
        TraceEvent::RerouteAccepted { net } => {
            let _ = write!(out, "\"kind\":\"reroute_accepted\",\"net\":{}", net.index());
        }
        TraceEvent::RerouteRejected { net } => {
            let _ = write!(out, "\"kind\":\"reroute_rejected\",\"net\":{}", net.index());
        }
        TraceEvent::FeedCellsInserted { row, x, width } => {
            let _ = write!(
                out,
                "\"kind\":\"feed_cells_inserted\",\"row\":{row},\"x\":{x},\"width\":{width}"
            );
        }
        TraceEvent::BudgetExhausted { phase, steps } => {
            let _ = write!(
                out,
                "\"kind\":\"budget_exhausted\",\"phase\":\"{}\",\"steps\":{steps}",
                phase.label()
            );
        }
        TraceEvent::FallbackDeleted { net, edge } => {
            let _ = write!(
                out,
                "\"kind\":\"fallback_deleted\",\"net\":{},\"edge\":{}",
                net.index(),
                edge
            );
        }
        TraceEvent::AuditPassed { phase, checks } => {
            let _ = write!(
                out,
                "\"kind\":\"audit_passed\",\"phase\":\"{}\",\"checks\":{checks}",
                phase.label()
            );
        }
        TraceEvent::AuditStep { step, checks } => {
            let _ = write!(
                out,
                "\"kind\":\"audit_step\",\"step\":{step},\"checks\":{checks}"
            );
        }
    }
    out.push_str("}\n");
}

fn is_deterministic(line: &str) -> bool {
    line.contains("\"type\":\"event\"") || line.contains("\"type\":\"meta\"")
}

/// The deterministic prefix of a trace JSONL document: the `meta` line
/// plus every `"type":"event"` line, newline-terminated. This is the
/// content a golden trace file stores and exactly what
/// [`trace_divergence`] compares — counter, histogram and span lines
/// are machine- and strategy-dependent diagnostics and are dropped.
pub fn deterministic_lines(trace_text: &str) -> String {
    trace_text
        .lines()
        .filter(|l| is_deterministic(l))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Compact first-divergence diff of two trace JSONL documents.
///
/// Compares only the deterministic prefix — the `meta` line and the
/// `"type":"event"` lines — because counters, histograms and spans are
/// diagnostics that legitimately vary across strategies, thread counts
/// and machines. Returns `None` when the deterministic prefixes are
/// byte-identical; otherwise a short report quoting the first line
/// number (1-based within the filtered prefix) where they part ways,
/// with both sides' lines (or `<end of trace>`).
pub fn trace_divergence(golden: &str, actual: &str) -> Option<String> {
    fn filter(text: &str) -> Vec<&str> {
        text.lines().filter(|l| is_deterministic(l)).collect()
    }
    let g = filter(golden);
    let a = filter(actual);
    let n = g.len().max(a.len());
    for i in 0..n {
        let gl = g.get(i).copied();
        let al = a.get(i).copied();
        if gl != al {
            return Some(format!(
                "first divergence at deterministic line {}:\n  golden: {}\n  actual: {}",
                i + 1,
                gl.unwrap_or("<end of trace>"),
                al.unwrap_or("<end of trace>"),
            ));
        }
    }
    None
}

/// The `"type":"event"` lines of a trace JSONL document only — no meta
/// line — newline-terminated. This is the slice a resumed session
/// appends to its stream: concatenating the event lines of every slice
/// (each serialized with [`write_trace_jsonl_offset`] at its
/// checkpoint's `events_emitted` offset) reproduces the uninterrupted
/// run's event lines byte-for-byte, `seq` included.
pub fn deterministic_event_lines(trace_text: &str) -> String {
    trace_text
        .lines()
        .filter(|l| l.contains("\"type\":\"event\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Validates a per-slice trace segment (event lines only, as produced
/// by [`deterministic_event_lines`]) and returns its `seq` span as
/// `Some((first, last))`, or `None` for a segment with no events.
///
/// This is the frame-safety check `bgr_serve::JobQueue::apply_remote`
/// runs before splicing a remote worker's segment into a job stream:
/// every line must be a parsable `"type":"event"` record and the `seq`
/// numbers must be contiguous, so a truncated or reordered segment is
/// rejected as a structured error instead of silently corrupting the
/// stream.
///
/// # Errors
///
/// A message naming the first offending line (1-based) on non-event
/// lines, unparsable JSON, a missing `seq`, or a `seq` gap.
pub fn segment_seq_span(segment: &str) -> Result<Option<(u64, u64)>, String> {
    let mut span: Option<(u64, u64)> = None;
    for (i, line) in segment.lines().enumerate() {
        let lineno = i + 1;
        let v = crate::json::Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.get("type").and_then(crate::json::Json::as_str) != Some("event") {
            return Err(format!("line {lineno}: not a \"type\":\"event\" record"));
        }
        let seq = v
            .get("seq")
            .and_then(crate::json::Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: event lacks a seq"))?;
        span = match span {
            None => Some((seq, seq)),
            Some((first, last)) if seq == last + 1 => Some((first, seq)),
            Some((_, last)) => {
                return Err(format!(
                    "line {lineno}: seq {seq} does not continue {last} (segment not contiguous)"
                ))
            }
        };
    }
    Ok(span)
}

/// Serializes a trace as JSON lines (see the [module docs](self) for the
/// schema).
pub fn write_trace_jsonl(trace: &RouteTrace) -> String {
    write_trace_jsonl_offset(trace, 0)
}

/// [`write_trace_jsonl`] with event `seq` numbers starting at
/// `seq_offset` — the serialization of one *slice* of a checkpointed
/// session, whose events continue a stream that already emitted
/// `seq_offset` events (the snapshot's `events_emitted`). The meta
/// line's `events` count still covers only this document's events.
pub fn write_trace_jsonl_offset(trace: &RouteTrace, seq_offset: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"bgr-trace\",\"version\":1,\"events\":{}}}",
        trace.events.len()
    );
    for (i, ev) in trace.events.iter().enumerate() {
        write_event(&mut out, seq_offset as usize + i, ev);
    }
    for c in Counter::ALL {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            c.label(),
            trace.counter(c)
        );
    }
    for h in Hist::ALL {
        let buckets = trace
            .hist(h)
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"buckets\":[{buckets}]}}",
            h.label()
        );
    }
    for span in &trace.spans {
        let counters = Counter::ALL
            .iter()
            .map(|&c| format!("\"{}\":{}", c.label(), span.counters[c.index()]))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"phase\":\"{}\",\"wall_us\":{},\"events\":{},\"counters\":{{{counters}}}}}",
            span.phase.label(),
            span.wall.as_micros(),
            span.events_len
        );
    }
    out
}

/// Aggregated analytics over one schema-v1 trace JSONL document — the
/// read-side counterpart of [`write_trace_jsonl`], computed entirely
/// from the serialized text so it works on archived traces from other
/// runs/machines (the `trace_query` CLI is a thin shell around it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Events declared by the meta line.
    pub meta_events: u64,
    /// `(kind, count)` per event kind, in first-appearance order.
    pub kind_counts: Vec<(String, u64)>,
    /// `(tier, count)` provenance breakdown over `deletion_selected`
    /// events, in first-appearance order.
    pub tier_counts: Vec<(String, u64)>,
    /// Deletion selections (`deletion_selected` events).
    pub selections: u64,
    /// Total deleted edges: selections + cascades + fallbacks + pruned
    /// edge counts.
    pub deletions: u64,
    /// `(name, value)` of every counter line, in document order (the
    /// per-[`bgr_core::RekeyCause`] `rekeys_*` provenance lives here).
    pub counters: Vec<(String, u64)>,
    /// `(phase, wall_us, events)` per span line, summed over repeated
    /// phases (a resumed session emits one span per slice).
    pub phase_walls: Vec<(String, u64, u64)>,
}

impl TraceStats {
    /// Parses a trace JSONL document and aggregates its statistics.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (1-based) on
    /// any JSON or schema violation.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut stats = TraceStats::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let ty = record
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: record without \"type\"", i + 1))?;
            match ty {
                "meta" => {
                    stats.meta_events += record
                        .get("events")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {}: meta without \"events\"", i + 1))?;
                }
                "event" => {
                    let kind = record
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: event without \"kind\"", i + 1))?;
                    bump(&mut stats.kind_counts, kind, 1);
                    match kind {
                        "deletion_selected" => {
                            stats.selections += 1;
                            stats.deletions += 1;
                            if let Some(tier) = record.get("tier").and_then(Json::as_str) {
                                bump(&mut stats.tier_counts, tier, 1);
                            }
                        }
                        "cascade_deleted" | "fallback_deleted" => stats.deletions += 1,
                        "pruned" => {
                            stats.deletions +=
                                record.get("count").and_then(Json::as_u64).unwrap_or(0);
                        }
                        _ => {}
                    }
                }
                "counter" => {
                    let name = record
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: counter without \"name\"", i + 1))?;
                    let value = record.get("value").and_then(Json::as_u64).unwrap_or(0);
                    bump(&mut stats.counters, name, value);
                }
                "hist" => {}
                "span" => {
                    let phase = record
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: span without \"phase\"", i + 1))?;
                    let wall = record.get("wall_us").and_then(Json::as_u64).unwrap_or(0);
                    let events = record.get("events").and_then(Json::as_u64).unwrap_or(0);
                    match stats.phase_walls.iter_mut().find(|(p, _, _)| p == phase) {
                        Some(row) => {
                            row.1 += wall;
                            row.2 += events;
                        }
                        None => stats.phase_walls.push((phase.to_string(), wall, events)),
                    }
                }
                other => return Err(format!("line {}: unknown record type {other:?}", i + 1)),
            }
        }
        Ok(stats)
    }

    /// One counter's value (0 when the document has no such line).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Human-readable digest.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events {} · selections {} · deletions {}",
            self.meta_events, self.selections, self.deletions
        );
        let _ = writeln!(out, "event kinds:");
        for (kind, n) in &self.kind_counts {
            let _ = writeln!(out, "  {kind:<24} {n:>8}");
        }
        if !self.tier_counts.is_empty() {
            let _ = writeln!(out, "deciding tiers:");
            for (tier, n) in &self.tier_counts {
                let _ = writeln!(out, "  {tier:<24} {n:>8}");
            }
        }
        if !self.phase_walls.is_empty() {
            let _ = writeln!(out, "phase wall-clock:");
            for (phase, wall_us, events) in &self.phase_walls {
                let _ = writeln!(
                    out,
                    "  {phase:<24} {:>9.2}ms {events:>8} events",
                    *wall_us as f64 / 1_000.0
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {v:>12}");
            }
        }
        out
    }

    /// Machine-readable digest (one JSON object, for CI consumers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":1,\"kind\":\"trace_stats\"");
        let _ = write!(
            out,
            ",\"events\":{},\"selections\":{},\"deletions\":{}",
            self.meta_events, self.selections, self.deletions
        );
        let fields = |pairs: &[(String, u64)]| {
            pairs
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", crate::json::escape_json(k)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(out, ",\"event_kinds\":{{{}}}", fields(&self.kind_counts));
        let _ = write!(out, ",\"deciding_tiers\":{{{}}}", fields(&self.tier_counts));
        let _ = write!(out, ",\"counters\":{{{}}}", fields(&self.counters));
        let spans = self
            .phase_walls
            .iter()
            .map(|(p, wall, events)| {
                format!(
                    "{{\"phase\":\"{}\",\"wall_us\":{wall},\"events\":{events}}}",
                    crate::json::escape_json(p)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(out, ",\"phases\":[{spans}]}}");
        out
    }
}

fn bump(rows: &mut Vec<(String, u64)>, key: &str, by: u64) {
    match rows.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v += by,
        None => rows.push((key.to_string(), by)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::probe::{CollectingProbe, Phase, Probe};
    use bgr_core::DecidingTier;
    use bgr_netlist::NetId;

    fn sample_trace() -> RouteTrace {
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(2),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.count(Counter::KeyEval, 42);
        p.sample(Hist::DirtySetSize, 6);
        p.phase_exit(Phase::InitialRouting);
        p.finish()
    }

    #[test]
    fn jsonl_has_one_record_per_line() {
        let text = write_trace_jsonl(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        // meta + 4 events + one line per counter + per hist + 1 span.
        assert_eq!(
            lines.len(),
            1 + 4 + Counter::ALL.len() + Hist::ALL.len() + 1
        );
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"format\":\"bgr-trace\""));
    }

    #[test]
    fn jsonl_carries_provenance_and_diagnostics() {
        let text = write_trace_jsonl(&sample_trace());
        assert!(text.contains(
            "{\"type\":\"event\",\"seq\":1,\"kind\":\"deletion_selected\",\"net\":2,\"edge\":5,\"tier\":\"d_max\"}"
        ));
        assert!(text.contains("\"kind\":\"pruned\",\"net\":2,\"count\":3"));
        assert!(text.contains("{\"type\":\"counter\",\"name\":\"key_evals\",\"value\":42}"));
        // 6 lands in the 4-7 bucket (index 3).
        assert!(text.contains(
            "{\"type\":\"hist\",\"name\":\"dirty_set_size\",\"buckets\":[0,0,0,1,0,0,0,0]}"
        ));
        assert!(text.contains("\"type\":\"span\",\"phase\":\"initial_routing\""));
    }

    #[test]
    fn event_lines_are_wall_clock_free() {
        let text = write_trace_jsonl(&sample_trace());
        for line in text.lines().filter(|l| l.contains("\"type\":\"event\"")) {
            assert!(!line.contains("wall"), "{line}");
        }
    }

    #[test]
    fn degradation_events_serialize() {
        let mut p = CollectingProbe::new();
        p.event(TraceEvent::BudgetExhausted {
            phase: Phase::InitialRouting,
            steps: 12,
        });
        p.event(TraceEvent::FallbackDeleted {
            net: NetId::new(4),
            edge: 7,
        });
        let text = write_trace_jsonl(&p.finish());
        assert!(text
            .contains("\"kind\":\"budget_exhausted\",\"phase\":\"initial_routing\",\"steps\":12"));
        assert!(text.contains("\"kind\":\"fallback_deleted\",\"net\":4,\"edge\":7"));
    }

    #[test]
    fn audit_events_serialize() {
        let mut p = CollectingProbe::new();
        p.event(TraceEvent::AuditPassed {
            phase: Phase::ImproveArea,
            checks: 912,
        });
        p.event(TraceEvent::AuditStep {
            step: 64,
            checks: 912,
        });
        let text = write_trace_jsonl(&p.finish());
        assert!(
            text.contains("\"kind\":\"audit_passed\",\"phase\":\"improve_area\",\"checks\":912")
        );
        assert!(text.contains("\"kind\":\"audit_step\",\"step\":64,\"checks\":912"));
    }

    #[test]
    fn deterministic_lines_keep_meta_and_events_only() {
        let text = write_trace_jsonl(&sample_trace());
        let det = deterministic_lines(&text);
        assert_eq!(det.lines().count(), 5); // meta + 4 events
        assert!(det.lines().all(is_deterministic));
        // A golden holding only the deterministic prefix compares clean
        // against the full document.
        assert_eq!(trace_divergence(&det, &text), None);
    }

    #[test]
    fn trace_stats_aggregate_the_serialized_document() {
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(2),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::CascadeDeleted {
            net: NetId::new(3),
            edge: 5,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(4),
            edge: 0,
            tier: DecidingTier::OnlyCandidate,
        });
        p.count(Counter::KeyEval, 42);
        p.rekey(NetId::new(1), bgr_core::RekeyCause::Graph);
        p.phase_exit(Phase::InitialRouting);
        let text = write_trace_jsonl(&p.finish());

        let stats = TraceStats::from_jsonl(&text).expect("well-formed document");
        assert_eq!(stats.meta_events, 6); // 2 phase markers + 4 decision events
        assert_eq!(stats.selections, 2);
        assert_eq!(stats.deletions, 2 + 1 + 3);
        assert_eq!(stats.counter("key_evals"), 42);
        assert_eq!(stats.counter("rekeys_graph"), 1);
        assert_eq!(stats.counter("no_such_counter"), 0);
        let kinds: Vec<&str> = stats.kind_counts.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            kinds,
            [
                "phase_enter",
                "deletion_selected",
                "cascade_deleted",
                "pruned",
                "phase_exit"
            ]
        );
        assert_eq!(
            stats.tier_counts,
            [("d_max".to_string(), 1), ("only_candidate".to_string(), 1)]
        );
        assert_eq!(stats.phase_walls.len(), 1);
        assert_eq!(stats.phase_walls[0].0, "initial_routing");
        assert_eq!(stats.phase_walls[0].2, 4, "interior events of the span");

        let ascii = stats.to_ascii();
        assert!(ascii.contains("selections 2"), "{ascii}");
        assert!(ascii.contains("deletion_selected"), "{ascii}");

        let json = stats.to_json();
        let parsed = Json::parse(&json).expect("self-parsing digest");
        assert_eq!(parsed.get("selections").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed
                .get("deciding_tiers")
                .and_then(|t| t.get("d_max"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn trace_stats_reject_malformed_lines() {
        let err = TraceStats::from_jsonl("{\"type\":\"event\"}").expect_err("missing kind");
        assert!(err.contains("line 1"), "{err}");
        let err = TraceStats::from_jsonl("not json").expect_err("not json");
        assert!(err.contains("line 1"), "{err}");
        let err =
            TraceStats::from_jsonl("{\"type\":\"mystery\"}").expect_err("unknown record type");
        assert!(err.contains("mystery"), "{err}");
    }

    #[test]
    fn divergence_ignores_diagnostics_and_finds_first_event_mismatch() {
        let a = write_trace_jsonl(&sample_trace());
        assert_eq!(trace_divergence(&a, &a), None);

        // Same events, different counter totals: still no divergence.
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(2),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.count(Counter::KeyEval, 9999);
        p.sample(Hist::DirtySetSize, 1);
        p.phase_exit(Phase::InitialRouting);
        let b = write_trace_jsonl(&p.finish());
        assert_eq!(trace_divergence(&a, &b), None);

        // A different event diverges, and the report quotes both sides.
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(3),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.phase_exit(Phase::InitialRouting);
        let c = write_trace_jsonl(&p.finish());
        let diff = trace_divergence(&a, &c).unwrap();
        assert!(diff.contains("deterministic line 3"), "{diff}");
        assert!(
            diff.contains("\"net\":2") && diff.contains("\"net\":3"),
            "{diff}"
        );

        // A truncated trace reports <end of trace>.
        let truncated: String = a.lines().take(3).map(|l| format!("{l}\n")).collect();
        let diff = trace_divergence(&a, &truncated).unwrap();
        assert!(diff.contains("<end of trace>"), "{diff}");
    }
}
