//! JSONL serialization of [`RouteTrace`]s.
//!
//! One JSON object per line, hand-rolled (the workspace is hermetic —
//! no serde). Every value is a number or one of the fixed snake_case
//! labels from `bgr_core::probe`, so no string escaping is needed. The
//! line order is: one `meta` record, the deterministic `event` records
//! in emission order, the `counter` and `hist` diagnostics, then the
//! wall-clock `span` records. Because events carry no wall-clock, the
//! event prefix of two traces of the same input diffs clean even across
//! machines; only `span.wall_us` varies.
//!
//! Schema (`format` is bumped on breaking changes):
//!
//! ```text
//! {"type":"meta","format":"bgr-trace","version":1,"events":N}
//! {"type":"event","seq":0,"kind":"phase_enter","phase":"feed_assign"}
//! {"type":"event","seq":7,"kind":"deletion_selected","net":3,"edge":9,"tier":"d_max"}
//! {"type":"counter","name":"key_evals","value":1234}
//! {"type":"hist","name":"dirty_set_size","buckets":[0,5,3,0,0,0,0,0]}
//! {"type":"span","phase":"initial_routing","wall_us":8123,"events":152,"counters":{...}}
//! ```

use std::fmt::Write as _;

use bgr_core::probe::{Counter, Hist, RouteTrace, TraceEvent};

fn write_event(out: &mut String, seq: usize, ev: &TraceEvent) {
    let _ = write!(out, "{{\"type\":\"event\",\"seq\":{seq},");
    match *ev {
        TraceEvent::PhaseEnter { phase } => {
            let _ = write!(
                out,
                "\"kind\":\"phase_enter\",\"phase\":\"{}\"",
                phase.label()
            );
        }
        TraceEvent::PhaseExit { phase } => {
            let _ = write!(
                out,
                "\"kind\":\"phase_exit\",\"phase\":\"{}\"",
                phase.label()
            );
        }
        TraceEvent::DeletionSelected { net, edge, tier } => {
            let _ = write!(
                out,
                "\"kind\":\"deletion_selected\",\"net\":{},\"edge\":{},\"tier\":\"{}\"",
                net.index(),
                edge,
                tier.label()
            );
        }
        TraceEvent::CascadeDeleted { net, edge } => {
            let _ = write!(
                out,
                "\"kind\":\"cascade_deleted\",\"net\":{},\"edge\":{}",
                net.index(),
                edge
            );
        }
        TraceEvent::Pruned { net, count } => {
            let _ = write!(
                out,
                "\"kind\":\"pruned\",\"net\":{},\"count\":{}",
                net.index(),
                count
            );
        }
        TraceEvent::NetBecameTree { net } => {
            let _ = write!(out, "\"kind\":\"net_became_tree\",\"net\":{}", net.index());
        }
        TraceEvent::RerouteAccepted { net } => {
            let _ = write!(out, "\"kind\":\"reroute_accepted\",\"net\":{}", net.index());
        }
        TraceEvent::RerouteRejected { net } => {
            let _ = write!(out, "\"kind\":\"reroute_rejected\",\"net\":{}", net.index());
        }
        TraceEvent::FeedCellsInserted { row, x, width } => {
            let _ = write!(
                out,
                "\"kind\":\"feed_cells_inserted\",\"row\":{row},\"x\":{x},\"width\":{width}"
            );
        }
        TraceEvent::BudgetExhausted { phase, steps } => {
            let _ = write!(
                out,
                "\"kind\":\"budget_exhausted\",\"phase\":\"{}\",\"steps\":{steps}",
                phase.label()
            );
        }
        TraceEvent::FallbackDeleted { net, edge } => {
            let _ = write!(
                out,
                "\"kind\":\"fallback_deleted\",\"net\":{},\"edge\":{}",
                net.index(),
                edge
            );
        }
        TraceEvent::AuditPassed { phase, checks } => {
            let _ = write!(
                out,
                "\"kind\":\"audit_passed\",\"phase\":\"{}\",\"checks\":{checks}",
                phase.label()
            );
        }
        TraceEvent::AuditStep { step, checks } => {
            let _ = write!(
                out,
                "\"kind\":\"audit_step\",\"step\":{step},\"checks\":{checks}"
            );
        }
    }
    out.push_str("}\n");
}

fn is_deterministic(line: &str) -> bool {
    line.contains("\"type\":\"event\"") || line.contains("\"type\":\"meta\"")
}

/// The deterministic prefix of a trace JSONL document: the `meta` line
/// plus every `"type":"event"` line, newline-terminated. This is the
/// content a golden trace file stores and exactly what
/// [`trace_divergence`] compares — counter, histogram and span lines
/// are machine- and strategy-dependent diagnostics and are dropped.
pub fn deterministic_lines(trace_text: &str) -> String {
    trace_text
        .lines()
        .filter(|l| is_deterministic(l))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Compact first-divergence diff of two trace JSONL documents.
///
/// Compares only the deterministic prefix — the `meta` line and the
/// `"type":"event"` lines — because counters, histograms and spans are
/// diagnostics that legitimately vary across strategies, thread counts
/// and machines. Returns `None` when the deterministic prefixes are
/// byte-identical; otherwise a short report quoting the first line
/// number (1-based within the filtered prefix) where they part ways,
/// with both sides' lines (or `<end of trace>`).
pub fn trace_divergence(golden: &str, actual: &str) -> Option<String> {
    fn filter(text: &str) -> Vec<&str> {
        text.lines().filter(|l| is_deterministic(l)).collect()
    }
    let g = filter(golden);
    let a = filter(actual);
    let n = g.len().max(a.len());
    for i in 0..n {
        let gl = g.get(i).copied();
        let al = a.get(i).copied();
        if gl != al {
            return Some(format!(
                "first divergence at deterministic line {}:\n  golden: {}\n  actual: {}",
                i + 1,
                gl.unwrap_or("<end of trace>"),
                al.unwrap_or("<end of trace>"),
            ));
        }
    }
    None
}

/// The `"type":"event"` lines of a trace JSONL document only — no meta
/// line — newline-terminated. This is the slice a resumed session
/// appends to its stream: concatenating the event lines of every slice
/// (each serialized with [`write_trace_jsonl_offset`] at its
/// checkpoint's `events_emitted` offset) reproduces the uninterrupted
/// run's event lines byte-for-byte, `seq` included.
pub fn deterministic_event_lines(trace_text: &str) -> String {
    trace_text
        .lines()
        .filter(|l| l.contains("\"type\":\"event\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Serializes a trace as JSON lines (see the [module docs](self) for the
/// schema).
pub fn write_trace_jsonl(trace: &RouteTrace) -> String {
    write_trace_jsonl_offset(trace, 0)
}

/// [`write_trace_jsonl`] with event `seq` numbers starting at
/// `seq_offset` — the serialization of one *slice* of a checkpointed
/// session, whose events continue a stream that already emitted
/// `seq_offset` events (the snapshot's `events_emitted`). The meta
/// line's `events` count still covers only this document's events.
pub fn write_trace_jsonl_offset(trace: &RouteTrace, seq_offset: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"bgr-trace\",\"version\":1,\"events\":{}}}",
        trace.events.len()
    );
    for (i, ev) in trace.events.iter().enumerate() {
        write_event(&mut out, seq_offset as usize + i, ev);
    }
    for c in Counter::ALL {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            c.label(),
            trace.counter(c)
        );
    }
    for h in Hist::ALL {
        let buckets = trace
            .hist(h)
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"buckets\":[{buckets}]}}",
            h.label()
        );
    }
    for span in &trace.spans {
        let counters = Counter::ALL
            .iter()
            .map(|&c| format!("\"{}\":{}", c.label(), span.counters[c.index()]))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"phase\":\"{}\",\"wall_us\":{},\"events\":{},\"counters\":{{{counters}}}}}",
            span.phase.label(),
            span.wall.as_micros(),
            span.events_len
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::probe::{CollectingProbe, Phase, Probe};
    use bgr_core::DecidingTier;
    use bgr_netlist::NetId;

    fn sample_trace() -> RouteTrace {
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(2),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.count(Counter::KeyEval, 42);
        p.sample(Hist::DirtySetSize, 6);
        p.phase_exit(Phase::InitialRouting);
        p.finish()
    }

    #[test]
    fn jsonl_has_one_record_per_line() {
        let text = write_trace_jsonl(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        // meta + 4 events + one line per counter + per hist + 1 span.
        assert_eq!(
            lines.len(),
            1 + 4 + Counter::ALL.len() + Hist::ALL.len() + 1
        );
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"format\":\"bgr-trace\""));
    }

    #[test]
    fn jsonl_carries_provenance_and_diagnostics() {
        let text = write_trace_jsonl(&sample_trace());
        assert!(text.contains(
            "{\"type\":\"event\",\"seq\":1,\"kind\":\"deletion_selected\",\"net\":2,\"edge\":5,\"tier\":\"d_max\"}"
        ));
        assert!(text.contains("\"kind\":\"pruned\",\"net\":2,\"count\":3"));
        assert!(text.contains("{\"type\":\"counter\",\"name\":\"key_evals\",\"value\":42}"));
        // 6 lands in the 4-7 bucket (index 3).
        assert!(text.contains(
            "{\"type\":\"hist\",\"name\":\"dirty_set_size\",\"buckets\":[0,0,0,1,0,0,0,0]}"
        ));
        assert!(text.contains("\"type\":\"span\",\"phase\":\"initial_routing\""));
    }

    #[test]
    fn event_lines_are_wall_clock_free() {
        let text = write_trace_jsonl(&sample_trace());
        for line in text.lines().filter(|l| l.contains("\"type\":\"event\"")) {
            assert!(!line.contains("wall"), "{line}");
        }
    }

    #[test]
    fn degradation_events_serialize() {
        let mut p = CollectingProbe::new();
        p.event(TraceEvent::BudgetExhausted {
            phase: Phase::InitialRouting,
            steps: 12,
        });
        p.event(TraceEvent::FallbackDeleted {
            net: NetId::new(4),
            edge: 7,
        });
        let text = write_trace_jsonl(&p.finish());
        assert!(text
            .contains("\"kind\":\"budget_exhausted\",\"phase\":\"initial_routing\",\"steps\":12"));
        assert!(text.contains("\"kind\":\"fallback_deleted\",\"net\":4,\"edge\":7"));
    }

    #[test]
    fn audit_events_serialize() {
        let mut p = CollectingProbe::new();
        p.event(TraceEvent::AuditPassed {
            phase: Phase::ImproveArea,
            checks: 912,
        });
        p.event(TraceEvent::AuditStep {
            step: 64,
            checks: 912,
        });
        let text = write_trace_jsonl(&p.finish());
        assert!(
            text.contains("\"kind\":\"audit_passed\",\"phase\":\"improve_area\",\"checks\":912")
        );
        assert!(text.contains("\"kind\":\"audit_step\",\"step\":64,\"checks\":912"));
    }

    #[test]
    fn deterministic_lines_keep_meta_and_events_only() {
        let text = write_trace_jsonl(&sample_trace());
        let det = deterministic_lines(&text);
        assert_eq!(det.lines().count(), 5); // meta + 4 events
        assert!(det.lines().all(is_deterministic));
        // A golden holding only the deterministic prefix compares clean
        // against the full document.
        assert_eq!(trace_divergence(&det, &text), None);
    }

    #[test]
    fn divergence_ignores_diagnostics_and_finds_first_event_mismatch() {
        let a = write_trace_jsonl(&sample_trace());
        assert_eq!(trace_divergence(&a, &a), None);

        // Same events, different counter totals: still no divergence.
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(2),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.count(Counter::KeyEval, 9999);
        p.sample(Hist::DirtySetSize, 1);
        p.phase_exit(Phase::InitialRouting);
        let b = write_trace_jsonl(&p.finish());
        assert_eq!(trace_divergence(&a, &b), None);

        // A different event diverges, and the report quotes both sides.
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(3),
            edge: 5,
            tier: DecidingTier::DMax,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(2),
            count: 3,
        });
        p.phase_exit(Phase::InitialRouting);
        let c = write_trace_jsonl(&p.finish());
        let diff = trace_divergence(&a, &c).unwrap();
        assert!(diff.contains("deterministic line 3"), "{diff}");
        assert!(
            diff.contains("\"net\":2") && diff.contains("\"net\":3"),
            "{diff}"
        );

        // A truncated trace reports <end of trace>.
        let truncated: String = a.lines().take(3).map(|l| format!("{l}\n")).collect();
        let diff = trace_divergence(&a, &truncated).unwrap();
        assert!(diff.contains("<end of trace>"), "{diff}");
    }
}
