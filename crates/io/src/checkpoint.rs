//! Versioned text serialization of [`EngineSnapshot`]s (`.bgrc`).
//!
//! A checkpoint is a single line-oriented text document embedding the
//! session's design in the existing interchange formats (netlist,
//! placement, constraints — between `begin X` / `end X` sentinels) plus
//! the sessionized router state: resolved configuration, pipeline
//! stage, per-net alive masks, feed assignment, branch lengths and the
//! cumulative observable counters (DESIGN.md §13).
//!
//! Floating-point values are written as `f64::to_bits` hex, so the
//! round-trip is *bit-exact* — a restored session computes with exactly
//! the numbers the suspended one held, which the resume-equivalence
//! guarantee requires.
//!
//! Sections appear in a fixed order, each length-prefixed where
//! variable, so truncation at any byte is detected as a structured
//! [`ParseError`] — never a panic (`tests/checkpoint_robustness.rs`
//! proves this under truncation, corruption and version-skew fuzzing).

use std::fmt::Write as _;

use bgr_core::session::{EngineSnapshot, SessionStage, SnapshotStats, SNAPSHOT_VERSION};
use bgr_core::{
    Budgets, CriteriaOrder, OnViolation, PhaseOutcome, RekeyCauses, RouterConfig,
    SelectionStrategy, VerifyLevel,
};
use bgr_netlist::NetId;
use bgr_timing::{DelayModel, WireParams};

use crate::constraints::{parse_constraints, write_constraints};
use crate::error::ParseError;
use crate::netlist::{parse_netlist, write_netlist};
use crate::placement::{parse_placement, write_placement};

const HEADER: &str = "bgr-checkpoint v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn verify_str(v: VerifyLevel) -> String {
    match v {
        VerifyLevel::Off => "off".into(),
        VerifyLevel::Final => "final".into(),
        VerifyLevel::Phases => "phases".into(),
        VerifyLevel::Steps(n) => format!("steps:{n}"),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "none".into(),
    }
}

/// FNV-1a 64-bit hash of a design text — the integrity check of the
/// design-by-reference checkpoint mode. Stable across platforms (pure
/// byte fold, no seeding).
pub fn design_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Paths of an externalized design, stored verbatim in `design-ref`
/// lines of a by-reference checkpoint. Relative paths resolve against
/// the base directory given to [`parse_checkpoint_in`] (conventionally
/// the checkpoint's own directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRefs {
    /// Netlist file (`.bgrn`).
    pub netlist: String,
    /// Placement file (`.bgrp`).
    pub placement: String,
    /// Constraints file (`.bgrt`).
    pub constraints: String,
}

/// Writes a snapshot's design to `<stem>.bgrn` / `.bgrp` / `.bgrt`
/// under `dir` and returns the (relative) [`DesignRefs`] for
/// [`write_checkpoint_ref`]. Queues that route the same circuit many
/// times call this once and shrink every subsequent checkpoint from
/// ~40 kB to ~1 kB.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, file writes).
pub fn externalize_design(
    snap: &EngineSnapshot,
    dir: &std::path::Path,
    stem: &str,
) -> std::io::Result<DesignRefs> {
    std::fs::create_dir_all(dir)?;
    let refs = DesignRefs {
        netlist: format!("{stem}.bgrn"),
        placement: format!("{stem}.bgrp"),
        constraints: format!("{stem}.bgrt"),
    };
    std::fs::write(dir.join(&refs.netlist), write_netlist(&snap.circuit))?;
    std::fs::write(
        dir.join(&refs.placement),
        write_placement(&snap.circuit, &snap.placement),
    )?;
    std::fs::write(
        dir.join(&refs.constraints),
        write_constraints(&snap.circuit, &snap.constraints),
    )?;
    Ok(refs)
}

/// Re-serializes a checkpoint with its embedded [`RouterConfig`]
/// replaced — the speculative-portfolio helper: each arm races the
/// *same* suspended state under different knobs.
///
/// Only deterministically safe knobs should differ between arms:
/// `criteria_order` (changes future deletion decisions — the point of
/// racing), `threads`/`shards`/`selection` (proven
/// observable-invariant), budgets and verify level. Changing
/// `use_constraints` or the delay model mid-run re-interprets state the
/// suspended session already computed and is rejected by nothing here —
/// callers own that contract.
///
/// # Errors
///
/// A structured [`ParseError`] when `text` is not a valid checkpoint.
pub fn reconfigure_checkpoint(
    text: &str,
    config: &bgr_core::RouterConfig,
) -> Result<String, ParseError> {
    let mut snap = parse_checkpoint(text)?;
    snap.config = config.clone();
    Ok(write_checkpoint(&snap))
}

/// Serializes a snapshot to the checkpoint text format.
pub fn write_checkpoint(snap: &EngineSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    // The embedded design first: everything after it is interpreted
    // against these objects.
    let _ = writeln!(out, "begin netlist");
    out.push_str(&write_netlist(&snap.circuit));
    let _ = writeln!(out, "end netlist");
    let _ = writeln!(out, "begin placement");
    out.push_str(&write_placement(&snap.circuit, &snap.placement));
    let _ = writeln!(out, "end placement");
    let _ = writeln!(out, "begin constraints");
    out.push_str(&write_constraints(&snap.circuit, &snap.constraints));
    let _ = writeln!(out, "end constraints");
    write_state(&mut out, snap);
    out
}

/// [`write_checkpoint`] in design-by-reference mode: instead of
/// embedding the design, emits one `design-ref <kind> <fnv64> <path>`
/// line per design file (hashing the snapshot's own canonical
/// serialization, so a file produced by [`externalize_design`] always
/// verifies). Such a checkpoint must be restored with
/// [`parse_checkpoint_in`]; the plain parser reports a structured
/// error directing there.
pub fn write_checkpoint_ref(snap: &EngineSnapshot, refs: &DesignRefs) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(
        out,
        "design-ref netlist {:016x} {}",
        design_hash(&write_netlist(&snap.circuit)),
        refs.netlist
    );
    let _ = writeln!(
        out,
        "design-ref placement {:016x} {}",
        design_hash(&write_placement(&snap.circuit, &snap.placement)),
        refs.placement
    );
    let _ = writeln!(
        out,
        "design-ref constraints {:016x} {}",
        design_hash(&write_constraints(&snap.circuit, &snap.constraints)),
        refs.constraints
    );
    write_state(&mut out, snap);
    out
}

/// The design-independent tail of a checkpoint: config, stage, stats,
/// recovery, logs, masks — shared by both writer modes.
fn write_state(out: &mut String, snap: &EngineSnapshot) {
    let c = &snap.config;
    let _ = writeln!(
        out,
        "config use_constraints {}",
        u8::from(c.use_constraints)
    );
    let _ = writeln!(
        out,
        "config delay_model {}",
        match c.delay_model {
            DelayModel::Capacitance => "capacitance",
            DelayModel::Elmore => "elmore",
        }
    );
    let _ = writeln!(
        out,
        "config wire {} {}",
        f64_hex(c.wire.cap_ff_per_um),
        f64_hex(c.wire.res_ohm_per_um)
    );
    let _ = writeln!(
        out,
        "config branch_length_um {}",
        f64_hex(c.branch_length_um)
    );
    let _ = writeln!(out, "config recover_passes {}", c.recover_passes);
    let _ = writeln!(out, "config delay_passes {}", c.delay_passes);
    let _ = writeln!(out, "config area_passes {}", c.area_passes);
    let _ = writeln!(
        out,
        "config criteria_order {}",
        match c.criteria_order {
            CriteriaOrder::DelayFirst => "delay_first",
            CriteriaOrder::AreaFirst => "area_first",
            CriteriaOrder::DensityOnly => "density_only",
        }
    );
    let _ = writeln!(
        out,
        "config pair_differential {}",
        u8::from(c.pair_differential)
    );
    let _ = writeln!(out, "config slack_ordering {}", u8::from(c.slack_ordering));
    let _ = writeln!(
        out,
        "config selection {}",
        match c.selection {
            SelectionStrategy::Scoreboard => "scoreboard",
            SelectionStrategy::FullRescan => "full_rescan",
        }
    );
    let _ = writeln!(out, "config threads {}", c.threads);
    let _ = writeln!(out, "config shards {}", c.shards);
    let _ = writeln!(
        out,
        "config on_violation {}",
        match c.on_violation {
            OnViolation::Fail => "fail",
            OnViolation::BestEffort => "best_effort",
        }
    );
    let _ = writeln!(out, "config verify {}", verify_str(c.verify));
    let _ = writeln!(
        out,
        "config deletion_steps {}",
        opt_u64(c.budgets.deletion_steps)
    );
    let _ = writeln!(
        out,
        "config phase_reroutes {}",
        opt_u64(c.budgets.phase_reroutes)
    );
    let _ = writeln!(
        out,
        "config deadline_ns {}",
        match c.deadline {
            Some(d) => d.as_nanos().to_string(),
            None => "none".into(),
        }
    );

    let _ = match snap.stage {
        SessionStage::InitialRouting { done } => writeln!(out, "stage initial_routing {done}"),
        stage => writeln!(out, "stage {}", stage.label()),
    };
    let _ = writeln!(out, "events_emitted {}", snap.events_emitted);

    let s = &snap.stats;
    let _ = writeln!(out, "stat deletions {}", s.deletions);
    let _ = writeln!(out, "stat reroutes {}", s.reroutes);
    let rk = s.rekey_causes.counts();
    let _ = writeln!(
        out,
        "stat rekey_causes {} {} {} {}",
        rk[0], rk[1], rk[2], rk[3]
    );
    let _ = writeln!(out, "stat audits_passed {}", s.audits_passed);
    let _ = writeln!(out, "stat audit_checks {}", s.audit_checks);
    let _ = writeln!(out, "stat feed_cells_inserted {}", s.feed_cells_inserted);
    let _ = writeln!(out, "stat widened_pitches {}", s.widened_pitches);
    let _ = writeln!(out, "stat diff_pairs_locked {}", s.diff_pairs_locked);
    let _ = writeln!(
        out,
        "stat diff_pairs_independent {}",
        s.diff_pairs_independent
    );
    let r = &snap.recovery;
    let _ = writeln!(
        out,
        "recovery {} {} {} {}",
        r.reroutes,
        r.passes,
        u8::from(r.budget_exhausted),
        u8::from(r.deadline_fired)
    );

    let _ = writeln!(out, "branch_lens {}", snap.branch_lens.len());
    for v in &snap.branch_lens {
        let _ = writeln!(out, "b {}", f64_hex(*v));
    }
    let _ = writeln!(out, "selection_log {}", snap.stats.selection_log.len());
    for (net, edge) in &snap.stats.selection_log {
        let _ = writeln!(out, "s {} {}", net.index(), edge);
    }
    let _ = writeln!(out, "feeds {}", snap.feeds.len());
    for per_net in &snap.feeds {
        let _ = write!(out, "f {}", per_net.len());
        for (row, x) in per_net {
            let _ = write!(out, " {row}:{x}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "alive {}", snap.alive.len());
    for mask in &snap.alive {
        let bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let _ = writeln!(out, "a {bits}");
    }
    let _ = writeln!(out, "end checkpoint");
}

/// Line cursor over the checkpoint text, tracking 1-based positions for
/// error reporting.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().enumerate(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        match self.lines.next() {
            Some((i, l)) => {
                self.pos = i + 1;
                Ok(l)
            }
            None => Err(ParseError::new(0, "unexpected end of checkpoint")),
        }
    }

    /// The upcoming line, without consuming it.
    fn peek(&self) -> Option<&'a str> {
        self.lines.clone().next().map(|(_, l)| l)
    }

    /// Next line, which must start with `keyword `; returns the rest.
    fn field(&mut self, keyword: &str) -> Result<&'a str, ParseError> {
        let line = self.next()?;
        match line.strip_prefix(keyword).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok(rest),
            None => Err(ParseError::new(
                self.pos,
                format!("expected `{keyword} ...`, got {line:?}"),
            )),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    /// Collects the lines of a `begin name` .. `end name` block.
    fn block(&mut self, name: &str) -> Result<String, ParseError> {
        let open = self.next()?;
        if open != format!("begin {name}") {
            return Err(self.err(format!("expected `begin {name}`, got {open:?}")));
        }
        let close = format!("end {name}");
        let mut body = String::new();
        loop {
            let line = self.next()?;
            if line == close {
                return Ok(body);
            }
            body.push_str(line);
            body.push('\n');
        }
    }

    fn f64_hex(&self, raw: &str) -> Result<f64, ParseError> {
        u64::from_str_radix(raw, 16)
            .map(f64::from_bits)
            .map_err(|_| self.err(format!("bad f64 bits {raw:?}")))
    }

    fn usize_of(&self, raw: &str) -> Result<usize, ParseError> {
        raw.parse()
            .map_err(|_| self.err(format!("bad integer {raw:?}")))
    }

    fn u64_of(&self, raw: &str) -> Result<u64, ParseError> {
        raw.parse()
            .map_err(|_| self.err(format!("bad integer {raw:?}")))
    }

    fn bool_of(&self, raw: &str) -> Result<bool, ParseError> {
        match raw {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(self.err(format!("bad flag {raw:?} (want 0 or 1)"))),
        }
    }

    fn usize_field(&mut self, keyword: &str) -> Result<usize, ParseError> {
        let raw = self.field(keyword)?;
        self.usize_of(raw)
    }

    fn u64_field(&mut self, keyword: &str) -> Result<u64, ParseError> {
        let raw = self.field(keyword)?;
        self.u64_of(raw)
    }

    fn bool_field(&mut self, keyword: &str) -> Result<bool, ParseError> {
        let raw = self.field(keyword)?;
        self.bool_of(raw)
    }

    fn f64_field(&mut self, keyword: &str) -> Result<f64, ParseError> {
        let raw = self.field(keyword)?;
        self.f64_hex(raw)
    }

    fn opt_u64_field(&mut self, keyword: &str) -> Result<Option<u64>, ParseError> {
        let raw = self.field(keyword)?;
        if raw == "none" {
            Ok(None)
        } else {
            self.u64_of(raw).map(Some)
        }
    }
}

/// Parses the checkpoint text format back into an [`EngineSnapshot`].
///
/// # Errors
///
/// A structured [`ParseError`] for version skew, truncation, or any
/// malformed line — by design this function never panics on arbitrary
/// input.
// Config fields are parsed sequentially in the fixed emission order so
// errors point at the offending line; a struct literal can't do that.
#[allow(clippy::field_reassign_with_default)]
pub fn parse_checkpoint(text: &str) -> Result<EngineSnapshot, ParseError> {
    parse_checkpoint_inner(text, None)
}

/// [`parse_checkpoint`] that can additionally restore design-by-reference
/// checkpoints ([`write_checkpoint_ref`]): relative `design-ref` paths
/// resolve against `base_dir` (conventionally the checkpoint's own
/// directory), each referenced file's FNV-1a hash is re-computed and
/// verified against the recorded one, and a mismatch — a swapped or
/// edited design file — is a structured [`ParseError`], never a
/// mis-restored session.
///
/// # Errors
///
/// Everything [`parse_checkpoint`] reports, plus unreadable reference
/// files and design-hash mismatches.
pub fn parse_checkpoint_in(
    text: &str,
    base_dir: &std::path::Path,
) -> Result<EngineSnapshot, ParseError> {
    parse_checkpoint_inner(text, Some(base_dir))
}

/// One `design-ref <kind> <fnv64> <path>` line: resolve, read, verify.
fn design_ref_text(
    cur: &mut Cursor,
    kind: &str,
    base_dir: Option<&std::path::Path>,
) -> Result<String, ParseError> {
    let rest = cur.field("design-ref")?;
    let mut parts = rest.splitn(3, ' ');
    match parts.next() {
        Some(k) if k == kind => {}
        other => {
            return Err(cur.err(format!(
                "expected `design-ref {kind} ...`, got kind {other:?}"
            )))
        }
    }
    let hash_raw = parts
        .next()
        .ok_or_else(|| cur.err(format!("design-ref {kind}: missing hash")))?;
    let expected = u64::from_str_radix(hash_raw, 16)
        .map_err(|_| cur.err(format!("design-ref {kind}: bad hash {hash_raw:?}")))?;
    let path = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| cur.err(format!("design-ref {kind}: missing path")))?;
    let Some(base_dir) = base_dir else {
        return Err(cur.err(format!(
            "checkpoint stores its {kind} by reference ({path}); restore it with \
             parse_checkpoint_in and the checkpoint's directory"
        )));
    };
    let full = {
        let p = std::path::Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            base_dir.join(p)
        }
    };
    let text = std::fs::read_to_string(&full).map_err(|e| {
        cur.err(format!(
            "design-ref {kind}: cannot read {}: {e}",
            full.display()
        ))
    })?;
    let got = design_hash(&text);
    if got != expected {
        return Err(cur.err(format!(
            "design-ref {kind}: hash mismatch for {} (checkpoint records {expected:016x}, \
             file hashes to {got:016x}) — the referenced design changed since the checkpoint \
             was written",
            full.display()
        )));
    }
    Ok(text)
}

#[allow(clippy::field_reassign_with_default)]
fn parse_checkpoint_inner(
    text: &str,
    base_dir: Option<&std::path::Path>,
) -> Result<EngineSnapshot, ParseError> {
    let mut cur = Cursor::new(text);
    let header = cur.next()?;
    match header.strip_prefix("bgr-checkpoint v") {
        Some(v) if v == SNAPSHOT_VERSION.to_string() => {}
        Some(v) => {
            return Err(cur.err(format!(
                "checkpoint version {v:?} unsupported (this build reads v{SNAPSHOT_VERSION})"
            )))
        }
        None => return Err(cur.err(format!("not a bgr checkpoint (header {header:?})"))),
    }

    let by_reference = cur.peek().is_some_and(|l| l.starts_with("design-ref "));
    let (netlist_text, placement_text, constraints_text) = if by_reference {
        (
            design_ref_text(&mut cur, "netlist", base_dir)?,
            design_ref_text(&mut cur, "placement", base_dir)?,
            design_ref_text(&mut cur, "constraints", base_dir)?,
        )
    } else {
        (
            cur.block("netlist")?,
            cur.block("placement")?,
            cur.block("constraints")?,
        )
    };
    let circuit =
        parse_netlist(&netlist_text).map_err(|e| cur.err(format!("embedded netlist: {e}")))?;
    let placement = parse_placement(&circuit, &placement_text)
        .map_err(|e| cur.err(format!("embedded placement: {e}")))?;
    let constraints = parse_constraints(&circuit, &constraints_text)
        .map_err(|e| cur.err(format!("embedded constraints: {e}")))?;

    // Config fields, in the fixed emission order.
    let mut config = RouterConfig::default();
    config.use_constraints = cur.bool_field("config use_constraints")?;
    config.delay_model = match cur.field("config delay_model")? {
        "capacitance" => DelayModel::Capacitance,
        "elmore" => DelayModel::Elmore,
        other => return Err(cur.err(format!("unknown delay model {other:?}"))),
    };
    {
        let raw = cur.field("config wire")?;
        let mut it = raw.split(' ');
        let cap = it.next().ok_or_else(|| cur.err("missing wire cap"))?;
        let res = it.next().ok_or_else(|| cur.err("missing wire res"))?;
        config.wire = WireParams {
            cap_ff_per_um: cur.f64_hex(cap)?,
            res_ohm_per_um: cur.f64_hex(res)?,
        };
    }
    config.branch_length_um = cur.f64_field("config branch_length_um")?;
    config.recover_passes = cur.usize_field("config recover_passes")?;
    config.delay_passes = cur.usize_field("config delay_passes")?;
    config.area_passes = cur.usize_field("config area_passes")?;
    config.criteria_order = match cur.field("config criteria_order")? {
        "delay_first" => CriteriaOrder::DelayFirst,
        "area_first" => CriteriaOrder::AreaFirst,
        "density_only" => CriteriaOrder::DensityOnly,
        other => return Err(cur.err(format!("unknown criteria order {other:?}"))),
    };
    config.pair_differential = cur.bool_field("config pair_differential")?;
    config.slack_ordering = cur.bool_field("config slack_ordering")?;
    config.selection = match cur.field("config selection")? {
        "scoreboard" => SelectionStrategy::Scoreboard,
        "full_rescan" => SelectionStrategy::FullRescan,
        other => return Err(cur.err(format!("unknown selection strategy {other:?}"))),
    };
    config.threads = cur.usize_field("config threads")?;
    config.shards = cur.usize_field("config shards")?;
    config.on_violation = match cur.field("config on_violation")? {
        "fail" => OnViolation::Fail,
        "best_effort" => OnViolation::BestEffort,
        other => return Err(cur.err(format!("unknown violation policy {other:?}"))),
    };
    config.verify = {
        let raw = cur.field("config verify")?;
        let level = VerifyLevel::parse(raw);
        // VerifyLevel::parse maps garbage to Off; reject it here instead.
        if level == VerifyLevel::Off && raw != "off" {
            return Err(cur.err(format!("unknown verify level {raw:?}")));
        }
        level
    };
    config.budgets = Budgets {
        deletion_steps: cur.opt_u64_field("config deletion_steps")?,
        phase_reroutes: cur.opt_u64_field("config phase_reroutes")?,
    };
    config.deadline = match cur.field("config deadline_ns")? {
        "none" => None,
        raw => {
            let ns: u128 = raw
                .parse()
                .map_err(|_| cur.err(format!("bad deadline {raw:?}")))?;
            let ns64 = u64::try_from(ns).map_err(|_| cur.err("deadline out of range"))?;
            Some(std::time::Duration::from_nanos(ns64))
        }
    };

    let stage = {
        let raw = cur.field("stage")?;
        match raw.split_once(' ') {
            Some(("initial_routing", done)) => SessionStage::InitialRouting {
                done: cur.u64_of(done)?,
            },
            None => match raw {
                "recover_violate" => SessionStage::RecoverViolate,
                "improve_delay" => SessionStage::ImproveDelay,
                "improve_area" => SessionStage::ImproveArea,
                "finished" => SessionStage::Finished,
                other => return Err(cur.err(format!("unknown stage {other:?}"))),
            },
            Some((other, _)) => return Err(cur.err(format!("unknown stage {other:?}"))),
        }
    };
    let events_emitted = cur.u64_field("events_emitted")?;

    let mut stats = SnapshotStats {
        deletions: cur.usize_field("stat deletions")?,
        reroutes: cur.usize_field("stat reroutes")?,
        ..SnapshotStats::default()
    };
    stats.rekey_causes = {
        let raw = cur.field("stat rekey_causes")?;
        let mut counts = [0usize; 4];
        let mut it = raw.split(' ');
        for slot in &mut counts {
            let tok = it
                .next()
                .ok_or_else(|| cur.err("rekey_causes wants 4 counts"))?;
            *slot = cur.usize_of(tok)?;
        }
        RekeyCauses::from_counts(counts)
    };
    stats.audits_passed = cur.u64_field("stat audits_passed")?;
    stats.audit_checks = cur.u64_field("stat audit_checks")?;
    stats.feed_cells_inserted = cur.usize_field("stat feed_cells_inserted")?;
    stats.widened_pitches = {
        let raw = cur.field("stat widened_pitches")?;
        raw.parse()
            .map_err(|_| cur.err(format!("bad integer {raw:?}")))?
    };
    stats.diff_pairs_locked = cur.usize_field("stat diff_pairs_locked")?;
    stats.diff_pairs_independent = cur.usize_field("stat diff_pairs_independent")?;

    let recovery = {
        let raw = cur.field("recovery")?;
        let mut it = raw.split(' ');
        let mut toks = Vec::with_capacity(4);
        for _ in 0..4 {
            toks.push(
                it.next()
                    .ok_or_else(|| cur.err("recovery wants 4 fields"))?,
            );
        }
        PhaseOutcome {
            reroutes: cur.usize_of(toks[0])?,
            passes: cur.usize_of(toks[1])?,
            budget_exhausted: cur.bool_of(toks[2])?,
            deadline_fired: cur.bool_of(toks[3])?,
        }
    };

    let n_branch = cur.usize_field("branch_lens")?;
    let mut branch_lens = Vec::with_capacity(n_branch.min(1 << 20));
    for _ in 0..n_branch {
        branch_lens.push(cur.f64_field("b")?);
    }
    let n_sel = cur.usize_field("selection_log")?;
    let mut selection_log = Vec::with_capacity(n_sel.min(1 << 20));
    for _ in 0..n_sel {
        let raw = cur.field("s")?;
        let (net, edge) = raw
            .split_once(' ')
            .ok_or_else(|| cur.err("selection entry wants `net edge`"))?;
        let net = cur.usize_of(net)?;
        let edge: u32 = edge
            .parse()
            .map_err(|_| cur.err(format!("bad edge {edge:?}")))?;
        selection_log.push((NetId::new(net), edge));
    }
    stats.selection_log = selection_log;
    let n_feeds = cur.usize_field("feeds")?;
    let mut feeds = Vec::with_capacity(n_feeds.min(1 << 20));
    for _ in 0..n_feeds {
        let raw = cur.field("f")?;
        let mut it = raw.split(' ');
        let count = cur.usize_of(it.next().unwrap_or(""))?;
        let mut per_net = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let tok = it.next().ok_or_else(|| cur.err("short feed list"))?;
            let (row, x) = tok
                .split_once(':')
                .ok_or_else(|| cur.err(format!("bad feed {tok:?} (want row:x)")))?;
            let row = cur.usize_of(row)?;
            let x: i32 = x
                .parse()
                .map_err(|_| cur.err(format!("bad feed x {x:?}")))?;
            per_net.push((row, x));
        }
        if it.next().is_some() {
            return Err(cur.err("trailing tokens after feed list"));
        }
        feeds.push(per_net);
    }
    let n_alive = cur.usize_field("alive")?;
    let mut alive = Vec::with_capacity(n_alive.min(1 << 20));
    for _ in 0..n_alive {
        let raw = cur.field("a")?;
        let mut mask = Vec::with_capacity(raw.len());
        for ch in raw.chars() {
            match ch {
                '0' => mask.push(false),
                '1' => mask.push(true),
                _ => return Err(cur.err(format!("bad mask bit {ch:?}"))),
            }
        }
        alive.push(mask);
    }
    let tail = cur.next()?;
    if tail != "end checkpoint" {
        return Err(cur.err(format!("expected `end checkpoint`, got {tail:?}")));
    }

    Ok(EngineSnapshot {
        version: SNAPSHOT_VERSION,
        config,
        circuit,
        placement,
        constraints,
        feeds,
        branch_lens,
        alive,
        stage,
        stats,
        recovery,
        events_emitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::probe::CollectingProbe;
    use bgr_core::session::RouteSession;
    use bgr_gen::circuits::golden_instance;

    fn sample_snapshot() -> EngineSnapshot {
        let ds = golden_instance();
        let (circuit, placement, cons) = (ds.design.circuit, ds.placement, ds.design.constraints);
        let mut session = RouteSession::start(
            RouterConfig {
                threads: 1,
                shards: 2,
                ..RouterConfig::default()
            },
            circuit,
            placement,
            cons,
            CollectingProbe::new(),
        )
        .unwrap();
        // Park mid-deletion-loop so the snapshot carries real state.
        for _ in 0..3 {
            session.step(Some(5)).unwrap();
        }
        session.snapshot()
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let text = write_checkpoint(&snap);
        let back = parse_checkpoint(&text).unwrap();
        assert_eq!(back.version, snap.version);
        assert_eq!(back.config, snap.config);
        assert_eq!(back.stage, snap.stage);
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.recovery, snap.recovery);
        assert_eq!(back.events_emitted, snap.events_emitted);
        assert_eq!(back.feeds, snap.feeds);
        assert_eq!(back.alive, snap.alive);
        // f64 bit-exactness, not just approximate equality.
        let a: Vec<u64> = back.branch_lens.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = snap.branch_lens.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        // And the re-serialization is byte-identical.
        assert_eq!(write_checkpoint(&back), text);
    }

    #[test]
    fn by_reference_round_trips_and_compacts() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("bgr_ckpt_ref_roundtrip");
        let refs = externalize_design(&snap, &dir, "design").unwrap();
        let text = write_checkpoint_ref(&snap, &refs);
        let embedded = write_checkpoint(&snap);
        assert!(
            text.len() * 5 < embedded.len(),
            "by-reference checkpoint should be a small fraction of the embedded one \
             ({} vs {} bytes)",
            text.len(),
            embedded.len()
        );

        let back = parse_checkpoint_in(&text, &dir).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.stage, snap.stage);
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.events_emitted, snap.events_emitted);
        assert_eq!(back.feeds, snap.feeds);
        assert_eq!(back.alive, snap.alive);
        let a: Vec<u64> = back.branch_lens.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = snap.branch_lens.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        // The restored snapshot re-serializes to the identical ref text
        // (same design → same hashes) and to the identical embedded text.
        assert_eq!(write_checkpoint_ref(&back, &refs), text);
        assert_eq!(write_checkpoint(&back), embedded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn by_reference_without_resolver_is_structured() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("bgr_ckpt_ref_noresolve");
        let refs = externalize_design(&snap, &dir, "design").unwrap();
        let text = write_checkpoint_ref(&snap, &refs);
        let err = parse_checkpoint(&text).unwrap_err();
        assert!(err.message.contains("parse_checkpoint_in"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn by_reference_hash_mismatch_and_missing_file_are_structured() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("bgr_ckpt_ref_tamper");
        let refs = externalize_design(&snap, &dir, "design").unwrap();
        let text = write_checkpoint_ref(&snap, &refs);

        // Tamper with the referenced netlist: caught by the hash, with a
        // message naming the file and both hashes.
        let netlist_path = dir.join(&refs.netlist);
        let original = std::fs::read_to_string(&netlist_path).unwrap();
        std::fs::write(&netlist_path, format!("{original}\n")).unwrap();
        let err = parse_checkpoint_in(&text, &dir).unwrap_err();
        assert!(err.message.contains("hash mismatch"), "{err}");
        assert!(err.message.contains("design.bgrn"), "{err}");

        // Remove it entirely: a structured read error, not a panic.
        std::fs::remove_file(&netlist_path).unwrap();
        let err = parse_checkpoint_in(&text, &dir).unwrap_err();
        assert!(err.message.contains("cannot read"), "{err}");

        // Malformed ref lines are structured too.
        for bad in [
            "design-ref netlist zzzz design.bgrn",
            "design-ref netlist 0123",
            "design-ref placement 0123456789abcdef design.bgrp",
        ] {
            let mangled = text
                .lines()
                .map(|l| {
                    if l.starts_with("design-ref netlist") {
                        bad.to_string()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            assert!(parse_checkpoint_in(&mangled, &dir).is_err(), "{bad}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn design_hash_is_stable_and_content_sensitive() {
        // Pinned FNV-1a 64 vectors: a changed algorithm would silently
        // orphan every existing by-reference checkpoint.
        assert_eq!(design_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(design_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(design_hash("net n0"), design_hash("net n1"));
    }

    #[test]
    fn version_skew_is_a_parse_error() {
        let text = write_checkpoint(&sample_snapshot());
        let skewed = text.replacen("bgr-checkpoint v1", "bgr-checkpoint v2", 1);
        let err = parse_checkpoint(&skewed).unwrap_err();
        assert!(err.message.contains("version"), "{err}");
        let err = parse_checkpoint("hello world\n").unwrap_err();
        assert!(err.message.contains("not a bgr checkpoint"), "{err}");
    }

    #[test]
    fn truncation_is_a_parse_error_at_every_cut() {
        let text = write_checkpoint(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        for frac in [1, 3, 10, 30, 60, 95] {
            let cut = lines.len() * frac / 100;
            let truncated: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            assert!(
                parse_checkpoint(&truncated).is_err(),
                "cut at {cut}/{} lines parsed",
                lines.len()
            );
        }
    }
}
