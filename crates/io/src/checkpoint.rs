//! Versioned text serialization of [`EngineSnapshot`]s (`.bgrc`).
//!
//! A checkpoint is a single line-oriented text document embedding the
//! session's design in the existing interchange formats (netlist,
//! placement, constraints — between `begin X` / `end X` sentinels) plus
//! the sessionized router state: resolved configuration, pipeline
//! stage, per-net alive masks, feed assignment, branch lengths and the
//! cumulative observable counters (DESIGN.md §13).
//!
//! Floating-point values are written as `f64::to_bits` hex, so the
//! round-trip is *bit-exact* — a restored session computes with exactly
//! the numbers the suspended one held, which the resume-equivalence
//! guarantee requires.
//!
//! Sections appear in a fixed order, each length-prefixed where
//! variable, so truncation at any byte is detected as a structured
//! [`ParseError`] — never a panic (`tests/checkpoint_robustness.rs`
//! proves this under truncation, corruption and version-skew fuzzing).

use std::fmt::Write as _;

use bgr_core::session::{EngineSnapshot, SessionStage, SnapshotStats, SNAPSHOT_VERSION};
use bgr_core::{
    Budgets, CriteriaOrder, OnViolation, PhaseOutcome, RekeyCauses, RouterConfig,
    SelectionStrategy, VerifyLevel,
};
use bgr_netlist::NetId;
use bgr_timing::{DelayModel, WireParams};

use crate::constraints::{parse_constraints, write_constraints};
use crate::error::ParseError;
use crate::netlist::{parse_netlist, write_netlist};
use crate::placement::{parse_placement, write_placement};

const HEADER: &str = "bgr-checkpoint v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn verify_str(v: VerifyLevel) -> String {
    match v {
        VerifyLevel::Off => "off".into(),
        VerifyLevel::Final => "final".into(),
        VerifyLevel::Phases => "phases".into(),
        VerifyLevel::Steps(n) => format!("steps:{n}"),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "none".into(),
    }
}

/// Serializes a snapshot to the checkpoint text format.
pub fn write_checkpoint(snap: &EngineSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    // The embedded design first: everything after it is interpreted
    // against these objects.
    let _ = writeln!(out, "begin netlist");
    out.push_str(&write_netlist(&snap.circuit));
    let _ = writeln!(out, "end netlist");
    let _ = writeln!(out, "begin placement");
    out.push_str(&write_placement(&snap.circuit, &snap.placement));
    let _ = writeln!(out, "end placement");
    let _ = writeln!(out, "begin constraints");
    out.push_str(&write_constraints(&snap.circuit, &snap.constraints));
    let _ = writeln!(out, "end constraints");

    let c = &snap.config;
    let _ = writeln!(
        out,
        "config use_constraints {}",
        u8::from(c.use_constraints)
    );
    let _ = writeln!(
        out,
        "config delay_model {}",
        match c.delay_model {
            DelayModel::Capacitance => "capacitance",
            DelayModel::Elmore => "elmore",
        }
    );
    let _ = writeln!(
        out,
        "config wire {} {}",
        f64_hex(c.wire.cap_ff_per_um),
        f64_hex(c.wire.res_ohm_per_um)
    );
    let _ = writeln!(
        out,
        "config branch_length_um {}",
        f64_hex(c.branch_length_um)
    );
    let _ = writeln!(out, "config recover_passes {}", c.recover_passes);
    let _ = writeln!(out, "config delay_passes {}", c.delay_passes);
    let _ = writeln!(out, "config area_passes {}", c.area_passes);
    let _ = writeln!(
        out,
        "config criteria_order {}",
        match c.criteria_order {
            CriteriaOrder::DelayFirst => "delay_first",
            CriteriaOrder::AreaFirst => "area_first",
            CriteriaOrder::DensityOnly => "density_only",
        }
    );
    let _ = writeln!(
        out,
        "config pair_differential {}",
        u8::from(c.pair_differential)
    );
    let _ = writeln!(out, "config slack_ordering {}", u8::from(c.slack_ordering));
    let _ = writeln!(
        out,
        "config selection {}",
        match c.selection {
            SelectionStrategy::Scoreboard => "scoreboard",
            SelectionStrategy::FullRescan => "full_rescan",
        }
    );
    let _ = writeln!(out, "config threads {}", c.threads);
    let _ = writeln!(out, "config shards {}", c.shards);
    let _ = writeln!(
        out,
        "config on_violation {}",
        match c.on_violation {
            OnViolation::Fail => "fail",
            OnViolation::BestEffort => "best_effort",
        }
    );
    let _ = writeln!(out, "config verify {}", verify_str(c.verify));
    let _ = writeln!(
        out,
        "config deletion_steps {}",
        opt_u64(c.budgets.deletion_steps)
    );
    let _ = writeln!(
        out,
        "config phase_reroutes {}",
        opt_u64(c.budgets.phase_reroutes)
    );
    let _ = writeln!(
        out,
        "config deadline_ns {}",
        match c.deadline {
            Some(d) => d.as_nanos().to_string(),
            None => "none".into(),
        }
    );

    let _ = match snap.stage {
        SessionStage::InitialRouting { done } => writeln!(out, "stage initial_routing {done}"),
        stage => writeln!(out, "stage {}", stage.label()),
    };
    let _ = writeln!(out, "events_emitted {}", snap.events_emitted);

    let s = &snap.stats;
    let _ = writeln!(out, "stat deletions {}", s.deletions);
    let _ = writeln!(out, "stat reroutes {}", s.reroutes);
    let rk = s.rekey_causes.counts();
    let _ = writeln!(
        out,
        "stat rekey_causes {} {} {} {}",
        rk[0], rk[1], rk[2], rk[3]
    );
    let _ = writeln!(out, "stat audits_passed {}", s.audits_passed);
    let _ = writeln!(out, "stat audit_checks {}", s.audit_checks);
    let _ = writeln!(out, "stat feed_cells_inserted {}", s.feed_cells_inserted);
    let _ = writeln!(out, "stat widened_pitches {}", s.widened_pitches);
    let _ = writeln!(out, "stat diff_pairs_locked {}", s.diff_pairs_locked);
    let _ = writeln!(
        out,
        "stat diff_pairs_independent {}",
        s.diff_pairs_independent
    );
    let r = &snap.recovery;
    let _ = writeln!(
        out,
        "recovery {} {} {} {}",
        r.reroutes,
        r.passes,
        u8::from(r.budget_exhausted),
        u8::from(r.deadline_fired)
    );

    let _ = writeln!(out, "branch_lens {}", snap.branch_lens.len());
    for v in &snap.branch_lens {
        let _ = writeln!(out, "b {}", f64_hex(*v));
    }
    let _ = writeln!(out, "selection_log {}", snap.stats.selection_log.len());
    for (net, edge) in &snap.stats.selection_log {
        let _ = writeln!(out, "s {} {}", net.index(), edge);
    }
    let _ = writeln!(out, "feeds {}", snap.feeds.len());
    for per_net in &snap.feeds {
        let _ = write!(out, "f {}", per_net.len());
        for (row, x) in per_net {
            let _ = write!(out, " {row}:{x}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "alive {}", snap.alive.len());
    for mask in &snap.alive {
        let bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let _ = writeln!(out, "a {bits}");
    }
    let _ = writeln!(out, "end checkpoint");
    out
}

/// Line cursor over the checkpoint text, tracking 1-based positions for
/// error reporting.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().enumerate(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        match self.lines.next() {
            Some((i, l)) => {
                self.pos = i + 1;
                Ok(l)
            }
            None => Err(ParseError::new(0, "unexpected end of checkpoint")),
        }
    }

    /// Next line, which must start with `keyword `; returns the rest.
    fn field(&mut self, keyword: &str) -> Result<&'a str, ParseError> {
        let line = self.next()?;
        match line.strip_prefix(keyword).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok(rest),
            None => Err(ParseError::new(
                self.pos,
                format!("expected `{keyword} ...`, got {line:?}"),
            )),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    /// Collects the lines of a `begin name` .. `end name` block.
    fn block(&mut self, name: &str) -> Result<String, ParseError> {
        let open = self.next()?;
        if open != format!("begin {name}") {
            return Err(self.err(format!("expected `begin {name}`, got {open:?}")));
        }
        let close = format!("end {name}");
        let mut body = String::new();
        loop {
            let line = self.next()?;
            if line == close {
                return Ok(body);
            }
            body.push_str(line);
            body.push('\n');
        }
    }

    fn f64_hex(&self, raw: &str) -> Result<f64, ParseError> {
        u64::from_str_radix(raw, 16)
            .map(f64::from_bits)
            .map_err(|_| self.err(format!("bad f64 bits {raw:?}")))
    }

    fn usize_of(&self, raw: &str) -> Result<usize, ParseError> {
        raw.parse()
            .map_err(|_| self.err(format!("bad integer {raw:?}")))
    }

    fn u64_of(&self, raw: &str) -> Result<u64, ParseError> {
        raw.parse()
            .map_err(|_| self.err(format!("bad integer {raw:?}")))
    }

    fn bool_of(&self, raw: &str) -> Result<bool, ParseError> {
        match raw {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(self.err(format!("bad flag {raw:?} (want 0 or 1)"))),
        }
    }

    fn usize_field(&mut self, keyword: &str) -> Result<usize, ParseError> {
        let raw = self.field(keyword)?;
        self.usize_of(raw)
    }

    fn u64_field(&mut self, keyword: &str) -> Result<u64, ParseError> {
        let raw = self.field(keyword)?;
        self.u64_of(raw)
    }

    fn bool_field(&mut self, keyword: &str) -> Result<bool, ParseError> {
        let raw = self.field(keyword)?;
        self.bool_of(raw)
    }

    fn f64_field(&mut self, keyword: &str) -> Result<f64, ParseError> {
        let raw = self.field(keyword)?;
        self.f64_hex(raw)
    }

    fn opt_u64_field(&mut self, keyword: &str) -> Result<Option<u64>, ParseError> {
        let raw = self.field(keyword)?;
        if raw == "none" {
            Ok(None)
        } else {
            self.u64_of(raw).map(Some)
        }
    }
}

/// Parses the checkpoint text format back into an [`EngineSnapshot`].
///
/// # Errors
///
/// A structured [`ParseError`] for version skew, truncation, or any
/// malformed line — by design this function never panics on arbitrary
/// input.
// Config fields are parsed sequentially in the fixed emission order so
// errors point at the offending line; a struct literal can't do that.
#[allow(clippy::field_reassign_with_default)]
pub fn parse_checkpoint(text: &str) -> Result<EngineSnapshot, ParseError> {
    let mut cur = Cursor::new(text);
    let header = cur.next()?;
    match header.strip_prefix("bgr-checkpoint v") {
        Some(v) if v == SNAPSHOT_VERSION.to_string() => {}
        Some(v) => {
            return Err(cur.err(format!(
                "checkpoint version {v:?} unsupported (this build reads v{SNAPSHOT_VERSION})"
            )))
        }
        None => return Err(cur.err(format!("not a bgr checkpoint (header {header:?})"))),
    }

    let netlist_text = cur.block("netlist")?;
    let circuit =
        parse_netlist(&netlist_text).map_err(|e| cur.err(format!("embedded netlist: {e}")))?;
    let placement_text = cur.block("placement")?;
    let placement = parse_placement(&circuit, &placement_text)
        .map_err(|e| cur.err(format!("embedded placement: {e}")))?;
    let constraints_text = cur.block("constraints")?;
    let constraints = parse_constraints(&circuit, &constraints_text)
        .map_err(|e| cur.err(format!("embedded constraints: {e}")))?;

    // Config fields, in the fixed emission order.
    let mut config = RouterConfig::default();
    config.use_constraints = cur.bool_field("config use_constraints")?;
    config.delay_model = match cur.field("config delay_model")? {
        "capacitance" => DelayModel::Capacitance,
        "elmore" => DelayModel::Elmore,
        other => return Err(cur.err(format!("unknown delay model {other:?}"))),
    };
    {
        let raw = cur.field("config wire")?;
        let mut it = raw.split(' ');
        let cap = it.next().ok_or_else(|| cur.err("missing wire cap"))?;
        let res = it.next().ok_or_else(|| cur.err("missing wire res"))?;
        config.wire = WireParams {
            cap_ff_per_um: cur.f64_hex(cap)?,
            res_ohm_per_um: cur.f64_hex(res)?,
        };
    }
    config.branch_length_um = cur.f64_field("config branch_length_um")?;
    config.recover_passes = cur.usize_field("config recover_passes")?;
    config.delay_passes = cur.usize_field("config delay_passes")?;
    config.area_passes = cur.usize_field("config area_passes")?;
    config.criteria_order = match cur.field("config criteria_order")? {
        "delay_first" => CriteriaOrder::DelayFirst,
        "area_first" => CriteriaOrder::AreaFirst,
        "density_only" => CriteriaOrder::DensityOnly,
        other => return Err(cur.err(format!("unknown criteria order {other:?}"))),
    };
    config.pair_differential = cur.bool_field("config pair_differential")?;
    config.slack_ordering = cur.bool_field("config slack_ordering")?;
    config.selection = match cur.field("config selection")? {
        "scoreboard" => SelectionStrategy::Scoreboard,
        "full_rescan" => SelectionStrategy::FullRescan,
        other => return Err(cur.err(format!("unknown selection strategy {other:?}"))),
    };
    config.threads = cur.usize_field("config threads")?;
    config.shards = cur.usize_field("config shards")?;
    config.on_violation = match cur.field("config on_violation")? {
        "fail" => OnViolation::Fail,
        "best_effort" => OnViolation::BestEffort,
        other => return Err(cur.err(format!("unknown violation policy {other:?}"))),
    };
    config.verify = {
        let raw = cur.field("config verify")?;
        let level = VerifyLevel::parse(raw);
        // VerifyLevel::parse maps garbage to Off; reject it here instead.
        if level == VerifyLevel::Off && raw != "off" {
            return Err(cur.err(format!("unknown verify level {raw:?}")));
        }
        level
    };
    config.budgets = Budgets {
        deletion_steps: cur.opt_u64_field("config deletion_steps")?,
        phase_reroutes: cur.opt_u64_field("config phase_reroutes")?,
    };
    config.deadline = match cur.field("config deadline_ns")? {
        "none" => None,
        raw => {
            let ns: u128 = raw
                .parse()
                .map_err(|_| cur.err(format!("bad deadline {raw:?}")))?;
            let ns64 = u64::try_from(ns).map_err(|_| cur.err("deadline out of range"))?;
            Some(std::time::Duration::from_nanos(ns64))
        }
    };

    let stage = {
        let raw = cur.field("stage")?;
        match raw.split_once(' ') {
            Some(("initial_routing", done)) => SessionStage::InitialRouting {
                done: cur.u64_of(done)?,
            },
            None => match raw {
                "recover_violate" => SessionStage::RecoverViolate,
                "improve_delay" => SessionStage::ImproveDelay,
                "improve_area" => SessionStage::ImproveArea,
                "finished" => SessionStage::Finished,
                other => return Err(cur.err(format!("unknown stage {other:?}"))),
            },
            Some((other, _)) => return Err(cur.err(format!("unknown stage {other:?}"))),
        }
    };
    let events_emitted = cur.u64_field("events_emitted")?;

    let mut stats = SnapshotStats {
        deletions: cur.usize_field("stat deletions")?,
        reroutes: cur.usize_field("stat reroutes")?,
        ..SnapshotStats::default()
    };
    stats.rekey_causes = {
        let raw = cur.field("stat rekey_causes")?;
        let mut counts = [0usize; 4];
        let mut it = raw.split(' ');
        for slot in &mut counts {
            let tok = it
                .next()
                .ok_or_else(|| cur.err("rekey_causes wants 4 counts"))?;
            *slot = cur.usize_of(tok)?;
        }
        RekeyCauses::from_counts(counts)
    };
    stats.audits_passed = cur.u64_field("stat audits_passed")?;
    stats.audit_checks = cur.u64_field("stat audit_checks")?;
    stats.feed_cells_inserted = cur.usize_field("stat feed_cells_inserted")?;
    stats.widened_pitches = {
        let raw = cur.field("stat widened_pitches")?;
        raw.parse()
            .map_err(|_| cur.err(format!("bad integer {raw:?}")))?
    };
    stats.diff_pairs_locked = cur.usize_field("stat diff_pairs_locked")?;
    stats.diff_pairs_independent = cur.usize_field("stat diff_pairs_independent")?;

    let recovery = {
        let raw = cur.field("recovery")?;
        let mut it = raw.split(' ');
        let mut toks = Vec::with_capacity(4);
        for _ in 0..4 {
            toks.push(
                it.next()
                    .ok_or_else(|| cur.err("recovery wants 4 fields"))?,
            );
        }
        PhaseOutcome {
            reroutes: cur.usize_of(toks[0])?,
            passes: cur.usize_of(toks[1])?,
            budget_exhausted: cur.bool_of(toks[2])?,
            deadline_fired: cur.bool_of(toks[3])?,
        }
    };

    let n_branch = cur.usize_field("branch_lens")?;
    let mut branch_lens = Vec::with_capacity(n_branch.min(1 << 20));
    for _ in 0..n_branch {
        branch_lens.push(cur.f64_field("b")?);
    }
    let n_sel = cur.usize_field("selection_log")?;
    let mut selection_log = Vec::with_capacity(n_sel.min(1 << 20));
    for _ in 0..n_sel {
        let raw = cur.field("s")?;
        let (net, edge) = raw
            .split_once(' ')
            .ok_or_else(|| cur.err("selection entry wants `net edge`"))?;
        let net = cur.usize_of(net)?;
        let edge: u32 = edge
            .parse()
            .map_err(|_| cur.err(format!("bad edge {edge:?}")))?;
        selection_log.push((NetId::new(net), edge));
    }
    stats.selection_log = selection_log;
    let n_feeds = cur.usize_field("feeds")?;
    let mut feeds = Vec::with_capacity(n_feeds.min(1 << 20));
    for _ in 0..n_feeds {
        let raw = cur.field("f")?;
        let mut it = raw.split(' ');
        let count = cur.usize_of(it.next().unwrap_or(""))?;
        let mut per_net = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let tok = it.next().ok_or_else(|| cur.err("short feed list"))?;
            let (row, x) = tok
                .split_once(':')
                .ok_or_else(|| cur.err(format!("bad feed {tok:?} (want row:x)")))?;
            let row = cur.usize_of(row)?;
            let x: i32 = x
                .parse()
                .map_err(|_| cur.err(format!("bad feed x {x:?}")))?;
            per_net.push((row, x));
        }
        if it.next().is_some() {
            return Err(cur.err("trailing tokens after feed list"));
        }
        feeds.push(per_net);
    }
    let n_alive = cur.usize_field("alive")?;
    let mut alive = Vec::with_capacity(n_alive.min(1 << 20));
    for _ in 0..n_alive {
        let raw = cur.field("a")?;
        let mut mask = Vec::with_capacity(raw.len());
        for ch in raw.chars() {
            match ch {
                '0' => mask.push(false),
                '1' => mask.push(true),
                _ => return Err(cur.err(format!("bad mask bit {ch:?}"))),
            }
        }
        alive.push(mask);
    }
    let tail = cur.next()?;
    if tail != "end checkpoint" {
        return Err(cur.err(format!("expected `end checkpoint`, got {tail:?}")));
    }

    Ok(EngineSnapshot {
        version: SNAPSHOT_VERSION,
        config,
        circuit,
        placement,
        constraints,
        feeds,
        branch_lens,
        alive,
        stage,
        stats,
        recovery,
        events_emitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::probe::CollectingProbe;
    use bgr_core::session::RouteSession;
    use bgr_gen::circuits::golden_instance;

    fn sample_snapshot() -> EngineSnapshot {
        let ds = golden_instance();
        let (circuit, placement, cons) = (ds.design.circuit, ds.placement, ds.design.constraints);
        let mut session = RouteSession::start(
            RouterConfig {
                threads: 1,
                shards: 2,
                ..RouterConfig::default()
            },
            circuit,
            placement,
            cons,
            CollectingProbe::new(),
        )
        .unwrap();
        // Park mid-deletion-loop so the snapshot carries real state.
        for _ in 0..3 {
            session.step(Some(5)).unwrap();
        }
        session.snapshot()
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let text = write_checkpoint(&snap);
        let back = parse_checkpoint(&text).unwrap();
        assert_eq!(back.version, snap.version);
        assert_eq!(back.config, snap.config);
        assert_eq!(back.stage, snap.stage);
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.recovery, snap.recovery);
        assert_eq!(back.events_emitted, snap.events_emitted);
        assert_eq!(back.feeds, snap.feeds);
        assert_eq!(back.alive, snap.alive);
        // f64 bit-exactness, not just approximate equality.
        let a: Vec<u64> = back.branch_lens.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = snap.branch_lens.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        // And the re-serialization is byte-identical.
        assert_eq!(write_checkpoint(&back), text);
    }

    #[test]
    fn version_skew_is_a_parse_error() {
        let text = write_checkpoint(&sample_snapshot());
        let skewed = text.replacen("bgr-checkpoint v1", "bgr-checkpoint v2", 1);
        let err = parse_checkpoint(&skewed).unwrap_err();
        assert!(err.message.contains("version"), "{err}");
        let err = parse_checkpoint("hello world\n").unwrap_err();
        assert!(err.message.contains("not a bgr checkpoint"), "{err}");
    }

    #[test]
    fn truncation_is_a_parse_error_at_every_cut() {
        let text = write_checkpoint(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        for frac in [1, 3, 10, 30, 60, 95] {
            let cut = lines.len() * frac / 100;
            let truncated: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            assert!(
                parse_checkpoint(&truncated).is_err(),
                "cut at {cut}/{} lines parsed",
                lines.len()
            );
        }
    }
}
