//! Append-only crash-recovery journal (`.bgrj`).
//!
//! The coordinator's durability layer (DESIGN.md §15) logs every
//! applied slice result as one journal record; a killed coordinator
//! restarts, replays the journal against a freshly submitted queue, and
//! lands on the exact pre-crash state. The codec follows the `.bgrc`
//! conventions: line-oriented text headers, byte-length-prefixed
//! payload blocks, per-record FNV-1a 64 checksums, and structured
//! [`ParseError`]s for every damage class.
//!
//! ```text
//! bgr-journal v1
//! record <kind> <payload-bytes> <fnv1a-hex>
//! <payload bytes>
//! record <kind> <payload-bytes> <fnv1a-hex>
//! <payload bytes>
//! ...
//! ```
//!
//! Crash tolerance is asymmetric by design: a **torn tail** (the
//! process died mid-append) is expected and tolerated — replay stops at
//! the last complete record and reports [`JournalTail::Truncated`] —
//! while damage *before* the tail (a flipped bit, an edited record) is
//! a structured error, never a silent partial replay.
//!
//! File creation uses the workspace's atomic-rename discipline (header
//! written to a sibling temp file, then renamed), so a concurrently
//! starting reader never observes a header-less journal.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::ParseError;

/// First line of every journal file.
pub const JOURNAL_MAGIC: &str = "bgr-journal v1";

/// FNV-1a 64-bit — the same integrity hash the frame codec and the
/// design-reference checkpoints use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One replayable record: an opaque payload under a short kind tag
/// (the coordinator journals applied slice results as `result`
/// records whose payload is the wire `RESULT` message text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Record kind tag (no whitespace).
    pub kind: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// How the journal ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalTail {
    /// Every byte belonged to a complete record.
    Clean,
    /// The final record was torn mid-append (process death). Replay is
    /// valid up to the reported byte offset.
    Truncated {
        /// Byte offset of the first torn byte.
        at: usize,
    },
}

/// Serializes one record (header line + payload + newline).
pub fn encode_journal_record(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(
        format!("record {kind} {} {:016x}\n", payload.len(), fnv1a(payload)).as_bytes(),
    );
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Parses a journal byte-for-byte.
///
/// Returns the complete records plus a [`JournalTail`] describing
/// whether the file ended cleanly or mid-append.
///
/// # Errors
///
/// [`ParseError`] on a missing/foreign header, a malformed record
/// header line that is *not* the torn tail, a record kind containing
/// whitespace, or a payload checksum mismatch — the damage classes a
/// crash cannot produce.
pub fn read_journal(bytes: &[u8]) -> Result<(Vec<JournalEntry>, JournalTail), ParseError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseError::new(1, "missing journal header line"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| ParseError::new(1, "journal header is not utf-8"))?;
    if header != JOURNAL_MAGIC {
        return Err(ParseError::new(
            1,
            format!("expected header {JOURNAL_MAGIC:?}, found {header:?}"),
        ));
    }
    let mut entries = Vec::new();
    let mut pos = header_end + 1;
    let mut line_no = 2usize;
    while pos < bytes.len() {
        let record_start = pos;
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // No newline: a header line torn mid-write.
            return Ok((entries, JournalTail::Truncated { at: record_start }));
        };
        let line = match std::str::from_utf8(&bytes[pos..pos + nl]) {
            Ok(l) => l,
            Err(_) => return Err(ParseError::new(line_no, "record header line is not utf-8")),
        };
        let mut fields = line.split(' ');
        let (kind, len, sum) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some("record"), Some(kind), Some(len), Some(sum), None) => (kind, len, sum),
            _ => {
                return Err(ParseError::new(
                    line_no,
                    format!("malformed record header {line:?}"),
                ))
            }
        };
        let len: usize = len.parse().map_err(|_| {
            ParseError::new(line_no, format!("record length is not a usize: {len:?}"))
        })?;
        let carried = u64::from_str_radix(sum, 16).map_err(|_| {
            ParseError::new(line_no, format!("record checksum is not hex: {sum:?}"))
        })?;
        let payload_start = pos + nl + 1;
        // `saturating_add` keeps a lying length from overflowing; the
        // bounds check below rejects it as a torn tail either way.
        let payload_end = payload_start.saturating_add(len);
        if payload_end >= bytes.len() {
            // Payload (or its trailing newline) torn mid-write. A
            // *lying* length is indistinguishable from a torn payload
            // without the checksum, and a torn payload is the expected
            // crash artifact — tolerate, stop here.
            return Ok((entries, JournalTail::Truncated { at: record_start }));
        }
        let payload = &bytes[payload_start..payload_end];
        if bytes[payload_end] != b'\n' {
            return Err(ParseError::new(
                line_no,
                "record payload missing terminator",
            ));
        }
        let computed = fnv1a(payload);
        if computed != carried {
            return Err(ParseError::new(
                line_no,
                format!(
                    "record checksum mismatch: computed {computed:016x}, carried {carried:016x}"
                ),
            ));
        }
        entries.push(JournalEntry {
            kind: kind.to_string(),
            payload: payload.to_vec(),
        });
        line_no += 1 + payload.iter().filter(|&&b| b == b'\n').count() + 1;
        pos = payload_end + 1;
    }
    Ok((entries, JournalTail::Clean))
}

/// Append-only journal writer.
///
/// [`JournalWriter::create`] writes the header via a sibling temp file
/// and an atomic rename (the `bgr-metrics` exporter discipline), then
/// reopens for append; [`JournalWriter::open_append`] attaches to an
/// existing journal after its records have been replayed. Each
/// [`JournalWriter::append`] issues a single `write_all` of the whole
/// encoded record, so a process crash can tear at most the final
/// record — exactly the damage class [`read_journal`] tolerates.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous one)
    /// and returns a writer positioned after the header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let tmp = path.with_extension("bgrj.tmp");
        std::fs::write(&tmp, format!("{JOURNAL_MAGIC}\n"))?;
        std::fs::rename(&tmp, &path)?;
        Self::open_append(path)
    }

    /// Opens an existing journal for appending. The caller is expected
    /// to have replayed it first ([`read_journal`]); this constructor
    /// only verifies the header so appends never extend a foreign file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` when `path` does not start
    /// with the journal header.
    pub fn open_append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let head = std::fs::read(&path)?;
        let ok = head
            .get(..JOURNAL_MAGIC.len())
            .is_some_and(|h| h == JOURNAL_MAGIC.as_bytes());
        if !ok {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not a bgr journal", path.display()),
            ));
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self { file, path })
    }

    /// Appends one record and flushes it to the OS, so the record
    /// survives a process kill (full power-loss durability would add an
    /// fsync per record; the coordinator's threat model is process
    /// death, where the kernel's page cache is enough).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, kind: &str, payload: &[u8]) -> std::io::Result<()> {
        debug_assert!(
            !kind.contains(char::is_whitespace) && !kind.is_empty(),
            "record kinds are single tokens"
        );
        self.file.write_all(&encode_journal_record(kind, payload))?;
        self.file.flush()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(&encode_journal_record("result", b"job 0\nslice 1\n"));
        bytes.extend_from_slice(&encode_journal_record("result", b"job 2\nslice 0\n"));
        bytes
    }

    #[test]
    fn round_trips_and_reports_a_clean_tail() {
        let (entries, tail) = read_journal(&sample()).unwrap();
        assert_eq!(tail, JournalTail::Clean);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "result");
        assert_eq!(entries[0].payload, b"job 0\nslice 1\n");
        assert_eq!(entries[1].payload, b"job 2\nslice 0\n");
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_byte() {
        let bytes = sample();
        let full = read_journal(&bytes).unwrap().0;
        let first_record_end = format!("{JOURNAL_MAGIC}\n").len()
            + encode_journal_record("result", b"job 0\nslice 1\n").len();
        // Any truncation strictly inside the second record must replay
        // exactly the first and flag the tail.
        for cut in first_record_end + 1..bytes.len() {
            let (entries, tail) = read_journal(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: unexpected error {e}"));
            assert_eq!(entries.len(), 1, "cut at {cut}");
            assert_eq!(entries[0], full[0], "cut at {cut}");
            assert!(
                matches!(tail, JournalTail::Truncated { .. }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn mid_file_corruption_is_a_structured_error() {
        let mut bytes = sample();
        // Flip a payload byte of the *first* record: checksum mismatch,
        // not a tolerated tail.
        let off = format!("{JOURNAL_MAGIC}\n").len() + "record result 14 0000000000000000\n".len();
        bytes[off] ^= 0x40;
        let err = read_journal(&bytes).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn foreign_headers_and_garbage_are_rejected() {
        assert!(read_journal(b"").is_err());
        assert!(read_journal(b"bgr-journal v9\n").is_err());
        assert!(read_journal(b"bgr-checkpoint v1\n").is_err());
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(b"not a record\n");
        assert!(read_journal(&bytes).is_err());
        // Non-hex checksum field.
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(b"record result 1 zz\nx\n");
        assert!(read_journal(&bytes).is_err());
    }

    #[test]
    fn writer_creates_appends_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("bgr-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drain.bgrj");
        {
            let mut w = JournalWriter::create(&path).unwrap();
            w.append("result", b"first\n").unwrap();
        }
        {
            let bytes = std::fs::read(&path).unwrap();
            let (entries, tail) = read_journal(&bytes).unwrap();
            assert_eq!(tail, JournalTail::Clean);
            assert_eq!(entries.len(), 1);
            let mut w = JournalWriter::open_append(&path).unwrap();
            w.append("result", b"second\n").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let (entries, _) = read_journal(&bytes).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].payload, b"second\n");
        assert!(JournalWriter::open_append(dir.join("missing.bgrj")).is_err());
        std::fs::write(dir.join("foreign.txt"), "hello\n").unwrap();
        assert!(JournalWriter::open_append(dir.join("foreign.txt")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
