//! Append-only crash-recovery journal (`.bgrj`).
//!
//! The coordinator's durability layer (DESIGN.md §15) logs every
//! applied slice result as one journal record; a killed coordinator
//! restarts, replays the journal against a freshly submitted queue, and
//! lands on the exact pre-crash state. The codec follows the `.bgrc`
//! conventions: line-oriented text headers, byte-length-prefixed
//! payload blocks, per-record FNV-1a 64 checksums, and structured
//! [`ParseError`]s for every damage class.
//!
//! ```text
//! bgr-journal v1
//! record <kind> <payload-bytes> <fnv1a-hex>
//! <payload bytes>
//! record <kind> <payload-bytes> <fnv1a-hex>
//! <payload bytes>
//! ...
//! ```
//!
//! Crash tolerance is asymmetric by design: a **torn tail** (the
//! process died mid-append) is expected and tolerated — replay stops at
//! the last complete record and reports [`JournalTail::Truncated`] —
//! while damage *before* the tail (a flipped bit, an edited record) is
//! a structured error, never a silent partial replay.
//!
//! File creation uses the workspace's atomic-rename discipline (header
//! written to a sibling temp file, then renamed), so a concurrently
//! starting reader never observes a header-less journal.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::ParseError;

/// Structured failure from the journal's write path.
///
/// Every way the storage medium can refuse bytes — out of space, a
/// short write, a failed flush, pre-existing damage — maps to one
/// variant, so callers can degrade deliberately (the coordinator drops
/// to journal-less operation and says so) instead of panicking or
/// pattern-matching on error strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The medium refused the write outright (ENOSPC, EIO, a revoked
    /// handle). `kind` preserves the OS classification.
    Io {
        /// The underlying [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The medium accepted only a prefix of the record. The journal
    /// file now ends in a torn tail — exactly the damage class
    /// [`read_journal`] tolerates, so everything before this record
    /// remains replayable.
    ShortWrite {
        /// Bytes the medium accepted.
        wrote: usize,
        /// Bytes the encoded record needed.
        want: usize,
    },
    /// Flushing buffered bytes to the medium failed; the record may or
    /// may not have reached storage.
    Sync {
        /// Human-readable detail.
        message: String,
    },
    /// `open_append` found a journal whose tail is torn mid-record.
    /// Appending after torn bytes would poison replay, so attach via
    /// [`JournalWriter::recover`] (which truncates the tail) instead.
    TornTail {
        /// Byte offset of the first torn byte.
        at: usize,
    },
    /// The file is not a bgr journal, or carries damage *before* the
    /// tail — corruption a crash cannot produce, never auto-repaired.
    Damaged {
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { kind, message } => write!(f, "journal write failed ({kind:?}): {message}"),
            Self::ShortWrite { wrote, want } => {
                write!(f, "journal short write: {wrote} of {want} bytes landed")
            }
            Self::Sync { message } => write!(f, "journal flush failed: {message}"),
            Self::TornTail { at } => {
                write!(
                    f,
                    "journal tail is torn at byte {at}; recover before appending"
                )
            }
            Self::Damaged { message } => write!(f, "journal is damaged: {message}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// The fallible-writer seam: where encoded journal records meet the
/// storage medium.
///
/// Production uses [`FileSink`]; tests and the chaos harness
/// (`bgr_net::chaos`) substitute fault-injecting sinks that run out of
/// space after N bytes or fail every K-th append, so every degradation
/// path is exercised without needing a genuinely full disk.
pub trait JournalSink: Send + std::fmt::Debug {
    /// Appends one fully encoded record. Implementations report partial
    /// acceptance as [`JournalError::ShortWrite`] so callers know the
    /// medium now ends in a torn (replayable) tail.
    fn append_record(&mut self, record: &[u8]) -> Result<(), JournalError>;
}

/// The production sink: an append-mode [`File`], flushed per record.
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Wraps an already append-positioned file.
    pub fn new(file: File) -> Self {
        Self { file }
    }
}

impl JournalSink for FileSink {
    fn append_record(&mut self, record: &[u8]) -> Result<(), JournalError> {
        let mut wrote = 0usize;
        while wrote < record.len() {
            match self.file.write(&record[wrote..]) {
                Ok(0) => {
                    return Err(JournalError::ShortWrite {
                        wrote,
                        want: record.len(),
                    })
                }
                Ok(n) => wrote += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if wrote > 0 => {
                    // Part of the record landed before the error: the
                    // file ends in a torn tail, which is the honest
                    // thing to report.
                    let _ = e;
                    return Err(JournalError::ShortWrite {
                        wrote,
                        want: record.len(),
                    });
                }
                Err(e) => {
                    return Err(JournalError::Io {
                        kind: e.kind(),
                        message: e.to_string(),
                    })
                }
            }
        }
        self.file.flush().map_err(|e| JournalError::Sync {
            message: e.to_string(),
        })
    }
}

/// First line of every journal file.
pub const JOURNAL_MAGIC: &str = "bgr-journal v1";

/// FNV-1a 64-bit — the same integrity hash the frame codec and the
/// design-reference checkpoints use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One replayable record: an opaque payload under a short kind tag
/// (the coordinator journals applied slice results as `result`
/// records whose payload is the wire `RESULT` message text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Record kind tag (no whitespace).
    pub kind: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// How the journal ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalTail {
    /// Every byte belonged to a complete record.
    Clean,
    /// The final record was torn mid-append (process death). Replay is
    /// valid up to the reported byte offset.
    Truncated {
        /// Byte offset of the first torn byte.
        at: usize,
    },
}

/// Serializes one record (header line + payload + newline).
pub fn encode_journal_record(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(
        format!("record {kind} {} {:016x}\n", payload.len(), fnv1a(payload)).as_bytes(),
    );
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Parses a journal byte-for-byte.
///
/// Returns the complete records plus a [`JournalTail`] describing
/// whether the file ended cleanly or mid-append.
///
/// # Errors
///
/// [`ParseError`] on a missing/foreign header, a malformed record
/// header line that is *not* the torn tail, a record kind containing
/// whitespace, or a payload checksum mismatch — the damage classes a
/// crash cannot produce.
pub fn read_journal(bytes: &[u8]) -> Result<(Vec<JournalEntry>, JournalTail), ParseError> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseError::new(1, "missing journal header line"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| ParseError::new(1, "journal header is not utf-8"))?;
    if header != JOURNAL_MAGIC {
        return Err(ParseError::new(
            1,
            format!("expected header {JOURNAL_MAGIC:?}, found {header:?}"),
        ));
    }
    let mut entries = Vec::new();
    let mut pos = header_end + 1;
    let mut line_no = 2usize;
    while pos < bytes.len() {
        let record_start = pos;
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // No newline: a header line torn mid-write.
            return Ok((entries, JournalTail::Truncated { at: record_start }));
        };
        let line = match std::str::from_utf8(&bytes[pos..pos + nl]) {
            Ok(l) => l,
            Err(_) => return Err(ParseError::new(line_no, "record header line is not utf-8")),
        };
        let mut fields = line.split(' ');
        let (kind, len, sum) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some("record"), Some(kind), Some(len), Some(sum), None) => (kind, len, sum),
            _ => {
                return Err(ParseError::new(
                    line_no,
                    format!("malformed record header {line:?}"),
                ))
            }
        };
        let len: usize = len.parse().map_err(|_| {
            ParseError::new(line_no, format!("record length is not a usize: {len:?}"))
        })?;
        let carried = u64::from_str_radix(sum, 16).map_err(|_| {
            ParseError::new(line_no, format!("record checksum is not hex: {sum:?}"))
        })?;
        let payload_start = pos + nl + 1;
        // `saturating_add` keeps a lying length from overflowing; the
        // bounds check below rejects it as a torn tail either way.
        let payload_end = payload_start.saturating_add(len);
        if payload_end >= bytes.len() {
            // Payload (or its trailing newline) torn mid-write. A
            // *lying* length is indistinguishable from a torn payload
            // without the checksum, and a torn payload is the expected
            // crash artifact — tolerate, stop here.
            return Ok((entries, JournalTail::Truncated { at: record_start }));
        }
        let payload = &bytes[payload_start..payload_end];
        if bytes[payload_end] != b'\n' {
            return Err(ParseError::new(
                line_no,
                "record payload missing terminator",
            ));
        }
        let computed = fnv1a(payload);
        if computed != carried {
            return Err(ParseError::new(
                line_no,
                format!(
                    "record checksum mismatch: computed {computed:016x}, carried {carried:016x}"
                ),
            ));
        }
        entries.push(JournalEntry {
            kind: kind.to_string(),
            payload: payload.to_vec(),
        });
        line_no += 1 + payload.iter().filter(|&&b| b == b'\n').count() + 1;
        pos = payload_end + 1;
    }
    Ok((entries, JournalTail::Clean))
}

/// Append-only journal writer over a fallible [`JournalSink`].
///
/// [`JournalWriter::create`] writes the header via a sibling temp file
/// and an atomic rename (the `bgr-metrics` exporter discipline), then
/// reopens for append; [`JournalWriter::open_append`] attaches to an
/// existing journal whose tail is clean; [`JournalWriter::recover`]
/// replays an existing journal, truncates a torn tail, and attaches.
/// Each [`JournalWriter::append`] hands the sink the whole encoded
/// record in one call, so a process crash can tear at most the final
/// record — exactly the damage class [`read_journal`] tolerates.
///
/// Every failure is a structured [`JournalError`]; nothing in this
/// module panics on a full or broken disk.
#[derive(Debug)]
pub struct JournalWriter {
    sink: Box<dyn JournalSink>,
    path: Option<PathBuf>,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous one)
    /// and returns a writer positioned after the header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let tmp = path.with_extension("bgrj.tmp");
        std::fs::write(&tmp, format!("{JOURNAL_MAGIC}\n")).map_err(io_err)?;
        std::fs::rename(&tmp, &path).map_err(io_err)?;
        Self::open_append(path)
    }

    /// Opens an existing journal for appending after verifying it is
    /// whole: correct header, no mid-file damage, clean tail. The
    /// caller is expected to have replayed it first ([`read_journal`]).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure,
    /// [`JournalError::Damaged`] when `path` is not a bgr journal or
    /// carries mid-file corruption, and [`JournalError::TornTail`] when
    /// the file ends mid-record — appending after torn bytes would make
    /// every later record unreadable, so use [`Self::recover`] instead.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path).map_err(io_err)?;
        let (_, tail) = read_journal(&bytes).map_err(|e| JournalError::Damaged {
            message: format!("{}: {e}", path.display()),
        })?;
        if let JournalTail::Truncated { at } = tail {
            return Err(JournalError::TornTail { at });
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Self {
            sink: Box::new(FileSink::new(file)),
            path: Some(path),
        })
    }

    /// Crash-recovery attach: replays `path`, truncates a torn tail
    /// (the expected kill-mid-append artifact) so appends land on a
    /// record boundary, and opens for append. Returns the replayable
    /// entries, how the file had ended, and the writer.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure,
    /// [`JournalError::Damaged`] on pre-tail corruption — damage a
    /// crash cannot produce is never silently repaired.
    pub fn recover(
        path: impl AsRef<Path>,
    ) -> Result<(Vec<JournalEntry>, JournalTail, Self), JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path).map_err(io_err)?;
        let (entries, tail) = read_journal(&bytes).map_err(|e| JournalError::Damaged {
            message: format!("{}: {e}", path.display()),
        })?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        if let JournalTail::Truncated { at } = tail {
            file.set_len(at as u64).map_err(io_err)?;
        }
        Ok((
            entries,
            tail,
            Self {
                sink: Box::new(FileSink::new(file)),
                path: Some(path),
            },
        ))
    }

    /// Builds a writer over an arbitrary sink (no backing path). This
    /// is the injection point for disk-fault testing: the chaos harness
    /// passes sinks that run out of space or tear records on demand.
    pub fn with_sink(sink: Box<dyn JournalSink>) -> Self {
        Self { sink, path: None }
    }

    /// Appends one record and flushes it to the OS, so the record
    /// survives a process kill (full power-loss durability would add an
    /// fsync per record; the coordinator's threat model is process
    /// death, where the kernel's page cache is enough).
    ///
    /// # Errors
    ///
    /// A structured [`JournalError`] from the sink. After a
    /// [`JournalError::ShortWrite`] the medium ends in a torn tail that
    /// [`read_journal`] replays up to; callers should stop appending
    /// and degrade (the coordinator drops its journal and counts it).
    pub fn append(&mut self, kind: &str, payload: &[u8]) -> Result<(), JournalError> {
        debug_assert!(
            !kind.contains(char::is_whitespace) && !kind.is_empty(),
            "record kinds are single tokens"
        );
        self.sink
            .append_record(&encode_journal_record(kind, payload))
    }

    /// The journal's path, when backed by a file.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io {
        kind: e.kind(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(&encode_journal_record("result", b"job 0\nslice 1\n"));
        bytes.extend_from_slice(&encode_journal_record("result", b"job 2\nslice 0\n"));
        bytes
    }

    #[test]
    fn round_trips_and_reports_a_clean_tail() {
        let (entries, tail) = read_journal(&sample()).unwrap();
        assert_eq!(tail, JournalTail::Clean);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "result");
        assert_eq!(entries[0].payload, b"job 0\nslice 1\n");
        assert_eq!(entries[1].payload, b"job 2\nslice 0\n");
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_byte() {
        let bytes = sample();
        let full = read_journal(&bytes).unwrap().0;
        let first_record_end = format!("{JOURNAL_MAGIC}\n").len()
            + encode_journal_record("result", b"job 0\nslice 1\n").len();
        // Any truncation strictly inside the second record must replay
        // exactly the first and flag the tail.
        for cut in first_record_end + 1..bytes.len() {
            let (entries, tail) = read_journal(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: unexpected error {e}"));
            assert_eq!(entries.len(), 1, "cut at {cut}");
            assert_eq!(entries[0], full[0], "cut at {cut}");
            assert!(
                matches!(tail, JournalTail::Truncated { .. }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn mid_file_corruption_is_a_structured_error() {
        let mut bytes = sample();
        // Flip a payload byte of the *first* record: checksum mismatch,
        // not a tolerated tail.
        let off = format!("{JOURNAL_MAGIC}\n").len() + "record result 14 0000000000000000\n".len();
        bytes[off] ^= 0x40;
        let err = read_journal(&bytes).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn foreign_headers_and_garbage_are_rejected() {
        assert!(read_journal(b"").is_err());
        assert!(read_journal(b"bgr-journal v9\n").is_err());
        assert!(read_journal(b"bgr-checkpoint v1\n").is_err());
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(b"not a record\n");
        assert!(read_journal(&bytes).is_err());
        // Non-hex checksum field.
        let mut bytes = format!("{JOURNAL_MAGIC}\n").into_bytes();
        bytes.extend_from_slice(b"record result 1 zz\nx\n");
        assert!(read_journal(&bytes).is_err());
    }

    #[test]
    fn writer_creates_appends_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("bgr-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drain.bgrj");
        {
            let mut w = JournalWriter::create(&path).unwrap();
            w.append("result", b"first\n").unwrap();
        }
        {
            let bytes = std::fs::read(&path).unwrap();
            let (entries, tail) = read_journal(&bytes).unwrap();
            assert_eq!(tail, JournalTail::Clean);
            assert_eq!(entries.len(), 1);
            let mut w = JournalWriter::open_append(&path).unwrap();
            w.append("result", b"second\n").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let (entries, _) = read_journal(&bytes).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].payload, b"second\n");
        assert!(JournalWriter::open_append(dir.join("missing.bgrj")).is_err());
        std::fs::write(dir.join("foreign.txt"), "hello\n").unwrap();
        assert!(matches!(
            JournalWriter::open_append(dir.join("foreign.txt")),
            Err(JournalError::Damaged { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Test medium: accepts up to `capacity` record bytes, lands the
    /// prefix of the append that crosses the boundary (a short write),
    /// and reports ENOSPC for everything after.
    #[derive(Debug)]
    struct CappedDisk {
        bytes: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
        capacity: usize,
    }

    impl CappedDisk {
        fn new(capacity: usize) -> (Self, std::sync::Arc<std::sync::Mutex<Vec<u8>>>) {
            let bytes = std::sync::Arc::new(std::sync::Mutex::new(
                format!("{JOURNAL_MAGIC}\n").into_bytes(),
            ));
            (
                Self {
                    bytes: bytes.clone(),
                    capacity,
                },
                bytes,
            )
        }
    }

    impl JournalSink for CappedDisk {
        fn append_record(&mut self, record: &[u8]) -> Result<(), JournalError> {
            let mut disk = self.bytes.lock().unwrap();
            let used = disk.len() - format!("{JOURNAL_MAGIC}\n").len();
            let room = self.capacity.saturating_sub(used);
            if room == 0 {
                return Err(JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    message: "no space left on device".into(),
                });
            }
            if room < record.len() {
                disk.extend_from_slice(&record[..room]);
                return Err(JournalError::ShortWrite {
                    wrote: room,
                    want: record.len(),
                });
            }
            disk.extend_from_slice(record);
            Ok(())
        }
    }

    #[test]
    fn enospc_mid_record_is_a_structured_error_with_a_replayable_prefix() {
        let first = encode_journal_record("result", b"job 0\nslice 1\n");
        let (disk, bytes) = CappedDisk::new(first.len()); // exactly one record fits
        let mut w = JournalWriter::with_sink(Box::new(disk));
        w.append("result", b"job 0\nslice 1\n").unwrap();
        let err = w.append("result", b"job 2\nslice 0\n").unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::Io {
                    kind: std::io::ErrorKind::StorageFull,
                    ..
                }
            ),
            "{err}"
        );
        // Everything that landed before the disk filled still replays.
        let (entries, tail) = read_journal(&bytes.lock().unwrap()).unwrap();
        assert_eq!(tail, JournalTail::Clean);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"job 0\nslice 1\n");
    }

    #[test]
    fn short_write_at_the_checksum_boundary_leaves_a_replayable_tail() {
        let first = encode_journal_record("result", b"job 0\nslice 1\n");
        // Capacity lands mid-way through the second record's header
        // line — inside the checksum hex field.
        let cut = first.len() + "record result 14 01234567".len();
        let (disk, bytes) = CappedDisk::new(cut);
        let mut w = JournalWriter::with_sink(Box::new(disk));
        w.append("result", b"job 0\nslice 1\n").unwrap();
        let err = w.append("result", b"job 2\nslice 0\n").unwrap_err();
        assert!(matches!(err, JournalError::ShortWrite { .. }), "{err}");
        // The torn record costs exactly itself: replay keeps the first
        // record and flags the truncated tail, exactly like a crash.
        let (entries, tail) = read_journal(&bytes.lock().unwrap()).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"job 0\nslice 1\n");
        assert!(matches!(tail, JournalTail::Truncated { .. }), "{tail:?}");
    }

    #[test]
    fn open_append_refuses_a_torn_tail_and_recover_repairs_it() {
        let dir = std::env::temp_dir().join(format!("bgr-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bgrj");
        let mut bytes = sample();
        bytes.truncate(bytes.len() - 3); // tear the second record's tail
        std::fs::write(&path, &bytes).unwrap();

        // Structured refusal, never a panic: appending after torn bytes
        // would poison every later record.
        match JournalWriter::open_append(&path) {
            Err(JournalError::TornTail { at }) => {
                assert!(at > 0 && at < bytes.len(), "tear offset {at}")
            }
            other => panic!("expected TornTail, got {other:?}"),
        }

        // Recovery replays the intact prefix, truncates the tear, and
        // appends cleanly on a record boundary.
        let (entries, tail, mut w) = JournalWriter::recover(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(matches!(tail, JournalTail::Truncated { .. }));
        w.append("result", b"job 3\nslice 0\n").unwrap();
        let healed = std::fs::read(&path).unwrap();
        let (entries, tail) = read_journal(&healed).unwrap();
        assert_eq!(tail, JournalTail::Clean);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].payload, b"job 3\nslice 0\n");

        // Pre-tail damage is not a recoverable crash artifact.
        let mut damaged = sample();
        let off = format!("{JOURNAL_MAGIC}\n").len() + "record result 14 0000000000000000\n".len();
        damaged[off] ^= 0x40;
        std::fs::write(&path, &damaged).unwrap();
        assert!(matches!(
            JournalWriter::recover(&path),
            Err(JournalError::Damaged { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
