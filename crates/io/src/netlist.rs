//! The `.bgrn` netlist format.
//!
//! Line-oriented, whitespace-separated, `#` comments:
//!
//! ```text
//! bgr-netlist v1
//! kind INV width 3 tf 2.5 td 0.45
//!   in A cap 5 offset 0 access both
//!   out Y offset 2
//!   arc A Y 60
//! end
//! kind FEED1 width 1 tf 0 td 0 feed 1
//! end
//! pad in a
//! pad out y
//! cell u1 INV
//! net n0 width 1 pad:a u1.A       # first terminal is the driver
//! net n1 width 1 u1.Y pad:y
//! pair n0 n1                      # differential pairs (optional)
//! ```
//!
//! Identifiers (kind/cell/pad/net/pin names) must not contain
//! whitespace, `.`, `:` or `#`.

use std::collections::HashMap;

use bgr_netlist::{
    AccessSide, CellId, CellKind, CellLibrary, Circuit, CircuitBuilder, NetId, PadId, TermDir,
    TermId, TermOwner,
};

use crate::error::ParseError;

fn check_name(name: &str) -> &str {
    assert!(
        !name.is_empty()
            && !name
                .chars()
                .any(|c| c.is_whitespace() || c == '.' || c == ':' || c == '#'),
        "identifier `{name}` contains characters the .bgrn format reserves"
    );
    name
}

fn access_str(a: AccessSide) -> &'static str {
    match a {
        AccessSide::Top => "top",
        AccessSide::Bottom => "bottom",
        AccessSide::Both => "both",
    }
}

/// Serializes a circuit (library + instances) to `.bgrn` text.
///
/// # Panics
///
/// Panics if any name contains characters the format reserves
/// (whitespace, `.`, `:`, `#`).
pub fn write_netlist(circuit: &Circuit) -> String {
    let mut out = String::from("bgr-netlist v1\n");
    for kind in circuit.library().kinds() {
        out.push_str(&format!(
            "kind {} width {} tf {} td {}",
            check_name(kind.name()),
            kind.width_pitches(),
            kind.fanin_delay_ps_per_ff(),
            kind.load_delay_ps_per_ff()
        ));
        if kind.is_sequential() {
            out.push_str(" sequential");
        }
        if kind.feed_slots() > 0 {
            out.push_str(&format!(" feed {}", kind.feed_slots()));
        }
        out.push('\n');
        for t in kind.terms() {
            match t.dir {
                TermDir::Input => out.push_str(&format!(
                    "  in {} cap {} offset {} access {}\n",
                    check_name(&t.name),
                    t.fanin_ff,
                    t.offset_pitches,
                    access_str(t.access)
                )),
                TermDir::Output => out.push_str(&format!(
                    "  out {} offset {} access {}\n",
                    check_name(&t.name),
                    t.offset_pitches,
                    access_str(t.access)
                )),
            }
        }
        for arc in kind.arcs() {
            out.push_str(&format!(
                "  arc {} {} {}\n",
                kind.terms()[arc.from].name,
                kind.terms()[arc.to].name,
                arc.intrinsic_ps
            ));
        }
        out.push_str("end\n");
    }
    for pad in circuit.pads() {
        let dir = match pad.dir() {
            TermDir::Input => "in",
            TermDir::Output => "out",
        };
        out.push_str(&format!("pad {dir} {}\n", check_name(pad.name())));
    }
    for cell in circuit.cells() {
        out.push_str(&format!(
            "cell {} {}\n",
            check_name(cell.name()),
            circuit.library().kind(cell.kind()).name()
        ));
    }
    let term_ref = |t: TermId| -> String {
        match circuit.term(t).owner() {
            TermOwner::Pad(p) => format!("pad:{}", circuit.pad(p).name()),
            TermOwner::Cell { cell, pin } => {
                let c = circuit.cell(cell);
                format!(
                    "{}.{}",
                    c.name(),
                    circuit.library().kind(c.kind()).terms()[pin].name
                )
            }
        }
    };
    for net in circuit.nets() {
        out.push_str(&format!(
            "net {} width {} {}",
            check_name(net.name()),
            net.width_pitches(),
            term_ref(net.driver())
        ));
        for &s in net.sinks() {
            out.push(' ');
            out.push_str(&term_ref(s));
        }
        out.push('\n');
    }
    for &(a, b) in circuit.diff_pairs() {
        out.push_str(&format!(
            "pair {} {}\n",
            circuit.net(a).name(),
            circuit.net(b).name()
        ));
    }
    out
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            iter: text.lines().enumerate(),
        }
    }

    /// Next non-empty, non-comment line as `(1-based line no, tokens)`.
    fn next_tokens(&mut self) -> Option<(usize, Vec<&'a str>)> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            return Some((i + 1, line.split_whitespace().collect()));
        }
        None
    }
}

fn parse_f64(ln: usize, s: &str) -> Result<f64, ParseError> {
    s.parse()
        .map_err(|_| ParseError::new(ln, format!("expected a number, got `{s}`")))
}

fn parse_u32(ln: usize, s: &str) -> Result<u32, ParseError> {
    s.parse()
        .map_err(|_| ParseError::new(ln, format!("expected an integer, got `{s}`")))
}

fn parse_access(ln: usize, s: &str) -> Result<AccessSide, ParseError> {
    match s {
        "top" => Ok(AccessSide::Top),
        "bottom" => Ok(AccessSide::Bottom),
        "both" => Ok(AccessSide::Both),
        _ => Err(ParseError::new(ln, format!("unknown access side `{s}`"))),
    }
}

/// Keyword-value scanner over the tail of a token list.
fn kv<'a>(tokens: &[&'a str]) -> HashMap<&'a str, &'a str> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        map.insert(tokens[i], tokens[i + 1]);
        i += 2;
    }
    map
}

/// Parses `.bgrn` text back into a validated [`Circuit`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input,
/// unknown references, or netlist-validation failures.
pub fn parse_netlist(text: &str) -> Result<Circuit, ParseError> {
    let mut lines = Lines::new(text);
    match lines.next_tokens() {
        Some((_, t)) if t == ["bgr-netlist", "v1"] => {}
        Some((ln, _)) => return Err(ParseError::new(ln, "expected header `bgr-netlist v1`")),
        None => return Err(ParseError::new(0, "empty input")),
    }
    let mut library = CellLibrary::new();
    let mut builder: Option<CircuitBuilder> = None;
    let mut cells: HashMap<String, CellId> = HashMap::new();
    let mut pads: HashMap<String, PadId> = HashMap::new();
    let mut nets: HashMap<String, NetId> = HashMap::new();

    while let Some((ln, t)) = lines.next_tokens() {
        match t[0] {
            "kind" => {
                if builder.is_some() {
                    return Err(ParseError::new(ln, "kinds must precede cells/pads/nets"));
                }
                if t.len() < 8 {
                    return Err(ParseError::new(ln, "kind header too short"));
                }
                let name = t[1];
                let opts = kv(&t[2..]);
                let width = parse_u32(ln, opts.get("width").copied().unwrap_or("1"))?;
                let tf = parse_f64(ln, opts.get("tf").copied().unwrap_or("0"))?;
                let td = parse_f64(ln, opts.get("td").copied().unwrap_or("0"))?;
                let mut kb = CellKind::builder(name, width)
                    .fanin_delay(tf)
                    .load_delay(td);
                if t.contains(&"sequential") {
                    kb = kb.sequential();
                }
                if let Some(f) = opts.get("feed") {
                    kb = kb.feed(parse_u32(ln, f)?);
                }
                // Body lines until `end`.
                loop {
                    let Some((bln, bt)) = lines.next_tokens() else {
                        return Err(ParseError::new(
                            0,
                            format!("kind {name} not closed by `end`"),
                        ));
                    };
                    match bt[0] {
                        "end" => break,
                        "in" => {
                            if bt.len() < 2 {
                                return Err(ParseError::new(bln, "pin line too short"));
                            }
                            let opts = kv(&bt[2..]);
                            let cap = parse_f64(bln, opts.get("cap").copied().unwrap_or("0"))?;
                            let off = parse_u32(bln, opts.get("offset").copied().unwrap_or("0"))?;
                            kb = kb.input(bt[1], cap, off);
                            if let Some(a) = opts.get("access") {
                                kb = kb.access(parse_access(bln, a)?);
                            }
                        }
                        "out" => {
                            if bt.len() < 2 {
                                return Err(ParseError::new(bln, "pin line too short"));
                            }
                            let opts = kv(&bt[2..]);
                            let off = parse_u32(bln, opts.get("offset").copied().unwrap_or("0"))?;
                            kb = kb.output(bt[1], off);
                            if let Some(a) = opts.get("access") {
                                kb = kb.access(parse_access(bln, a)?);
                            }
                        }
                        "arc" => {
                            if bt.len() != 4 {
                                return Err(ParseError::new(bln, "arc takes `arc FROM TO T0`"));
                            }
                            kb = kb.arc(bt[1], bt[2], parse_f64(bln, bt[3])?);
                        }
                        other => {
                            return Err(ParseError::new(
                                bln,
                                format!("unexpected `{other}` inside kind body"),
                            ))
                        }
                    }
                }
                library.add(kb.build());
            }
            "pad" => {
                let cb = builder.get_or_insert_with(|| CircuitBuilder::new(library.clone()));
                if t.len() != 3 {
                    return Err(ParseError::new(ln, "pad takes `pad in|out NAME`"));
                }
                let id = match t[1] {
                    "in" => cb.add_input_pad(t[2]),
                    "out" => cb.add_output_pad(t[2]),
                    other => return Err(ParseError::new(ln, format!("unknown pad dir `{other}`"))),
                };
                if pads.insert(t[2].to_owned(), id).is_some() {
                    return Err(ParseError::new(ln, format!("duplicate pad `{}`", t[2])));
                }
            }
            "cell" => {
                let cb = builder.get_or_insert_with(|| CircuitBuilder::new(library.clone()));
                if t.len() != 3 {
                    return Err(ParseError::new(ln, "cell takes `cell NAME KIND`"));
                }
                let kind = cb
                    .library()
                    .kind_by_name(t[2])
                    .ok_or_else(|| ParseError::new(ln, format!("unknown kind `{}`", t[2])))?;
                let id = cb.add_cell(t[1], kind);
                if cells.insert(t[1].to_owned(), id).is_some() {
                    return Err(ParseError::new(ln, format!("duplicate cell `{}`", t[1])));
                }
            }
            "net" => {
                let cb = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::new(ln, "net before any pad/cell"))?;
                if t.len() < 5 || t[2] != "width" {
                    return Err(ParseError::new(
                        ln,
                        "net takes `net NAME width W DRIVER SINK...`",
                    ));
                }
                let width = parse_u32(ln, t[3])?;
                let resolve =
                    |ln: usize, s: &str, cb: &CircuitBuilder| -> Result<TermId, ParseError> {
                        if let Some(p) = s.strip_prefix("pad:") {
                            let id = pads
                                .get(p)
                                .ok_or_else(|| ParseError::new(ln, format!("unknown pad `{p}`")))?;
                            Ok(cb.pad_term(*id))
                        } else {
                            let (cell, pin) = s.split_once('.').ok_or_else(|| {
                                ParseError::new(
                                    ln,
                                    format!("terminal `{s}` is not CELL.PIN or pad:NAME"),
                                )
                            })?;
                            let id = cells.get(cell).ok_or_else(|| {
                                ParseError::new(ln, format!("unknown cell `{cell}`"))
                            })?;
                            cb.cell_term(*id, pin)
                                .map_err(|e| ParseError::new(ln, e.to_string()))
                        }
                    };
                let driver = resolve(ln, t[4], cb)?;
                let mut sinks = Vec::new();
                for s in &t[5..] {
                    sinks.push(resolve(ln, s, cb)?);
                }
                let id = cb
                    .add_wide_net(t[1], driver, sinks, width)
                    .map_err(|e| ParseError::new(ln, e.to_string()))?;
                if nets.insert(t[1].to_owned(), id).is_some() {
                    return Err(ParseError::new(ln, format!("duplicate net `{}`", t[1])));
                }
            }
            "pair" => {
                let cb = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::new(ln, "pair before any net"))?;
                if t.len() != 3 {
                    return Err(ParseError::new(ln, "pair takes `pair NETA NETB`"));
                }
                let a = nets
                    .get(t[1])
                    .ok_or_else(|| ParseError::new(ln, format!("unknown net `{}`", t[1])))?;
                let b = nets
                    .get(t[2])
                    .ok_or_else(|| ParseError::new(ln, format!("unknown net `{}`", t[2])))?;
                cb.mark_diff_pair(*a, *b)
                    .map_err(|e| ParseError::new(ln, e.to_string()))?;
            }
            other => return Err(ParseError::new(ln, format!("unknown directive `{other}`"))),
        }
    }
    builder
        .unwrap_or_else(|| CircuitBuilder::new(library))
        .finish()
        .map_err(|e| ParseError::new(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_circuit() -> Circuit {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let dbuf = lib.kind_by_name("DBUF").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let b = cb.add_input_pad("b");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let tx = cb.add_cell("tx", dbuf);
        let rx = cb.add_cell("rx", dbuf);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(tx, "A").unwrap()])
            .unwrap();
        cb.add_net("nb", cb.pad_term(b), [cb.cell_term(tx, "AN").unwrap()])
            .unwrap();
        let p = cb
            .add_net(
                "pp",
                cb.cell_term(tx, "Y").unwrap(),
                [cb.cell_term(rx, "A").unwrap()],
            )
            .unwrap();
        let n = cb
            .add_net(
                "pn",
                cb.cell_term(tx, "YN").unwrap(),
                [cb.cell_term(rx, "AN").unwrap()],
            )
            .unwrap();
        cb.mark_diff_pair(p, n).unwrap();
        cb.add_wide_net(
            "w2",
            cb.cell_term(rx, "Y").unwrap(),
            [cb.cell_term(u1, "A").unwrap()],
            2,
        )
        .unwrap();
        cb.add_net("ny", cb.cell_term(u1, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        cb.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let circuit = demo_circuit();
        let text = write_netlist(&circuit);
        let back = parse_netlist(&text).unwrap();
        assert_eq!(back.cells().len(), circuit.cells().len());
        assert_eq!(back.nets().len(), circuit.nets().len());
        assert_eq!(back.pads().len(), circuit.pads().len());
        assert_eq!(back.diff_pairs().len(), 1);
        for (a, b) in circuit.nets().iter().zip(back.nets()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.width_pitches(), b.width_pitches());
            assert_eq!(a.sinks().len(), b.sinks().len());
        }
        // Library survives with timing parameters intact.
        let inv_a = circuit
            .library()
            .kind(circuit.library().kind_by_name("INV").unwrap());
        let inv_b = back
            .library()
            .kind(back.library().kind_by_name("INV").unwrap());
        assert_eq!(inv_a.fanin_delay_ps_per_ff(), inv_b.fanin_delay_ps_per_ff());
        assert_eq!(inv_a.arcs().len(), inv_b.arcs().len());
        // Second roundtrip is byte-identical (canonical form).
        assert_eq!(text, write_netlist(&back));
    }

    #[test]
    fn header_is_required() {
        let err = parse_netlist("cell u1 INV\n").unwrap_err();
        assert!(err.message.contains("header"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unknown_references_are_reported_with_lines() {
        let text = "bgr-netlist v1\nkind INV width 3 tf 1 td 1\n  in A cap 1 offset 0 access both\n  out Y offset 2\nend\ncell u1 NOPE\n";
        let err = parse_netlist(text).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn bad_terminal_syntax_is_an_error() {
        let text = "bgr-netlist v1\nkind INV width 3 tf 1 td 1\n  in A cap 1 offset 0 access both\n  out Y offset 2\nend\ncell u1 INV\ncell u2 INV\nnet n width 1 u1Y u2.A\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(err.message.contains("CELL.PIN"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let circuit = demo_circuit();
        let mut text = String::from("# a comment\n\n");
        text.push_str(&write_netlist(&circuit));
        text.push_str("\n# trailing\n");
        assert!(parse_netlist(&text).is_ok());
    }

    #[test]
    fn validation_failures_surface() {
        // Driver is an input pin -> netlist validation rejects at finish.
        let text = "bgr-netlist v1\nkind INV width 3 tf 1 td 1\n  in A cap 1 offset 0 access both\n  out Y offset 2\nend\ncell u1 INV\ncell u2 INV\nnet n width 1 u1.A u2.A\n";
        let err = parse_netlist(text).unwrap_err();
        assert!(err.message.contains("driven"));
    }
}
