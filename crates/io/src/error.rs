//! Parse errors for the text formats.

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 for end-of-input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(7, "unexpected token `foo`");
        assert_eq!(e.to_string(), "line 7: unexpected token `foo`");
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseError>();
    }
}
