//! The `.bgrp` placement format.
//!
//! ```text
//! bgr-placement v1
//! geometry pitch 8 row_height 160 track_pitch 8
//! rows 2
//! place u1 row 0 x 0
//! place u2 row 1 x 4
//! pad a bottom 0
//! pad y top 6
//! ```
//!
//! Cells and pads are referenced by name, so a placement file is only
//! meaningful together with its circuit (`.bgrn`).

use std::collections::HashMap;

use bgr_layout::{Geometry, PadSide, Placement, PlacementBuilder};
use bgr_netlist::{CellId, Circuit, PadId};

use crate::error::ParseError;

/// Serializes a placement to `.bgrp` text (cells in row order).
pub fn write_placement(circuit: &Circuit, placement: &Placement) -> String {
    let g = placement.geometry();
    let mut out = String::from("bgr-placement v1\n");
    out.push_str(&format!(
        "geometry pitch {} row_height {} track_pitch {}\n",
        g.pitch_um, g.row_height_um, g.track_pitch_um
    ));
    out.push_str(&format!("rows {}\n", placement.num_rows()));
    for (r, row) in placement.rows().iter().enumerate() {
        for pc in row.cells() {
            out.push_str(&format!(
                "place {} row {} x {}\n",
                circuit.cell(pc.cell).name(),
                r,
                pc.x
            ));
        }
    }
    for (i, pad) in circuit.pads().iter().enumerate() {
        let (side, x) = placement.pad_loc(PadId::new(i));
        let side = match side {
            PadSide::Bottom => "bottom",
            PadSide::Top => "top",
        };
        out.push_str(&format!("pad {} {side} {x}\n", pad.name()));
    }
    out
}

/// Parses `.bgrp` text against its circuit.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, unknown cell/pad names,
/// or placement-validation failures (overlaps, unplaced cells).
pub fn parse_placement(circuit: &Circuit, text: &str) -> Result<Placement, ParseError> {
    let cells: HashMap<&str, (CellId, u32)> = circuit
        .cell_ids()
        .map(|id| {
            let c = circuit.cell(id);
            (
                c.name(),
                (id, circuit.library().kind(c.kind()).width_pitches()),
            )
        })
        .collect();
    let pads: HashMap<&str, PadId> = circuit
        .pads()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name(), PadId::new(i)))
        .collect();

    let mut geometry = Geometry::default();
    let mut builder: Option<PlacementBuilder> = None;
    let mut header_seen = false;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let t: Vec<&str> = line.split_whitespace().collect();
        if !header_seen {
            if t != ["bgr-placement", "v1"] {
                return Err(ParseError::new(ln, "expected header `bgr-placement v1`"));
            }
            header_seen = true;
            continue;
        }
        match t[0] {
            "geometry" => {
                for pair in t[1..].chunks(2) {
                    let [k, v] = pair else {
                        return Err(ParseError::new(ln, "geometry takes key/value pairs"));
                    };
                    let val: f64 = v
                        .parse()
                        .map_err(|_| ParseError::new(ln, format!("bad number `{v}`")))?;
                    match *k {
                        "pitch" => geometry.pitch_um = val,
                        "row_height" => geometry.row_height_um = val,
                        "track_pitch" => geometry.track_pitch_um = val,
                        other => {
                            return Err(ParseError::new(
                                ln,
                                format!("unknown geometry key `{other}`"),
                            ))
                        }
                    }
                }
            }
            "rows" => {
                let n: usize = t
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::new(ln, "rows takes a count"))?;
                builder = Some(PlacementBuilder::new(geometry, n));
            }
            "place" => {
                let pb = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::new(ln, "place before `rows`"))?;
                if t.len() != 6 || t[2] != "row" || t[4] != "x" {
                    return Err(ParseError::new(ln, "place takes `place CELL row R x X`"));
                }
                let &(id, width) = cells
                    .get(t[1])
                    .ok_or_else(|| ParseError::new(ln, format!("unknown cell `{}`", t[1])))?;
                let row: usize = t[3]
                    .parse()
                    .map_err(|_| ParseError::new(ln, "bad row index"))?;
                let x: i32 = t[5]
                    .parse()
                    .map_err(|_| ParseError::new(ln, "bad x coordinate"))?;
                pb.place_at(row, id, x, width)
                    .map_err(|e| ParseError::new(ln, e.to_string()))?;
            }
            "pad" => {
                let pb = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::new(ln, "pad before `rows`"))?;
                if t.len() != 4 {
                    return Err(ParseError::new(ln, "pad takes `pad NAME bottom|top X`"));
                }
                let id = pads
                    .get(t[1])
                    .ok_or_else(|| ParseError::new(ln, format!("unknown pad `{}`", t[1])))?;
                let x: i32 = t[3]
                    .parse()
                    .map_err(|_| ParseError::new(ln, "bad x coordinate"))?;
                match t[2] {
                    "bottom" => pb.place_pad_bottom(*id, x),
                    "top" => pb.place_pad_top(*id, x),
                    other => {
                        return Err(ParseError::new(ln, format!("unknown pad side `{other}`")))
                    }
                }
            }
            other => return Err(ParseError::new(ln, format!("unknown directive `{other}`"))),
        }
    }
    builder
        .ok_or_else(|| ParseError::new(0, "missing `rows` directive"))?
        .finish(circuit)
        .map_err(|e| ParseError::new(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    fn demo() -> (Circuit, Placement) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 2);
        pb.append_with_width(0, u1, 3);
        pb.append_with_width(1, u2, 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 5);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement)
    }

    #[test]
    fn roundtrip_preserves_positions() {
        let (circuit, placement) = demo();
        let text = write_placement(&circuit, &placement);
        let back = parse_placement(&circuit, &text).unwrap();
        assert_eq!(back.num_rows(), placement.num_rows());
        assert_eq!(back.width_pitches(), placement.width_pitches());
        for id in circuit.cell_ids() {
            assert_eq!(back.cell_loc(id), placement.cell_loc(id));
        }
        for i in 0..circuit.pads().len() {
            assert_eq!(
                back.pad_loc(bgr_netlist::PadId::new(i)),
                placement.pad_loc(bgr_netlist::PadId::new(i))
            );
        }
        assert_eq!(text, write_placement(&circuit, &back));
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let (circuit, placement) = demo();
        let text = write_placement(&circuit, &placement).replace("place u2", "place zz");
        let err = parse_placement(&circuit, &text).unwrap_err();
        assert!(err.message.contains("zz"));
    }

    #[test]
    fn geometry_is_parsed() {
        let (circuit, placement) = demo();
        let mut text = write_placement(&circuit, &placement);
        text = text.replace("pitch 8", "pitch 10");
        let back = parse_placement(&circuit, &text).unwrap();
        assert_eq!(back.geometry().pitch_um, 10.0);
    }

    #[test]
    fn validation_failures_surface() {
        let (circuit, placement) = demo();
        // Move u2 onto u1: overlap.
        let text = write_placement(&circuit, &placement)
            .replace("place u2 row 1 x 0", "place u2 row 0 x 1");
        let err = parse_placement(&circuit, &text).unwrap_err();
        assert!(err.message.contains("overlap"));
    }
}
