//! Minimal hand-rolled JSON reader (the workspace is hermetic — no
//! serde). Parses the subset the bgr tool chain emits — objects,
//! arrays, strings with `\"`/`\\`/`\n`-class escapes, numbers, bools,
//! null — into a [`Json`] tree. Numbers are held as `f64`, which is
//! exact for every integer the schemas carry (all well below 2^53).
//!
//! This is a *reader* for our own writers (`trace.rs`, the bench bins'
//! `BENCH_*.json`), not a general-purpose validator: it accepts all
//! valid JSON of that shape and reports structured offsets on malformed
//! input, but does not chase spec corner cases (no `\u` surrogate-pair
//! validation beyond decoding).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (our writers emit fixed orders).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after value".into(),
            });
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A structured parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail<T>(pos: usize, message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        offset: pos,
        message: message.into(),
    })
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        fail(*pos, format!("expected '{}'", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => fail(*pos, format!("unexpected character '{}'", *c as char)),
        None => fail(*pos, "unexpected end of input"),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        fail(*pos, format!("expected '{lit}'"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => fail(start, format!("malformed number {text:?}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return fail(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError {
                                offset: *pos,
                                message: "malformed \\u escape".into(),
                            })?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return fail(*pos, "malformed escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    offset: *pos,
                    message: "invalid utf-8 in string".into(),
                })?;
                let ch = rest.chars().next().expect("non-empty rest");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return fail(*pos, "expected ',' or ']'"),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return fail(*pos, "expected ',' or '}'"),
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (the inverse
/// of what [`parse_string`] unescapes). Shared by every hand-rolled
/// writer that needs to embed free text (audit verdicts, error
/// messages) in a JSONL stream.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_trace_line_shapes() {
        let line = r#"{"type":"event","seq":7,"kind":"deletion_selected","net":3,"edge":9,"tier":"d_max"}"#;
        let v = Json::parse(line).expect("valid line");
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("tier").and_then(Json::as_str), Some("d_max"));

        let span = r#"{"type":"span","phase":"initial_routing","wall_us":8123,"events":152,"counters":{"key_evals":12,"heap_pushes":0}}"#;
        let v = Json::parse(span).expect("valid span");
        let counters = v.get("counters").expect("nested object");
        assert_eq!(counters.get("key_evals").and_then(Json::as_u64), Some(12));

        let hist = r#"{"type":"hist","name":"dirty_set_size","buckets":[0,5,3,0,0,0,0,0]}"#;
        let v = Json::parse(hist).expect("valid hist");
        let buckets = v.get("buckets").and_then(Json::as_arr).expect("array");
        assert_eq!(buckets.len(), 8);
        assert_eq!(buckets[1].as_u64(), Some(5));
    }

    #[test]
    fn parses_nested_bench_documents() {
        let doc = r#"{"schema":1,"bench":"deletion_rate","rows":[
            {"instance":"RATE","strategy":"scoreboard","threads":1,"wall_ms":141.5,"deletions":1400},
            {"instance":"C2P1","strategy":"rescan","threads":8,"wall_ms":90.25,"deletions":700}
        ]}"#;
        let v = Json::parse(doc).expect("valid doc");
        let rows = v.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("wall_ms").and_then(Json::as_f64), Some(141.5));
        assert_eq!(rows[1].get("instance").and_then(Json::as_str), Some("C2P1"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nwith \"quotes\" and \\slash\t tab \u{1} ctl";
        let wire = format!("{{\"m\":\"{}\"}}", escape_json(original));
        let v = Json::parse(&wire).expect("escaped text parses");
        assert_eq!(v.get("m").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn negatives_bools_null_and_floats() {
        let v = Json::parse(r#"[-3, 2.5, true, false, null, 1e3]"#).expect("parses");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0].as_f64(), Some(-3.0));
        assert_eq!(items[0].as_u64(), None, "negative is not u64");
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[1].as_u64(), None, "fractional is not u64");
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[3], Json::Bool(false));
        assert_eq!(items[4], Json::Null);
        assert_eq!(items[5].as_f64(), Some(1000.0));
    }

    #[test]
    fn malformed_input_reports_offsets() {
        for (text, expect_in_msg) in [
            ("{\"a\":}", "unexpected character"),
            ("{\"a\":1", "expected ',' or '}'"),
            ("[1,2", "expected ',' or ']'"),
            ("\"unterminated", "unterminated string"),
            ("{\"a\":1} trailing", "trailing characters"),
            ("nul", "expected 'null'"),
            ("", "unexpected end of input"),
        ] {
            let err = Json::parse(text).expect_err(text);
            assert!(err.message.contains(expect_in_msg), "{text}: {err}");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("{\"s\":\"µs → done\"}").expect("utf-8 ok");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("µs → done"));
    }
}
