//! SVG rendering of placements and routed layouts.
//!
//! Rows are drawn bottom-up (row 0 at the bottom, matching the
//! channel-numbering convention); channels get their routed heights when
//! track counts are supplied; every net's trunks, pin taps and row
//! crossings are drawn in a stable per-net color.

use bgr_core::{RoutingResult, Segment};
use bgr_layout::{PadSide, Placement};
use bgr_netlist::{Circuit, PadId};

/// Stable, readable color per net id.
fn net_color(net: usize) -> String {
    // Golden-angle hue walk: adjacent ids get distant hues.
    let hue = (net as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0},70%,40%)")
}

struct Frame {
    /// y (SVG, downward) of the *bottom* of each channel, indexed by
    /// channel.
    channel_bottom: Vec<f64>,
    /// Height of each channel in µm.
    channel_height: Vec<f64>,
    /// y of the bottom of each row.
    row_bottom: Vec<f64>,
    total_height: f64,
    row_height: f64,
    pitch: f64,
}

impl Frame {
    fn new(placement: &Placement, tracks: Option<&[i32]>) -> Self {
        let g = placement.geometry();
        let rows = placement.num_rows();
        let channel_height: Vec<f64> = (0..=rows)
            .map(|c| {
                let t = tracks.and_then(|t| t.get(c).copied()).unwrap_or(4).max(1);
                g.channel_height_um(t as usize)
            })
            .collect();
        // Build bottom-up in chip coordinates first.
        let mut y = 0.0;
        let mut channel_bottom_up = Vec::with_capacity(rows + 1);
        let mut row_bottom_up = Vec::with_capacity(rows);
        for (c, &h) in channel_height.iter().enumerate() {
            channel_bottom_up.push(y);
            y += h;
            if c < rows {
                row_bottom_up.push(y);
                y += g.row_height_um;
            }
        }
        let total = y;
        // Flip to SVG coordinates (y grows downward).
        let channel_bottom = channel_bottom_up.iter().map(|&b| total - b).collect();
        let row_bottom = row_bottom_up.iter().map(|&b| total - b).collect();
        Self {
            channel_bottom,
            channel_height,
            row_bottom,
            total_height: total,
            row_height: g.row_height_um,
            pitch: g.pitch_um,
        }
    }

    fn x(&self, pitches: i32) -> f64 {
        pitches as f64 * self.pitch
    }

    /// y of the vertical middle of a channel.
    fn channel_mid(&self, c: usize) -> f64 {
        self.channel_bottom[c] - self.channel_height[c] / 2.0
    }
}

/// Renders a placement — and, when given, its routing — as an SVG
/// document string.
///
/// `result` draws every net tree; pass `None` for a placement-only
/// floorplan view.
pub fn render_svg(
    circuit: &Circuit,
    placement: &Placement,
    result: Option<&RoutingResult>,
) -> String {
    let frame = Frame::new(placement, result.map(|r| r.channel_tracks.as_slice()));
    let width = frame.x(placement.width_pitches());
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"-10 -10 {} {}\" \
         font-family=\"monospace\" font-size=\"10\">\n",
        width + 20.0,
        frame.total_height + 20.0
    ));
    s.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{width}\" height=\"{}\" fill=\"#fafafa\" stroke=\"#888\"/>\n",
        frame.total_height
    ));
    // Rows and cells.
    for (r, row) in placement.rows().iter().enumerate() {
        let y_top = frame.row_bottom[r] - frame.row_height;
        s.push_str(&format!(
            "<rect x=\"0\" y=\"{y_top}\" width=\"{width}\" height=\"{}\" \
             fill=\"#eef2f7\" stroke=\"#ccd\"/>\n",
            frame.row_height
        ));
        for pc in row.cells() {
            let kind = circuit.library().kind(circuit.cell(pc.cell).kind());
            let fill = if kind.is_feed() { "#ffe9b3" } else { "#cfe3cf" };
            s.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\" \
                 stroke=\"#667\"><title>{} ({})</title></rect>\n",
                frame.x(pc.x),
                y_top + 4.0,
                pc.width as f64 * frame.pitch,
                frame.row_height - 8.0,
                circuit.cell(pc.cell).name(),
                kind.name(),
            ));
        }
    }
    // Pads.
    for (i, pad) in circuit.pads().iter().enumerate() {
        let (side, x) = placement.pad_loc(PadId::new(i));
        let y = match side {
            PadSide::Bottom => frame.total_height,
            PadSide::Top => 0.0,
        };
        s.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{y}\" r=\"5\" fill=\"#336\" \
             ><title>{}</title></circle>\n",
            frame.x(x) + frame.pitch / 2.0,
            pad.name()
        ));
    }
    // Routed wiring.
    if let Some(result) = result {
        for (ni, tree) in result.trees.iter().enumerate() {
            let color = net_color(ni);
            let stroke = 1.0 + (tree.width_pitches.saturating_sub(1)) as f64 * 1.5;
            // Deterministic per-net offset inside the channel so parallel
            // trunks don't overdraw.
            let jitter = ((ni * 29) % 17) as f64 - 8.0;
            for seg in &tree.segments {
                match *seg {
                    Segment::Trunk { channel, x1, x2 } => {
                        let y = frame.channel_mid(channel.index()) + jitter;
                        s.push_str(&format!(
                            "<line x1=\"{}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" \
                             stroke=\"{color}\" stroke-width=\"{stroke}\"/>\n",
                            frame.x(x1) + frame.pitch / 2.0,
                            frame.x(x2) + frame.pitch / 2.0,
                        ));
                    }
                    Segment::Branch { channel, x, .. } => {
                        let c = channel.index();
                        let y1 = frame.channel_bottom[c] - frame.channel_height[c];
                        let y2 = frame.channel_bottom[c];
                        s.push_str(&format!(
                            "<line x1=\"{0}\" y1=\"{y1}\" x2=\"{0}\" y2=\"{y2}\" \
                             stroke=\"{color}\" stroke-width=\"{stroke}\" \
                             stroke-dasharray=\"2,2\"/>\n",
                            frame.x(x) + frame.pitch / 2.0,
                        ));
                    }
                    Segment::Feed { row, x } => {
                        let y1 = frame.row_bottom[row as usize] - frame.row_height;
                        let y2 = frame.row_bottom[row as usize];
                        s.push_str(&format!(
                            "<line x1=\"{0}\" y1=\"{y1}\" x2=\"{0}\" y2=\"{y2}\" \
                             stroke=\"{color}\" stroke-width=\"{stroke}\"/>\n",
                            frame.x(x) + frame.pitch / 2.0,
                        ));
                    }
                }
            }
        }
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::{GlobalRouter, RouterConfig};
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    fn routed_demo() -> (Circuit, Placement, RoutingResult) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let f = cb.add_cell("f", feed);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 2);
        pb.append_with_width(0, u1, 3);
        pb.append_with_width(0, f, 1);
        pb.append_with_width(1, u2, 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 3);
        let placement = pb.finish(&circuit).unwrap();
        let routed = GlobalRouter::new(RouterConfig::default())
            .route(circuit, placement, vec![])
            .unwrap();
        (routed.circuit, routed.placement, routed.result)
    }

    #[test]
    fn renders_well_formed_svg_with_all_cells() {
        let (circuit, placement, result) = routed_demo();
        let svg = render_svg(&circuit, &placement, Some(&result));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One background + one rect per row + one per cell.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + placement.num_rows() + circuit.cells().len());
        // Every pad appears.
        for pad in circuit.pads() {
            assert!(svg.contains(&format!("<title>{}</title>", pad.name())));
        }
        // Routed wiring appears as lines.
        assert!(svg.matches("<line").count() >= 3);
    }

    #[test]
    fn placement_only_view_has_no_wiring() {
        let (circuit, placement, _) = routed_demo();
        let svg = render_svg(&circuit, &placement, None);
        assert_eq!(svg.matches("<line").count(), 0);
        assert!(svg.contains("u1 (INV)"));
        assert!(svg.contains("f (FEED1)"));
    }

    #[test]
    fn colors_are_stable_and_distinct_for_small_ids() {
        assert_eq!(net_color(0), net_color(0));
        assert_ne!(net_color(0), net_color(1));
        assert_ne!(net_color(1), net_color(2));
    }
}
