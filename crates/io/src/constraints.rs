//! The `.bgrt` constraint format.
//!
//! ```text
//! bgr-constraints v1
//! constraint p0 from pad:a to pad:y limit 700
//! constraint p1 from ff0.Q to ff1.D limit 950.5
//! ```

use std::collections::HashMap;

use bgr_netlist::{Circuit, TermId, TermOwner};
use bgr_timing::PathConstraint;

use crate::error::ParseError;

fn term_ref(circuit: &Circuit, t: TermId) -> String {
    match circuit.term(t).owner() {
        TermOwner::Pad(p) => format!("pad:{}", circuit.pad(p).name()),
        TermOwner::Cell { cell, pin } => {
            let c = circuit.cell(cell);
            format!(
                "{}.{}",
                c.name(),
                circuit.library().kind(c.kind()).terms()[pin].name
            )
        }
    }
}

/// Serializes constraints to `.bgrt` text.
pub fn write_constraints(circuit: &Circuit, constraints: &[PathConstraint]) -> String {
    let mut out = String::from("bgr-constraints v1\n");
    for c in constraints {
        out.push_str(&format!(
            "constraint {} from {} to {} limit {}\n",
            c.name,
            term_ref(circuit, c.source),
            term_ref(circuit, c.sink),
            c.limit_ps
        ));
    }
    out
}

/// Parses `.bgrt` text against its circuit.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed lines or unresolvable terminal
/// references.
pub fn parse_constraints(circuit: &Circuit, text: &str) -> Result<Vec<PathConstraint>, ParseError> {
    let cells: HashMap<&str, bgr_netlist::CellId> = circuit
        .cell_ids()
        .map(|id| (circuit.cell(id).name(), id))
        .collect();
    let pads: HashMap<&str, TermId> = circuit
        .pads()
        .iter()
        .map(|p| (p.name(), p.term()))
        .collect();
    let resolve = |ln: usize, s: &str| -> Result<TermId, ParseError> {
        if let Some(p) = s.strip_prefix("pad:") {
            return pads
                .get(p)
                .copied()
                .ok_or_else(|| ParseError::new(ln, format!("unknown pad `{p}`")));
        }
        let (cell, pin) = s
            .split_once('.')
            .ok_or_else(|| ParseError::new(ln, format!("terminal `{s}` is not CELL.PIN")))?;
        let id = cells
            .get(cell)
            .ok_or_else(|| ParseError::new(ln, format!("unknown cell `{cell}`")))?;
        let c = circuit.cell(*id);
        let kind = circuit.library().kind(c.kind());
        let pin = kind
            .pin(pin)
            .ok_or_else(|| ParseError::new(ln, format!("kind has no pin `{pin}`")))?;
        Ok(c.terms()[pin])
    };

    let mut out = Vec::new();
    let mut header_seen = false;
    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let t: Vec<&str> = line.split_whitespace().collect();
        if !header_seen {
            if t != ["bgr-constraints", "v1"] {
                return Err(ParseError::new(ln, "expected header `bgr-constraints v1`"));
            }
            header_seen = true;
            continue;
        }
        if t.len() != 8 || t[0] != "constraint" || t[2] != "from" || t[4] != "to" || t[6] != "limit"
        {
            return Err(ParseError::new(
                ln,
                "constraint takes `constraint NAME from SRC to SNK limit PS`",
            ));
        }
        let limit: f64 = t[7]
            .parse()
            .map_err(|_| ParseError::new(ln, format!("bad limit `{}`", t[7])))?;
        out.push(PathConstraint::new(
            t[1],
            resolve(ln, t[3])?,
            resolve(ln, t[5])?,
            limit,
        ));
    }
    if !header_seen {
        return Err(ParseError::new(0, "empty input"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    fn demo() -> (Circuit, Vec<PathConstraint>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u = cb.add_cell("u1", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
            .unwrap();
        cb.add_net("n1", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![
            PathConstraint::new("p0", cb.pad_term(a), cb.pad_term(y), 700.0),
            PathConstraint::new("p1", cb.pad_term(a), cb.cell_term(u, "A").unwrap(), 123.5),
        ];
        (cb.finish().unwrap(), cons)
    }

    #[test]
    fn roundtrip_preserves_constraints() {
        let (circuit, cons) = demo();
        let text = write_constraints(&circuit, &cons);
        let back = parse_constraints(&circuit, &text).unwrap();
        assert_eq!(back.len(), cons.len());
        for (a, b) in cons.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.source, b.source);
            assert_eq!(a.sink, b.sink);
            assert!((a.limit_ps - b.limit_ps).abs() < 1e-12);
        }
        assert_eq!(text, write_constraints(&circuit, &back));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let (circuit, _) = demo();
        let err = parse_constraints(&circuit, "bgr-constraints v1\nconstraint p0 from pad:a\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_terminals_are_rejected() {
        let (circuit, _) = demo();
        let err = parse_constraints(
            &circuit,
            "bgr-constraints v1\nconstraint p from pad:zz to pad:y limit 1\n",
        )
        .unwrap_err();
        assert!(err.message.contains("zz"));
    }
}
