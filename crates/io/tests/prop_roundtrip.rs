//! Property tests: every generated design round-trips through the text
//! formats, and the SVG renderer never produces malformed documents.

use bgr_gen::{generate, place_design, GenParams, PlacementStyle};
use bgr_io::{
    parse_constraints, parse_netlist, parse_placement, render_svg, write_constraints,
    write_netlist, write_placement,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn generated_designs_roundtrip(seed in any::<u64>(), cells in 20usize..80) {
        let params = GenParams {
            logic_cells: cells,
            ..GenParams::small(seed)
        };
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);

        let ntext = write_netlist(&design.circuit);
        let circuit2 = parse_netlist(&ntext).expect("netlist parses");
        prop_assert_eq!(circuit2.cells().len(), design.circuit.cells().len());
        prop_assert_eq!(circuit2.nets().len(), design.circuit.nets().len());
        prop_assert_eq!(circuit2.diff_pairs().len(), design.circuit.diff_pairs().len());
        // Canonical: second write is identical.
        prop_assert_eq!(write_netlist(&circuit2), ntext.clone());

        let ptext = write_placement(&design.circuit, &placement);
        let placement2 = parse_placement(&circuit2, &ptext).expect("placement parses");
        prop_assert_eq!(placement2.width_pitches(), placement.width_pitches());
        prop_assert_eq!(write_placement(&circuit2, &placement2), ptext);

        let ctext = write_constraints(&design.circuit, &design.constraints);
        let cons2 = parse_constraints(&circuit2, &ctext).expect("constraints parse");
        prop_assert_eq!(cons2.len(), design.constraints.len());

        // The reparsed design routes identically to the original.
        use bgr_core::{GlobalRouter, RouterConfig};
        let r1 = GlobalRouter::new(RouterConfig::default())
            .route(design.circuit.clone(), placement, design.constraints.clone())
            .expect("original routes");
        let r2 = GlobalRouter::new(RouterConfig::default())
            .route(circuit2, placement2, cons2)
            .expect("reparsed routes");
        prop_assert_eq!(&r1.result.channel_tracks, &r2.result.channel_tracks);
        prop_assert!((r1.result.total_length_um - r2.result.total_length_um).abs() < 1e-6);

        // SVG stays well-formed.
        let svg = render_svg(&r1.circuit, &r1.placement, Some(&r1.result));
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }
}
