//! Randomized tests: every generated design round-trips through the text
//! formats, and the SVG renderer never produces malformed documents.

use bgr_gen::{generate, place_design, GenParams, PlacementStyle};
use bgr_io::{
    parse_constraints, parse_netlist, parse_placement, render_svg, write_constraints,
    write_netlist, write_placement,
};
use bgr_netlist::SplitMix64;

#[test]
fn generated_designs_roundtrip() {
    for i in 0..16u64 {
        let mut rng = SplitMix64::new(0x107D ^ (i << 8));
        let seed = rng.next_u64();
        let cells = rng.range_usize(20, 80);
        let params = GenParams {
            logic_cells: cells,
            ..GenParams::small(seed)
        };
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);

        let ntext = write_netlist(&design.circuit);
        let circuit2 = parse_netlist(&ntext).expect("netlist parses");
        assert_eq!(circuit2.cells().len(), design.circuit.cells().len());
        assert_eq!(circuit2.nets().len(), design.circuit.nets().len());
        assert_eq!(
            circuit2.diff_pairs().len(),
            design.circuit.diff_pairs().len()
        );
        // Canonical: second write is identical.
        assert_eq!(write_netlist(&circuit2), ntext);

        let ptext = write_placement(&design.circuit, &placement);
        let placement2 = parse_placement(&circuit2, &ptext).expect("placement parses");
        assert_eq!(placement2.width_pitches(), placement.width_pitches());
        assert_eq!(write_placement(&circuit2, &placement2), ptext);

        let ctext = write_constraints(&design.circuit, &design.constraints);
        let cons2 = parse_constraints(&circuit2, &ctext).expect("constraints parse");
        assert_eq!(cons2.len(), design.constraints.len());

        // The reparsed design routes identically to the original.
        use bgr_core::{GlobalRouter, RouterConfig};
        let r1 = GlobalRouter::new(RouterConfig::default())
            .route(
                design.circuit.clone(),
                placement,
                design.constraints.clone(),
            )
            .expect("original routes");
        let r2 = GlobalRouter::new(RouterConfig::default())
            .route(circuit2, placement2, cons2)
            .expect("reparsed routes");
        assert_eq!(&r1.result.channel_tracks, &r2.result.channel_tracks);
        assert!((r1.result.total_length_um - r2.result.total_length_um).abs() < 1e-6);

        // SVG stays well-formed.
        let svg = render_svg(&r1.circuit, &r1.placement, Some(&r1.result));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
