//! Sessionized job layer over the router: a [`JobQueue`] of routing
//! [`Job`]s, each advanced one budgeted slice at a time, suspended to a
//! real serialized checkpoint between slices, and audited by the
//! independent verifier on completion (DESIGN.md §13).
//!
//! # State machine
//!
//! ```text
//! Created ──▶ Running ──▶ Suspended(checkpoint) ──▶ Completed
//!                ▲             │        │
//!                └─────────────┘        └──────────▶ Failed
//! ```
//!
//! [`JobQueue::run_round`] advances every runnable job by one slice,
//! fanning the slices over `bgr_core::par::scoped_map`. A slice is:
//! restore the session from the job's checkpoint text (or start it),
//! run one [`RouteSession::step`] under the job's selection quota, then
//! either write a fresh checkpoint (suspension) or finish and audit.
//! **Every suspension round-trips through the serialized codec** —
//! `bgr_io::write_checkpoint` / `bgr_io::parse_checkpoint` — never a
//! kept-alive in-memory session, so the resume path is exercised on
//! every boundary, and a queue can in principle be drained by a
//! different process than the one that filled it.
//!
//! # Streams
//!
//! Each job accumulates a JSONL stream: the deterministic trace-event
//! lines of every slice (serialized at the slice's global `seq` offset,
//! so the concatenation is byte-identical to an uninterrupted run's
//! event lines) interleaved with `{"type":"progress",...}` /
//! `{"type":"done",...}` records at slice boundaries.
//!
//! # Cancellation
//!
//! [`JobQueue::cancel`] is cooperative and lands at the next slice
//! boundary: the in-flight slice (if any) completes and checkpoints,
//! after which the job is skipped by subsequent rounds — parked as
//! `Suspended` with its checkpoint intact. [`JobQueue::reactivate`]
//! clears the flag and the job continues from exactly where it stopped.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bgr_core::probe::CollectingProbe;
use bgr_core::session::{RouteSession, SessionStage, StepOutcome};
use bgr_core::{par, RouteError, Routed, RouterConfig};
use bgr_io::{
    deterministic_event_lines, escape_json, parse_checkpoint, segment_seq_span, write_checkpoint,
    write_trace_jsonl_offset,
};
use bgr_layout::Placement;
use bgr_metrics::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
use bgr_netlist::Circuit;
use bgr_timing::PathConstraint;
use bgr_verify::{audit, AuditReport};

/// Deterministic summary of a *finished* route slice: everything a
/// coordinator needs to build the job's `done` stream record and to
/// rank speculative-portfolio arms, with nothing non-serializable.
///
/// Every field is a pure function of the slice's inputs (checkpoint +
/// quota), so two workers finishing the same lease produce equal
/// verdicts — the property `bgr-net`'s deterministic result acceptance
/// rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishVerdict {
    /// Whether the independent completion audit found no divergence.
    pub audit_clean: bool,
    /// Comparisons the audit performed.
    pub audit_checks: u64,
    /// The audit report's stable one-line `Display`.
    pub audit_line: String,
    /// The residual-violation report's one-line `Display`, when the
    /// route finished best-effort with constraints still violated.
    pub violations_line: Option<String>,
    /// No residual violations (the portfolio's first-rank key).
    pub feasible: bool,
    /// Worst constraint margin in ps (`+∞` with no constraints) — the
    /// portfolio's delay key, larger is better.
    pub worst_margin_ps: f64,
    /// Sum of final channel track maxima — the portfolio's area key,
    /// smaller is better.
    pub area_tracks: u64,
    /// Total routed wirelength in µm (reporting only).
    pub total_length_um: f64,
}

impl FinishVerdict {
    /// Whether this verdict wins over `other` under the portfolio's
    /// total deterministic order: audited feasibility first, then worst
    /// margin (descending — more slack wins), then area tracks
    /// (ascending), then total length (ascending). Ties fall through to
    /// `false` so the caller's arm-index order (ascending) decides —
    /// completing the total order.
    pub fn beats(&self, other: &FinishVerdict) -> bool {
        let ok_self = self.audit_clean && self.feasible;
        let ok_other = other.audit_clean && other.feasible;
        if ok_self != ok_other {
            return ok_self;
        }
        match self.worst_margin_ps.total_cmp(&other.worst_margin_ps) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
        if self.area_tracks != other.area_tracks {
            return self.area_tracks < other.area_tracks;
        }
        self.total_length_um.total_cmp(&other.total_length_um) == std::cmp::Ordering::Less
    }
}

/// What one budgeted slice of a checkpointed session concluded — the
/// transport-agnostic result of [`run_slice`], applied to a [`Job`] by
/// the local queue and shipped over `bgr-net` by remote workers.
#[derive(Debug)]
pub enum SliceOutcome {
    /// The session suspended again: a fresh checkpoint plus the slice's
    /// deterministic event lines (already serialized at the stream's
    /// global `seq` offset).
    Suspended {
        /// Serialized checkpoint of the suspension.
        checkpoint: String,
        /// Stable label of the stage the session parked at.
        stage: &'static str,
        /// Deterministic events emitted across the whole session.
        events_emitted: u64,
        /// Global selections performed across the whole session.
        selections_done: u64,
        /// The slice's `"type":"event"` lines, newline-terminated.
        events_jsonl: String,
    },
    /// The session finished and was audited.
    Finished {
        /// Deterministic events emitted across the whole session.
        events_emitted: u64,
        /// Global selections performed across the whole session.
        selections_done: u64,
        /// The slice's `"type":"event"` lines, newline-terminated.
        events_jsonl: String,
        /// The deterministic completion verdict.
        verdict: FinishVerdict,
        /// The finished route — present only when the slice ran
        /// in-process (never crosses the wire).
        routed: Option<Box<Routed>>,
        /// The full audit report — in-process only, like `routed`.
        report: Option<AuditReport>,
    },
    /// The slice failed structurally.
    Failed {
        /// The structured error.
        error: RouteError,
    },
}

/// Runs one budgeted slice from a serialized checkpoint: parse →
/// resume → one [`RouteSession::step`] → re-checkpoint or finish +
/// independent audit. **This is the single slice execution path** —
/// [`JobQueue`] calls it for local rounds and `bgr-net` workers call it
/// for leased slices, so a distributed drain is byte-identical to a
/// local one by construction, not by parallel maintenance of two
/// pipelines.
///
/// Self-contained: the checkpoint embeds the design, configuration and
/// the global event offset, so `(checkpoint, quota)` fully determines
/// the outcome.
pub fn run_slice(checkpoint: &str, quota: Option<u64>) -> SliceOutcome {
    let snap = match parse_checkpoint(checkpoint) {
        Ok(snap) => snap,
        Err(e) => {
            return SliceOutcome::Failed {
                error: RouteError::Checkpoint {
                    message: e.to_string(),
                },
            }
        }
    };
    let start_events = snap.events_emitted;
    let constraints = snap.constraints.clone();
    let config = snap.config.clone();
    let mut session = match RouteSession::resume(snap, CollectingProbe::new()) {
        Ok(s) => s,
        Err(e) => return SliceOutcome::Failed { error: e },
    };
    let outcome = match session.step(quota) {
        Ok(o) => o,
        Err(e) => return SliceOutcome::Failed { error: e },
    };
    match outcome {
        StepOutcome::Suspended => {
            let snap = session.snapshot();
            let stage = snap.stage.label();
            let events_emitted = snap.events_emitted;
            let selections_done = session.selections_done();
            let checkpoint = write_checkpoint(&snap);
            let trace = session.into_probe().finish();
            SliceOutcome::Suspended {
                checkpoint,
                stage,
                events_emitted,
                selections_done,
                events_jsonl: deterministic_event_lines(&write_trace_jsonl_offset(
                    &trace,
                    start_events,
                )),
            }
        }
        StepOutcome::Ready => {
            let events_emitted = session.events_emitted();
            let selections_done = session.selections_done();
            match session.finish() {
                Ok((routed, probe)) => {
                    let trace = probe.finish();
                    let events_jsonl =
                        deterministic_event_lines(&write_trace_jsonl_offset(&trace, start_events));
                    let report = audit(
                        &routed.circuit,
                        &routed.placement,
                        &constraints,
                        &config,
                        &routed.result,
                    );
                    let verdict = FinishVerdict {
                        audit_clean: report.is_clean(),
                        audit_checks: report.total_checks(),
                        audit_line: report.to_string(),
                        violations_line: routed.result.violations.as_ref().map(|v| v.to_string()),
                        feasible: routed.result.violations.is_none(),
                        worst_margin_ps: routed.result.timing.worst_margin_ps(),
                        area_tracks: routed
                            .result
                            .channel_tracks
                            .iter()
                            .map(|&t| t.max(0) as u64)
                            .sum(),
                        total_length_um: routed.result.total_length_um,
                    };
                    SliceOutcome::Finished {
                        events_emitted,
                        selections_done,
                        events_jsonl,
                        verdict,
                        routed: Some(Box::new(routed)),
                        report: Some(report),
                    }
                }
                Err(e) => SliceOutcome::Failed { error: e },
            }
        }
    }
}

/// Admission limits for a [`JobQueue`] — the serve layer's half of the
/// overload-governance ladder (DESIGN.md §15).
///
/// Every field is `None` by default, which makes the policy **provably
/// inert**: an ungoverned queue accepts exactly what it always did and
/// produces byte-identical streams. Set a limit and the corresponding
/// intake check turns on; a trip is a structured [`Rejected`] verdict,
/// never a panic and never a silent drop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueuePolicy {
    /// Maximum live (non-terminal) jobs the queue will hold.
    pub max_jobs: Option<usize>,
    /// Maximum total serialized checkpoint bytes held by live jobs at
    /// admission time. A queue already holding this much parked state
    /// refuses new work until something drains.
    pub max_checkpoint_bytes: Option<u64>,
    /// Wall-clock budget per admitted job, in milliseconds, measured
    /// from its first slice materialization. Propagated into every
    /// [`LeaseSpec`] so remote workers abandon slices whose budget has
    /// already expired; an expired job fails with
    /// [`RouteError::DeadlineExpired`] instead of consuming more fleet.
    pub deadline_ms: Option<u64>,
}

impl QueuePolicy {
    /// The default no-limits policy.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Whether no limit is configured (the inert state).
    pub fn is_unbounded(&self) -> bool {
        self.max_jobs.is_none() && self.max_checkpoint_bytes.is_none() && self.deadline_ms.is_none()
    }
}

/// Structured admission verdict from [`JobQueue::try_submit`]: why the
/// queue refused a job. Callers (the serve binary, the coordinator)
/// surface the reason instead of crashing or blocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The queue already holds [`QueuePolicy::max_jobs`] live jobs.
    QueueFull {
        /// The configured cap.
        max_jobs: usize,
        /// Live jobs at the moment of refusal.
        live: usize,
    },
    /// Live jobs already hold [`QueuePolicy::max_checkpoint_bytes`] of
    /// serialized checkpoint state.
    CheckpointBytes {
        /// The configured cap.
        max_bytes: u64,
        /// Bytes held at the moment of refusal.
        held: u64,
    },
}

impl Rejected {
    /// Stable kebab-case reason tag (metrics labels, wire details).
    pub fn code(&self) -> &'static str {
        match self {
            Self::QueueFull { .. } => "queue-full",
            Self::CheckpointBytes { .. } => "checkpoint-bytes",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { max_jobs, live } => {
                write!(f, "queue full: {live} live jobs at cap {max_jobs}")
            }
            Self::CheckpointBytes { max_bytes, held } => {
                write!(
                    f,
                    "checkpoint budget exhausted: {held} bytes held at cap {max_bytes}"
                )
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// The serve layer's operational metrics, registered on a shared
/// [`MetricsRegistry`] and updated at slice boundaries.
///
/// Everything here is *diagnostic*: the registry observes the queue
/// from the outside and is never consulted by routing decisions, so
/// attaching one changes no deterministic observable — job streams,
/// checkpoints and audits are byte-identical with and without metrics
/// (asserted by `tests/metrics_determinism.rs`). Wall clock touches
/// exactly one cell, `slice_latency_us`.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Runnable jobs at the start of the most recent round.
    pub queue_depth: GaugeHandle,
    /// Wall-clock of one job slice, µs (the only wall-clock metric).
    pub slice_latency_us: HistogramHandle,
    /// Slices executed across all jobs.
    pub slices_total: CounterHandle,
    /// Deletion-loop selections performed across all jobs.
    pub selections_total: CounterHandle,
    /// Deterministic trace events emitted across all jobs.
    pub events_total: CounterHandle,
    /// Serialized checkpoint bytes written at suspensions.
    pub checkpoint_bytes_total: CounterHandle,
    /// Completion audits where every invariant held.
    pub audit_clean_total: CounterHandle,
    /// Completion audits with at least one divergence.
    pub audit_failed_total: CounterHandle,
    /// Cooperative cancellation requests accepted.
    pub cancellations_total: CounterHandle,
    /// Jobs that reached `Completed`.
    pub jobs_completed_total: CounterHandle,
    /// Jobs that reached `Failed` (structural error or failed audit).
    pub jobs_failed_total: CounterHandle,
    /// Submissions refused by the admission policy: queue full.
    pub rejected_queue_full_total: CounterHandle,
    /// Submissions refused by the admission policy: checkpoint budget.
    pub rejected_checkpoint_bytes_total: CounterHandle,
    /// Jobs failed because their wall-clock deadline budget expired.
    pub deadline_missed_total: CounterHandle,
}

impl ServeMetrics {
    /// Registers the serve metric family on `registry`. Idempotent:
    /// registering twice attaches to the same underlying cells.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            queue_depth: registry.gauge(
                "bgr_queue_depth",
                "Runnable jobs at the start of the most recent round",
                &[],
            ),
            slice_latency_us: registry.histogram(
                "bgr_slice_latency_us",
                "Wall-clock latency of one job slice in microseconds",
                &[],
            ),
            slices_total: registry.counter("bgr_slices_total", "Job slices executed", &[]),
            selections_total: registry.counter(
                "bgr_selections_total",
                "Deletion-loop selections performed across all jobs",
                &[],
            ),
            events_total: registry.counter(
                "bgr_trace_events_total",
                "Deterministic trace events emitted across all jobs",
                &[],
            ),
            checkpoint_bytes_total: registry.counter(
                "bgr_checkpoint_bytes_total",
                "Serialized checkpoint bytes written at suspensions",
                &[],
            ),
            audit_clean_total: registry.counter(
                "bgr_audit_total",
                "Completion audits by verdict",
                &[("verdict", "clean")],
            ),
            audit_failed_total: registry.counter(
                "bgr_audit_total",
                "Completion audits by verdict",
                &[("verdict", "failed")],
            ),
            cancellations_total: registry.counter(
                "bgr_cancellations_total",
                "Cooperative cancellation requests accepted",
                &[],
            ),
            jobs_completed_total: registry.counter(
                "bgr_jobs_terminal_total",
                "Jobs that reached a terminal state",
                &[("state", "completed")],
            ),
            jobs_failed_total: registry.counter(
                "bgr_jobs_terminal_total",
                "Jobs that reached a terminal state",
                &[("state", "failed")],
            ),
            rejected_queue_full_total: registry.counter(
                "bgr_jobs_rejected_total",
                "Submissions refused by the admission policy, by reason",
                &[("reason", "queue-full")],
            ),
            rejected_checkpoint_bytes_total: registry.counter(
                "bgr_jobs_rejected_total",
                "Submissions refused by the admission policy, by reason",
                &[("reason", "checkpoint-bytes")],
            ),
            deadline_missed_total: registry.counter(
                "bgr_deadline_missed_total",
                "Jobs failed because their wall-clock deadline budget expired",
                &[],
            ),
        }
    }
}

/// Where a job stands in its lifecycle (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Submitted; no slice has run yet.
    Created,
    /// A slice is executing right now (transient — never observed
    /// between [`JobQueue::run_round`] calls).
    Running,
    /// Parked at a checkpoint; the next round resumes it (unless
    /// cancelled).
    Suspended,
    /// Finished with a clean independent audit.
    Completed,
    /// A structured error ([`Job::error`]) or a failed audit
    /// ([`Job::audit`]) stopped the job.
    Failed,
}

impl SessionState {
    /// Stable snake_case label (used in stream records).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Created => "created",
            Self::Running => "running",
            Self::Suspended => "suspended",
            Self::Completed => "completed",
            Self::Failed => "failed",
        }
    }

    /// Whether the job can never advance again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Self::Completed | Self::Failed)
    }
}

/// One routing session managed by the queue.
#[derive(Debug)]
pub struct Job {
    name: String,
    circuit: Circuit,
    placement: Placement,
    constraints: Vec<PathConstraint>,
    config: RouterConfig,
    /// Max deletion-loop selections per slice (`None` = run each stage
    /// to its natural end).
    slice_quota: Option<u64>,
    /// Wall-clock budget in ms from the governing [`QueuePolicy`]
    /// (`None` = no deadline — the inert default).
    deadline_ms: Option<u64>,
    /// When the budget runs out; armed at first materialization.
    deadline_at: Option<Instant>,
    /// Remaining-budget value frozen into the [`LeaseSpec`] of the
    /// current slice, keyed by slice index — expiry-driven re-grants
    /// must hand out the *identical* spec (DESIGN.md §15 rule 3), so
    /// the remaining budget is computed once per slice, not per grant.
    spec_deadline: Option<(u64, u64)>,
    state: SessionState,
    checkpoint: Option<String>,
    stream: String,
    cancelled: bool,
    stage: &'static str,
    slices: u64,
    events_emitted: u64,
    selections_done: u64,
    error: Option<RouteError>,
    audit: Option<AuditReport>,
    routed: Option<Routed>,
    verdict: Option<FinishVerdict>,
}

impl Job {
    /// The submitted name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The serialized checkpoint of the last suspension, if any.
    pub fn checkpoint(&self) -> Option<&str> {
        self.checkpoint.as_deref()
    }

    /// The accumulated JSONL stream (trace events + progress records).
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// Whether [`JobQueue::cancel`] parked this job.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Stable label of the pipeline stage the job is parked at.
    pub fn stage(&self) -> &'static str {
        self.stage
    }

    /// Slices executed so far.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Deterministic trace events emitted across all slices.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Deletion-loop selections performed across all slices.
    pub fn selections_done(&self) -> u64 {
        self.selections_done
    }

    /// The structured error that failed the job, if one did.
    pub fn error(&self) -> Option<&RouteError> {
        self.error.as_ref()
    }

    /// The completion audit (present on `Completed` and on `Failed`
    /// when the route finished but the audit flagged it).
    pub fn audit(&self) -> Option<&AuditReport> {
        self.audit.as_ref()
    }

    /// The finished route (present once the session completed, even if
    /// the audit then failed it). Absent when the finishing slice ran on
    /// a remote worker — the wire ships the [`FinishVerdict`] instead.
    pub fn routed(&self) -> Option<&Routed> {
        self.routed.as_ref()
    }

    /// The deterministic completion verdict (present once the session
    /// finished, locally or remotely).
    pub fn verdict(&self) -> Option<&FinishVerdict> {
        self.verdict.as_ref()
    }

    /// The job's wall-clock budget in milliseconds, when governed.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    fn runnable(&self) -> bool {
        !self.state.is_terminal() && !self.cancelled
    }

    fn deadline_expired(&self) -> bool {
        self.deadline_at.is_some_and(|at| Instant::now() >= at)
    }

    fn fail(&mut self, err: RouteError) {
        self.stream_record(&format!(
            "{{\"type\":\"done\",\"slice\":{},\"state\":\"failed\"}}",
            self.slices
        ));
        self.error = Some(err);
        self.state = SessionState::Failed;
    }

    fn stream_record(&mut self, line: &str) {
        self.stream.push_str(line);
        self.stream.push('\n');
    }

    fn progress_record(&mut self) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"progress\",\"slice\":{},\"stage\":\"{}\",\"selections\":{},\"events\":{}}}",
            self.slices, self.stage, self.selections_done, self.events_emitted
        );
        self.stream_record(&line);
    }

    /// Starts the session and parks it at a step-0 checkpoint without
    /// advancing, so *every* slice — local round or remote lease — runs
    /// from a checkpoint through [`run_slice`]. Setup events (feed
    /// assignment, graph build) land in the stream at offset 0, exactly
    /// where the monolithic run puts them; the first real slice then
    /// continues at the checkpoint's embedded `seq` offset, keeping the
    /// concatenated stream byte-identical to the pre-distributed path.
    fn materialize_checkpoint(&mut self) -> Result<(), RouteError> {
        // The deadline clock starts at the job's first activity, not at
        // submission, so a job parked behind a long backlog gets its
        // full budget once it finally runs.
        if self.deadline_at.is_none() {
            if let Some(ms) = self.deadline_ms {
                self.deadline_at = Some(Instant::now() + Duration::from_millis(ms));
            }
        }
        if self.checkpoint.is_some() {
            return Ok(());
        }
        let session = RouteSession::start(
            self.config.clone(),
            self.circuit.clone(),
            self.placement.clone(),
            self.constraints.clone(),
            CollectingProbe::new(),
        )?;
        let snap = session.snapshot();
        self.stage = snap.stage.label();
        self.events_emitted = snap.events_emitted;
        self.selections_done = session.selections_done();
        self.checkpoint = Some(write_checkpoint(&snap));
        let trace = session.into_probe().finish();
        self.stream
            .push_str(&deterministic_event_lines(&write_trace_jsonl_offset(
                &trace, 0,
            )));
        Ok(())
    }

    /// Folds a [`SliceOutcome`] into the job — the one place slice
    /// results become job state, shared by the local round path and
    /// [`JobQueue::apply_remote`].
    fn apply_outcome(&mut self, out: SliceOutcome) {
        match out {
            SliceOutcome::Suspended {
                checkpoint,
                stage,
                events_emitted,
                selections_done,
                events_jsonl,
            } => {
                self.slices += 1;
                self.stage = stage;
                self.events_emitted = events_emitted;
                self.selections_done = selections_done;
                self.checkpoint = Some(checkpoint);
                self.stream.push_str(&events_jsonl);
                self.progress_record();
                self.state = SessionState::Suspended;
            }
            SliceOutcome::Finished {
                events_emitted,
                selections_done,
                events_jsonl,
                verdict,
                routed,
                report,
            } => {
                self.slices += 1;
                self.stage = SessionStage::Finished.label();
                self.events_emitted = events_emitted;
                self.selections_done = selections_done;
                self.checkpoint = None;
                self.stream.push_str(&events_jsonl);
                let clean = verdict.audit_clean;
                // One-line `Display`s of the audit and (when present)
                // the residual-violation report embed as single JSON
                // strings — both deterministic, so the stream stays
                // thread-count invariant, and both carried by the
                // verdict so a remotely finished job writes the same
                // bytes a local finish would.
                let mut line = format!(
                    "{{\"type\":\"done\",\"slice\":{},\"state\":\"{}\",\"audit_clean\":{clean},\"checks\":{},\"audit\":\"{}\"",
                    self.slices,
                    if clean { "completed" } else { "failed" },
                    verdict.audit_checks,
                    escape_json(&verdict.audit_line),
                );
                if let Some(v) = &verdict.violations_line {
                    let _ = write!(line, ",\"violations\":\"{}\"", escape_json(v));
                }
                line.push('}');
                self.stream_record(&line);
                self.audit = report;
                self.routed = routed.map(|b| *b);
                self.verdict = Some(verdict);
                self.state = if clean {
                    SessionState::Completed
                } else {
                    SessionState::Failed
                };
            }
            SliceOutcome::Failed { error } => self.fail(error),
        }
    }

    /// Runs one slice in-process: materialize the first checkpoint if
    /// needed, then [`run_slice`] → [`Job::apply_outcome`]. Local
    /// rounds and remote leases thus execute the identical slice code.
    fn advance_slice(&mut self) {
        self.state = SessionState::Running;
        if let Err(e) = self.materialize_checkpoint() {
            return self.fail(e);
        }
        if self.deadline_expired() {
            return self.fail(RouteError::DeadlineExpired {
                budget_ms: self.deadline_ms.unwrap_or(0),
            });
        }
        // A missing checkpoint after a successful materialization is an
        // internal invariant violation; it degrades this one job with a
        // structured error instead of tearing the process down.
        let Some(checkpoint) = self.checkpoint.clone() else {
            return self.fail(RouteError::Internal {
                phase: "serve",
                message: "runnable job has no checkpoint after materialization".into(),
            });
        };
        let out = run_slice(&checkpoint, self.slice_quota);
        self.apply_outcome(out);
    }
}

/// A leasable unit of work: everything a worker needs to run one slice
/// of a job, with no reference back to in-process state — the
/// checkpoint embeds the design and configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseSpec {
    /// Queue id of the job this lease advances.
    pub job: usize,
    /// The slice index this lease will produce (the job's current
    /// [`Job::slices`] count). Results for any other index are stale
    /// and rejected by [`JobQueue::apply_remote`].
    pub slice: u64,
    /// The job's per-slice selection quota.
    pub quota: Option<u64>,
    /// Remaining wall-clock budget in ms under the queue's
    /// [`QueuePolicy::deadline_ms`], frozen per slice so re-grants are
    /// identical. `Some(0)` means the budget already expired: a worker
    /// receiving this abandons the slice with
    /// [`RouteError::DeadlineExpired`] instead of routing. `None` = no
    /// deadline governance (the inert default).
    pub deadline_ms: Option<u64>,
    /// The serialized checkpoint the slice resumes from.
    pub checkpoint: String,
}

/// A queue of routing jobs advanced in budgeted, checkpointed slices.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: Vec<Job>,
    metrics: Option<ServeMetrics>,
    policy: QueuePolicy,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue reporting into `registry` (see [`ServeMetrics`]).
    pub fn with_metrics(registry: &MetricsRegistry) -> Self {
        Self {
            jobs: Vec::new(),
            metrics: Some(ServeMetrics::register(registry)),
            policy: QueuePolicy::default(),
        }
    }

    /// Attaches (or replaces) the queue's metrics sink.
    pub fn attach_metrics(&mut self, metrics: ServeMetrics) {
        self.metrics = Some(metrics);
    }

    /// Installs (or replaces) the queue's admission policy. Only
    /// [`JobQueue::try_submit`] consults it; jobs already admitted keep
    /// the deadline they were stamped with.
    pub fn set_policy(&mut self, policy: QueuePolicy) {
        self.policy = policy;
    }

    /// The governing admission policy (unbounded by default).
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Live (non-terminal) jobs currently held.
    pub fn live_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| !j.state.is_terminal()).count()
    }

    /// Serialized checkpoint bytes held by live jobs — the quantity
    /// [`QueuePolicy::max_checkpoint_bytes`] bounds.
    pub fn held_checkpoint_bytes(&self) -> u64 {
        self.jobs
            .iter()
            .filter(|j| !j.state.is_terminal())
            .filter_map(|j| j.checkpoint.as_ref())
            .map(|c| c.len() as u64)
            .sum()
    }

    fn admission_verdict(&self) -> Result<(), Rejected> {
        if let Some(max_jobs) = self.policy.max_jobs {
            let live = self.live_jobs();
            if live >= max_jobs {
                return Err(Rejected::QueueFull { max_jobs, live });
            }
        }
        if let Some(max_bytes) = self.policy.max_checkpoint_bytes {
            let held = self.held_checkpoint_bytes();
            if held >= max_bytes {
                return Err(Rejected::CheckpointBytes { max_bytes, held });
            }
        }
        Ok(())
    }

    fn count_rejection(&self, verdict: &Rejected) {
        if let Some(m) = &self.metrics {
            match verdict {
                Rejected::QueueFull { .. } => m.rejected_queue_full_total.inc(),
                Rejected::CheckpointBytes { .. } => m.rejected_checkpoint_bytes_total.inc(),
            }
        }
    }

    /// Submits a job; returns its id (stable index into the queue).
    /// `slice_quota` bounds the deletion-loop selections a single slice
    /// may perform (`None` = whole stages per slice).
    ///
    /// This is the ungoverned intake: the [`QueuePolicy`] is *not*
    /// consulted and no deadline is stamped, so pre-governance callers
    /// keep byte-identical behavior. Bounded intake goes through
    /// [`JobQueue::try_submit`].
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
        config: RouterConfig,
        slice_quota: Option<u64>,
    ) -> usize {
        self.push_job(
            name.into(),
            circuit,
            placement,
            constraints,
            config,
            slice_quota,
            None,
        )
    }

    /// Governed intake: checks the [`QueuePolicy`] and either admits
    /// the job (stamping the policy's deadline budget on it) or returns
    /// a structured [`Rejected`] verdict. With the default unbounded
    /// policy this is exactly [`JobQueue::submit`].
    ///
    /// # Errors
    ///
    /// [`Rejected`] when a configured limit is at capacity; the queue
    /// is unchanged and the refusal is counted in
    /// `bgr_jobs_rejected_total` when metrics are attached.
    #[allow(clippy::too_many_arguments)]
    pub fn try_submit(
        &mut self,
        name: impl Into<String>,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
        config: RouterConfig,
        slice_quota: Option<u64>,
    ) -> Result<usize, Rejected> {
        if let Err(verdict) = self.admission_verdict() {
            self.count_rejection(&verdict);
            return Err(verdict);
        }
        Ok(self.push_job(
            name.into(),
            circuit,
            placement,
            constraints,
            config,
            slice_quota,
            self.policy.deadline_ms,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn push_job(
        &mut self,
        name: String,
        circuit: Circuit,
        placement: Placement,
        constraints: Vec<PathConstraint>,
        config: RouterConfig,
        slice_quota: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> usize {
        self.jobs.push(Job {
            name,
            circuit,
            placement,
            constraints,
            config,
            slice_quota,
            deadline_ms,
            deadline_at: None,
            spec_deadline: None,
            state: SessionState::Created,
            checkpoint: None,
            stream: String::new(),
            cancelled: false,
            stage: "setup",
            slices: 0,
            events_emitted: 0,
            selections_done: 0,
            error: None,
            audit: None,
            routed: None,
            verdict: None,
        });
        self.jobs.len() - 1
    }

    /// The job behind an id.
    ///
    /// # Panics
    ///
    /// Panics on an id [`JobQueue::submit`] never returned.
    pub fn job(&self, id: usize) -> &Job {
        &self.jobs[id]
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Requests cooperative cancellation: the job stops at its next
    /// slice boundary and parks as `Suspended` with its checkpoint
    /// intact. No-op on terminal jobs.
    ///
    /// # Panics
    ///
    /// Panics on an id [`JobQueue::submit`] never returned.
    pub fn cancel(&mut self, id: usize) {
        if !self.jobs[id].state.is_terminal() {
            if !self.jobs[id].cancelled {
                if let Some(m) = &self.metrics {
                    m.cancellations_total.inc();
                }
            }
            self.jobs[id].cancelled = true;
        }
    }

    /// Clears a cancellation; the job resumes from its checkpoint on
    /// the next round.
    ///
    /// # Panics
    ///
    /// Panics on an id [`JobQueue::submit`] never returned.
    pub fn reactivate(&mut self, id: usize) {
        self.jobs[id].cancelled = false;
    }

    /// Whether no job can advance (every job terminal or cancelled).
    pub fn settled(&self) -> bool {
        self.jobs.iter().all(|j| !j.runnable())
    }

    /// Advances every runnable job by one slice, fanning the slices
    /// over `threads` workers. Returns how many jobs advanced.
    ///
    /// Slices are independent (each owns its job's state), and
    /// `scoped_map` preserves submission order, so round outcomes are
    /// deterministic for any thread count.
    pub fn run_round(&mut self, threads: usize) -> usize {
        let metrics = self.metrics.clone();
        let mut active: Vec<&mut Job> = self.jobs.iter_mut().filter(|j| j.runnable()).collect();
        if let Some(m) = &metrics {
            m.queue_depth.set(active.len() as i64);
        }
        if active.is_empty() {
            return 0;
        }
        par::scoped_map(threads, &mut active, |job| match &metrics {
            None => job.advance_slice(),
            Some(m) => {
                let before_selections = job.selections_done;
                let before_events = job.events_emitted;
                let had_audit = job.audit.is_some();
                let start = Instant::now();
                job.advance_slice();
                m.slice_latency_us
                    .observe(start.elapsed().as_micros() as u64);
                m.slices_total.inc();
                m.selections_total
                    .add(job.selections_done - before_selections);
                m.events_total.add(job.events_emitted - before_events);
                if let Some(cp) = &job.checkpoint {
                    m.checkpoint_bytes_total.add(cp.len() as u64);
                }
                if !had_audit {
                    if let Some(report) = &job.audit {
                        if report.is_clean() {
                            m.audit_clean_total.inc();
                        } else {
                            m.audit_failed_total.inc();
                        }
                    }
                }
                match job.state {
                    SessionState::Completed => m.jobs_completed_total.inc(),
                    SessionState::Failed => {
                        m.jobs_failed_total.inc();
                        if matches!(job.error, Some(RouteError::DeadlineExpired { .. })) {
                            m.deadline_missed_total.inc();
                        }
                    }
                    _ => {}
                }
            }
        });
        active.len()
    }

    /// Rounds until the queue settles; returns the number of rounds.
    pub fn run(&mut self, threads: usize) -> usize {
        let mut rounds = 0;
        while self.run_round(threads) > 0 {
            rounds += 1;
        }
        rounds
    }

    /// Submits a job that starts from an existing serialized checkpoint
    /// instead of raw design inputs — the speculative-portfolio path:
    /// fan one suspended checkpoint under several configuration arms
    /// (see `bgr_io::reconfigure_checkpoint`) and race them.
    ///
    /// The job parks `Suspended` with its counters adopted from the
    /// snapshot; its stream begins at the checkpoint (earlier slices
    /// belong to whichever job produced it).
    ///
    /// # Errors
    ///
    /// Structured [`RouteError::Checkpoint`] when `checkpoint` does not
    /// parse.
    pub fn submit_checkpoint(
        &mut self,
        name: impl Into<String>,
        checkpoint: &str,
        slice_quota: Option<u64>,
    ) -> Result<usize, RouteError> {
        let snap = parse_checkpoint(checkpoint).map_err(|e| RouteError::Checkpoint {
            message: e.to_string(),
        })?;
        self.jobs.push(Job {
            name: name.into(),
            circuit: snap.circuit,
            placement: snap.placement,
            constraints: snap.constraints,
            config: snap.config,
            slice_quota,
            deadline_ms: None,
            deadline_at: None,
            spec_deadline: None,
            state: SessionState::Suspended,
            checkpoint: Some(checkpoint.to_string()),
            stream: String::new(),
            cancelled: false,
            stage: snap.stage.label(),
            slices: 0,
            events_emitted: snap.events_emitted,
            selections_done: snap.stats.selection_log.len() as u64,
            error: None,
            audit: None,
            routed: None,
            verdict: None,
        });
        Ok(self.jobs.len() - 1)
    }

    /// The next leasable slice of job `id`, materializing the first
    /// checkpoint of a `Created` job on demand. Returns `Ok(None)` for
    /// terminal or cancelled jobs.
    ///
    /// Leasing consumes nothing: the identical spec is returned until a
    /// result for it is applied, which is what makes expiry-driven
    /// re-leasing deterministic — every worker handed this lease
    /// computes the same [`SliceOutcome`].
    ///
    /// # Errors
    ///
    /// Propagates the structured error when materializing the first
    /// checkpoint fails (the job is failed as a side effect, exactly as
    /// a local round would).
    ///
    /// # Panics
    ///
    /// Panics on an id [`JobQueue::submit`] never returned.
    pub fn lease_spec(&mut self, id: usize) -> Result<Option<LeaseSpec>, RouteError> {
        if !self.jobs[id].runnable() {
            return Ok(None);
        }
        if self.jobs[id].checkpoint.is_none() {
            if let Err(e) = self.jobs[id].materialize_checkpoint() {
                self.jobs[id].fail(e.clone());
                if let Some(m) = &self.metrics {
                    m.jobs_failed_total.inc();
                }
                return Err(e);
            }
        }
        let job = &mut self.jobs[id];
        // Freeze the remaining deadline budget once per slice: an
        // expiry-driven re-grant of the same slice must hand out the
        // byte-identical spec (DESIGN.md §15 rule 3), so the wall clock
        // is consulted only when the slice index moves.
        let deadline_ms = job.deadline_at.map(|at| {
            let slice = job.slices;
            match job.spec_deadline {
                Some((s, ms)) if s == slice => ms,
                _ => {
                    let ms = at
                        .saturating_duration_since(Instant::now())
                        .as_millis()
                        .min(u128::from(u64::MAX)) as u64;
                    job.spec_deadline = Some((slice, ms));
                    ms
                }
            }
        });
        let Some(checkpoint) = job.checkpoint.clone() else {
            // Invariant violation (runnable job, no checkpoint after a
            // successful materialization): degrade the one job with a
            // structured error instead of panicking the coordinator.
            let e = RouteError::Internal {
                phase: "serve",
                message: "runnable job has no checkpoint after materialization".into(),
            };
            self.jobs[id].fail(e.clone());
            if let Some(m) = &self.metrics {
                m.jobs_failed_total.inc();
            }
            return Err(e);
        };
        let job = &self.jobs[id];
        Ok(Some(LeaseSpec {
            job: id,
            slice: job.slices,
            quota: job.slice_quota,
            deadline_ms,
            checkpoint,
        }))
    }

    /// Applies a slice outcome computed elsewhere (a worker draining a
    /// lease). Accepted only when `slice` equals the job's current
    /// [`Job::slices`] count and the job can still advance — duplicate
    /// results from expired-and-reassigned leases and stale
    /// re-deliveries return `false` and change nothing. Acceptance is
    /// deterministic despite racing workers because any worker's
    /// outcome for a given `(checkpoint, quota)` lease is
    /// byte-identical, so *which* duplicate lands first cannot matter.
    ///
    /// The outcome's trace segment is validated with
    /// [`bgr_io::segment_seq_span`] before splicing: every line must be
    /// a parsable `"type":"event"` record whose `seq` numbers
    /// contiguously continue the job's stream (first = the job's
    /// [`Job::events_emitted`], last + 1 = the outcome's
    /// `events_emitted`). A truncated, reordered, or otherwise damaged
    /// segment is rejected (`false`, job unchanged and still leasable)
    /// instead of silently corrupting the stream.
    ///
    /// Updates the queue's metrics exactly as a local round would,
    /// except `bgr_slice_latency_us`: a remote slice's wall clock is
    /// observed by the worker's own registry and folded in via
    /// snapshot merging, not re-measured here.
    ///
    /// # Panics
    ///
    /// Panics on an id [`JobQueue::submit`] never returned.
    pub fn apply_remote(&mut self, id: usize, slice: u64, out: SliceOutcome) -> bool {
        {
            let job = &self.jobs[id];
            if !job.runnable() || slice != job.slices {
                return false;
            }
            if let SliceOutcome::Suspended {
                events_emitted,
                events_jsonl,
                ..
            }
            | SliceOutcome::Finished {
                events_emitted,
                events_jsonl,
                ..
            } = &out
            {
                let contiguous = match segment_seq_span(events_jsonl) {
                    Ok(Some((first, last))) => {
                        first == job.events_emitted && last.checked_add(1) == Some(*events_emitted)
                    }
                    Ok(None) => *events_emitted == job.events_emitted,
                    Err(_) => false,
                };
                if !contiguous {
                    return false;
                }
            }
        }
        let job = &mut self.jobs[id];
        let before_selections = job.selections_done;
        let before_events = job.events_emitted;
        let had_verdict = job.verdict.is_some();
        job.apply_outcome(out);
        if let Some(m) = &self.metrics {
            let job = &self.jobs[id];
            m.slices_total.inc();
            m.selections_total
                .add(job.selections_done - before_selections);
            m.events_total.add(job.events_emitted - before_events);
            if let Some(cp) = &job.checkpoint {
                m.checkpoint_bytes_total.add(cp.len() as u64);
            }
            if !had_verdict {
                if let Some(verdict) = &job.verdict {
                    if verdict.audit_clean {
                        m.audit_clean_total.inc();
                    } else {
                        m.audit_failed_total.inc();
                    }
                }
            }
            match job.state {
                SessionState::Completed => m.jobs_completed_total.inc(),
                SessionState::Failed => {
                    m.jobs_failed_total.inc();
                    if matches!(job.error, Some(RouteError::DeadlineExpired { .. })) {
                        m.deadline_missed_total.inc();
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// Replays journaled slice outcomes in order, applying each through
    /// [`JobQueue::apply_remote`]'s full validation — so a torn,
    /// duplicated, or stale record is counted and skipped, never
    /// spliced. The queue must hold the same jobs (same submission
    /// order) as the run that produced the journal; after replay it is
    /// in exactly the state the original coordinator had when it last
    /// journaled, and the drain can resume from there.
    pub fn replay(
        &mut self,
        outcomes: impl IntoIterator<Item = (usize, u64, SliceOutcome)>,
    ) -> ReplayStats {
        let mut stats = ReplayStats::default();
        for (id, slice, out) in outcomes {
            if id < self.jobs.len() {
                // The run that wrote the journal materialized the first
                // checkpoint (emitting the deterministic setup events)
                // before any slice executed; replay must do the same or
                // the first record's event span has nothing to anchor
                // to. A materialization failure fails the job exactly
                // as it would have live, and the record lands stale.
                let _ = self.lease_spec(id);
            }
            if id < self.jobs.len() && self.apply_remote(id, slice, out) {
                stats.applied += 1;
            } else {
                stats.stale += 1;
            }
        }
        stats
    }
}

/// What a journal replay applied (see [`JobQueue::replay`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records that advanced a job.
    pub applied: u64,
    /// Records rejected by validation (stale duplicates, unknown jobs).
    pub stale: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::GlobalRouter;
    use bgr_io::write_trace_jsonl;

    fn small_case(seed: u64) -> (Circuit, Placement, Vec<PathConstraint>) {
        let params = bgr_gen::GenParams::small(seed);
        let design = bgr_gen::generate(&params);
        let placement = bgr_gen::place_design(&design, &params, bgr_gen::PlacementStyle::EvenFeed);
        (design.circuit, placement, design.constraints)
    }

    /// Event lines of the uninterrupted route of the same inputs.
    fn monolithic_events(
        circuit: &Circuit,
        placement: &Placement,
        cons: &[PathConstraint],
        config: &RouterConfig,
    ) -> String {
        let (_, trace) = GlobalRouter::new(config.clone())
            .route_traced(circuit.clone(), placement.clone(), cons.to_vec())
            .unwrap();
        deterministic_event_lines(&write_trace_jsonl(&trace))
    }

    #[test]
    fn queue_drains_jobs_to_audited_completion() {
        let mut q = JobQueue::new();
        let config = RouterConfig::default();
        let mut want = Vec::new();
        for (i, seed) in [3u64, 11, 42].iter().enumerate() {
            let (c, p, k) = small_case(*seed);
            want.push(monolithic_events(&c, &p, &k, &config));
            let quota = if i == 0 { None } else { Some(4 * i as u64) };
            q.submit(format!("job{i}"), c, p, k, config.clone(), quota);
        }
        let rounds = q.run(4);
        assert!(rounds > 1, "quota'd jobs must take multiple rounds");
        for (i, job) in q.jobs().iter().enumerate() {
            assert_eq!(job.state(), SessionState::Completed, "{:?}", job.error());
            assert!(job.audit().unwrap().is_clean());
            assert!(job.routed().is_some());
            assert!(
                job.checkpoint().is_none(),
                "completed job keeps no checkpoint"
            );
            // The concatenated per-slice event lines are byte-identical
            // to the uninterrupted run's — seq numbers included.
            assert_eq!(
                deterministic_event_lines(job.stream()),
                want[i],
                "job {i} stream diverged"
            );
            assert!(job.stream().contains("\"type\":\"done\""));
            // The audit's stable one-line `Display` is embedded in the
            // done record verbatim.
            let want_audit = format!(
                "\"audit\":\"{}\"",
                escape_json(&job.audit().unwrap().to_string())
            );
            assert!(job.stream().contains(&want_audit), "{}", job.stream());
            assert!(job.stream().contains("\"audit\":\"audit clean: "));
        }
        assert!(q.settled());
    }

    #[test]
    fn metrics_observe_the_queue_without_touching_streams() {
        let config = RouterConfig::default();
        let registry = MetricsRegistry::new();
        let mut plain = JobQueue::new();
        let mut metered = JobQueue::with_metrics(&registry);
        for seed in [3u64, 11] {
            let (c, p, k) = small_case(seed);
            plain.submit(
                format!("s{seed}"),
                c.clone(),
                p.clone(),
                k.clone(),
                config.clone(),
                Some(4),
            );
            metered.submit(format!("s{seed}"), c, p, k, config.clone(), Some(4));
        }
        metered.cancel(1);
        metered.reactivate(1);
        plain.run(2);
        metered.run(2);

        // Deterministic observables are byte-identical with and
        // without a registry attached.
        for (a, b) in plain.jobs().iter().zip(metered.jobs()) {
            assert_eq!(a.stream(), b.stream());
            assert_eq!(a.state(), b.state());
        }

        let m = ServeMetrics::register(&registry); // idempotent re-attach
        let slices: u64 = metered.jobs().iter().map(|j| j.slices()).sum();
        let selections: u64 = metered.jobs().iter().map(|j| j.selections_done()).sum();
        let events: u64 = metered.jobs().iter().map(|j| j.events_emitted()).sum();
        assert_eq!(m.slices_total.get(), slices);
        assert_eq!(m.selections_total.get(), selections);
        assert_eq!(m.events_total.get(), events);
        assert_eq!(m.slice_latency_us.count(), slices);
        assert_eq!(m.audit_clean_total.get(), 2);
        assert_eq!(m.audit_failed_total.get(), 0);
        assert_eq!(m.jobs_completed_total.get(), 2);
        assert_eq!(m.jobs_failed_total.get(), 0);
        assert_eq!(m.cancellations_total.get(), 1);
        assert!(m.checkpoint_bytes_total.get() > 0, "quota'd jobs suspend");
        assert_eq!(m.queue_depth.get(), 0, "settled queue reports empty");

        let text = registry.render_prometheus();
        for name in [
            "bgr_queue_depth",
            "bgr_slice_latency_us_bucket",
            "bgr_slices_total",
            "bgr_selections_total",
            "bgr_trace_events_total",
            "bgr_checkpoint_bytes_total",
            "bgr_audit_total{verdict=\"clean\"}",
            "bgr_jobs_terminal_total{state=\"completed\"}",
            "bgr_cancellations_total",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn round_outcomes_match_across_thread_counts() {
        let config = RouterConfig::default();
        let mut streams: Vec<Vec<String>> = Vec::new();
        for threads in [1, 4] {
            let mut q = JobQueue::new();
            for seed in [5u64, 9] {
                let (c, p, k) = small_case(seed);
                q.submit(format!("s{seed}"), c, p, k, config.clone(), Some(3));
            }
            q.run(threads);
            streams.push(q.jobs().iter().map(|j| j.stream().to_string()).collect());
        }
        assert_eq!(streams[0], streams[1]);
    }

    #[test]
    fn cancellation_parks_and_reactivation_continues_identically() {
        let config = RouterConfig::default();
        let (c, p, k) = small_case(17);
        let want = monolithic_events(&c, &p, &k, &config);

        let mut q = JobQueue::new();
        let id = q.submit("cancel-me", c, p, k, config, Some(2));
        assert_eq!(q.job(id).state(), SessionState::Created);
        q.run_round(2);
        assert_eq!(q.job(id).state(), SessionState::Suspended);
        q.cancel(id);
        assert_eq!(q.run(2), 0, "cancelled job must not advance");
        assert_eq!(q.job(id).state(), SessionState::Suspended);
        assert!(q.job(id).is_cancelled());
        let checkpoint = q.job(id).checkpoint().unwrap().to_string();
        assert!(checkpoint.starts_with("bgr-checkpoint v1"));
        assert!(q.settled());

        q.reactivate(id);
        q.run(2);
        assert_eq!(q.job(id).state(), SessionState::Completed);
        assert_eq!(deterministic_event_lines(q.job(id).stream()), want);
    }

    #[test]
    fn apply_remote_rejects_damaged_trace_segments() {
        let config = RouterConfig::default();
        let (c, p, k) = small_case(29);
        let mut q = JobQueue::new();
        let id = q.submit("remote", c, p, k, config, Some(2));
        let spec = q.lease_spec(id).unwrap().unwrap();
        let out = run_slice(&spec.checkpoint, spec.quota);
        let SliceOutcome::Suspended {
            checkpoint,
            stage,
            events_emitted,
            selections_done,
            events_jsonl,
        } = out
        else {
            panic!("quota 2 must suspend");
        };
        assert!(
            events_jsonl.lines().count() >= 2,
            "damage variants below need at least two event lines"
        );
        let stream_before = q.job(id).stream().to_string();

        // Each damaged variant of the honest segment must be rejected
        // with the job unchanged and still leasable.
        let truncated = events_jsonl
            .lines()
            .skip(1)
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        let reordered = {
            let mut lines: Vec<&str> = events_jsonl.lines().collect();
            lines.reverse();
            lines.iter().map(|l| format!("{l}\n")).collect::<String>()
        };
        for damaged in [truncated, reordered, "not json\n".to_string()] {
            let out = SliceOutcome::Suspended {
                checkpoint: checkpoint.clone(),
                stage,
                events_emitted,
                selections_done,
                events_jsonl: damaged,
            };
            assert!(!q.apply_remote(id, spec.slice, out));
            assert_eq!(q.job(id).stream(), stream_before);
            assert_eq!(q.job(id).slices(), spec.slice);
        }

        // The honest segment is accepted.
        assert!(q.apply_remote(
            id,
            spec.slice,
            SliceOutcome::Suspended {
                checkpoint,
                stage,
                events_emitted,
                selections_done,
                events_jsonl,
            }
        ));
        assert_eq!(q.job(id).slices(), spec.slice + 1);
    }

    #[test]
    fn untripped_policy_is_byte_identical_to_no_policy() {
        let config = RouterConfig::default();
        let mut plain = JobQueue::new();
        let mut governed = JobQueue::new();
        governed.set_policy(QueuePolicy {
            max_jobs: Some(64),
            max_checkpoint_bytes: Some(u64::MAX),
            deadline_ms: Some(3_600_000),
        });
        assert!(!governed.policy().is_unbounded());
        for seed in [3u64, 11] {
            let (c, p, k) = small_case(seed);
            plain.submit(
                format!("s{seed}"),
                c.clone(),
                p.clone(),
                k.clone(),
                config.clone(),
                Some(4),
            );
            governed
                .try_submit(format!("s{seed}"), c, p, k, config.clone(), Some(4))
                .expect("generous limits admit everything");
        }
        plain.run(2);
        governed.run(2);
        for (a, b) in plain.jobs().iter().zip(governed.jobs()) {
            assert_eq!(a.stream(), b.stream(), "governance-on-untripped diverged");
            assert_eq!(a.state(), b.state());
        }
    }

    #[test]
    fn admission_limits_trip_with_structured_verdicts() {
        let config = RouterConfig::default();
        let registry = MetricsRegistry::new();
        let mut q = JobQueue::with_metrics(&registry);
        q.set_policy(QueuePolicy {
            max_jobs: Some(2),
            max_checkpoint_bytes: None,
            deadline_ms: None,
        });
        for seed in [3u64, 11] {
            let (c, p, k) = small_case(seed);
            q.try_submit(format!("s{seed}"), c, p, k, config.clone(), Some(4))
                .expect("under the cap");
        }
        let (c, p, k) = small_case(42);
        match q.try_submit("over", c, p, k, config.clone(), Some(4)) {
            Err(Rejected::QueueFull {
                max_jobs: 2,
                live: 2,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }

        // Terminal jobs release their admission slot.
        q.run(2);
        assert_eq!(q.live_jobs(), 0);
        let (c, p, k) = small_case(42);
        let id = q
            .try_submit("after-drain", c, p, k, config.clone(), Some(4))
            .expect("drained queue admits again");

        // The bytes cap counts live parked checkpoints.
        q.run_round(1);
        assert!(q.held_checkpoint_bytes() > 0);
        q.set_policy(QueuePolicy {
            max_jobs: None,
            max_checkpoint_bytes: Some(1),
            deadline_ms: None,
        });
        let (c, p, k) = small_case(7);
        match q.try_submit("bytes", c, p, k, config.clone(), None) {
            Err(v @ Rejected::CheckpointBytes { max_bytes: 1, .. }) => {
                assert_eq!(v.code(), "checkpoint-bytes");
                assert!(v.to_string().contains("checkpoint budget"));
            }
            other => panic!("expected CheckpointBytes, got {other:?}"),
        }
        let m = ServeMetrics::register(&registry);
        assert_eq!(m.rejected_queue_full_total.get(), 1);
        assert_eq!(m.rejected_checkpoint_bytes_total.get(), 1);
        q.reactivate(id); // quiet unused warnings: id stays live
        let _ = q.job(id);
    }

    #[test]
    fn expired_deadline_sheds_the_job_with_a_structured_error() {
        let config = RouterConfig::default();
        let registry = MetricsRegistry::new();
        let mut q = JobQueue::with_metrics(&registry);
        q.set_policy(QueuePolicy {
            max_jobs: None,
            max_checkpoint_bytes: None,
            deadline_ms: Some(0),
        });
        let (c, p, k) = small_case(13);
        let id = q
            .try_submit("doomed", c, p, k, config.clone(), Some(4))
            .expect("admission is separate from deadline");
        assert_eq!(q.job(id).deadline_ms(), Some(0));

        // The lease spec a worker would receive carries the exhausted
        // budget, and re-requesting it yields the identical spec.
        let spec = q.lease_spec(id).unwrap().unwrap();
        assert_eq!(spec.deadline_ms, Some(0));
        assert_eq!(q.lease_spec(id).unwrap().unwrap(), spec);

        q.run(1);
        assert_eq!(q.job(id).state(), SessionState::Failed);
        assert!(
            matches!(
                q.job(id).error(),
                Some(RouteError::DeadlineExpired { budget_ms: 0 })
            ),
            "{:?}",
            q.job(id).error()
        );
        assert!(q.job(id).stream().ends_with("\"state\":\"failed\"}\n"));
        let m = ServeMetrics::register(&registry);
        assert_eq!(m.deadline_missed_total.get(), 1);

        // An ungoverned job in the same queue is untouched.
        q.set_policy(QueuePolicy::unbounded());
        let (c, p, k) = small_case(13);
        let ok = q
            .try_submit("fine", c, p, k, config, Some(4))
            .expect("unbounded");
        q.run(1);
        assert_eq!(q.job(ok).state(), SessionState::Completed);
        assert_eq!(m.deadline_missed_total.get(), 1);
    }

    #[test]
    fn corrupt_checkpoint_fails_structurally() {
        let config = RouterConfig::default();
        let (c, p, k) = small_case(23);
        let mut q = JobQueue::new();
        let id = q.submit("corrupt", c, p, k, config, Some(2));
        q.run_round(1);
        assert_eq!(q.job(id).state(), SessionState::Suspended);
        // Sabotage the checkpoint text between rounds.
        let garbled = q.jobs[id].checkpoint.take().unwrap().replacen(
            "bgr-checkpoint v1",
            "bgr-checkpoint v9",
            1,
        );
        q.jobs[id].checkpoint = Some(garbled);
        q.run(1);
        assert_eq!(q.job(id).state(), SessionState::Failed);
        assert!(
            matches!(q.job(id).error(), Some(RouteError::Checkpoint { .. })),
            "{:?}",
            q.job(id).error()
        );
    }
}
