//! `bgr-serve`: drive a [`bgr_serve::JobQueue`] of synthesized routing
//! jobs with live operational metrics (DESIGN.md §14).
//!
//! Synthesizes `--jobs` small designs (seeds `--seed ..`), submits them
//! under a per-slice selection quota, and drains the queue round by
//! round. The queue reports into a [`bgr_metrics::MetricsRegistry`]
//! that is exported two ways, both optional:
//!
//! * `--metrics-addr HOST:PORT` — a minimal std-only HTTP endpoint
//!   serving the Prometheus text exposition at `/metrics`
//!   (`curl http://HOST:PORT/metrics`);
//! * `--metrics-file PATH` — the same exposition rewritten atomically
//!   after every round (node-exporter textfile-collector style).
//!
//! `--linger-ms` keeps the HTTP endpoint up after the queue settles so
//! a scraper can collect the final state. Exit code 1 if any job
//! failed.
//!
//! Overload governance (both default off; un-tripped limits leave the
//! drain byte-identical to an ungoverned one):
//!
//! * `--max-jobs N` — admission cap on live jobs; over-cap submissions
//!   are refused with a structured verdict and counted in
//!   `bgr_jobs_rejected_total`;
//! * `--deadline-ms T` — per-job wall-clock budget from first slice
//!   materialization; expired jobs fail with `DeadlineExpired` and
//!   count in `bgr_deadline_missed_total`.
//!
//! Usage:
//!   bgr-serve [--jobs N] [--quota Q] [--threads T] [--seed S]
//!             [--max-jobs N] [--deadline-ms T]
//!             [--metrics-addr HOST:PORT] [--metrics-file PATH]
//!             [--linger-ms MS]

use std::process::ExitCode;

use bgr_core::RouterConfig;
use bgr_metrics::MetricsRegistry;
use bgr_serve::{JobQueue, QueuePolicy};

struct Args {
    jobs: u64,
    quota: Option<u64>,
    threads: usize,
    seed: u64,
    max_jobs: Option<u64>,
    deadline_ms: Option<u64>,
    metrics_addr: Option<String>,
    metrics_file: Option<String>,
    linger_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bgr-serve [--jobs N] [--quota Q] [--threads T] [--seed S]\n\
         \x20                [--max-jobs N] [--deadline-ms T]\n\
         \x20                [--metrics-addr HOST:PORT] [--metrics-file PATH] [--linger-ms MS]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 4,
        quota: Some(8),
        threads: std::env::var("BGR_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        seed: 1,
        max_jobs: None,
        deadline_ms: None,
        metrics_addr: None,
        metrics_file: None,
        linger_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| usage_for(flag));
        fn usage_for(flag: &str) -> String {
            eprintln!("missing value for {flag}");
            usage()
        }
        match flag.as_str() {
            "--jobs" => args.jobs = parse_num(&flag, &value(&flag)),
            "--quota" => {
                let v = value(&flag);
                args.quota = if v == "none" {
                    None
                } else {
                    Some(parse_num(&flag, &v))
                };
            }
            "--threads" => args.threads = parse_num(&flag, &value(&flag)) as usize,
            "--seed" => args.seed = parse_num(&flag, &value(&flag)),
            "--max-jobs" => args.max_jobs = Some(parse_num(&flag, &value(&flag))),
            "--deadline-ms" => args.deadline_ms = Some(parse_num(&flag, &value(&flag))),
            "--metrics-addr" => args.metrics_addr = Some(value(&flag)),
            "--metrics-file" => args.metrics_file = Some(value(&flag)),
            "--linger-ms" => args.linger_ms = parse_num(&flag, &value(&flag)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {v}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let registry = MetricsRegistry::new();
    let mut server = match &args.metrics_addr {
        None => None,
        Some(addr) => match registry.serve_http(addr.as_str()) {
            Ok(s) => {
                println!("metrics: http://{}/metrics", s.addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("cannot bind metrics endpoint {addr}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let mut queue = JobQueue::with_metrics(&registry);
    queue.set_policy(QueuePolicy {
        max_jobs: args.max_jobs.map(|n| n as usize),
        max_checkpoint_bytes: None,
        deadline_ms: args.deadline_ms,
    });
    let mut admitted = 0u64;
    for i in 0..args.jobs {
        let params = bgr_gen::GenParams::small(args.seed + i);
        let design = bgr_gen::generate(&params);
        let placement = bgr_gen::place_design(&design, &params, bgr_gen::PlacementStyle::EvenFeed);
        match queue.try_submit(
            format!("job{i}"),
            design.circuit,
            placement,
            design.constraints,
            RouterConfig::default(),
            args.quota,
        ) {
            Ok(_) => admitted += 1,
            Err(verdict) => println!("job{i} rejected ({}): {verdict}", verdict.code()),
        }
    }
    println!(
        "submitted {admitted}/{} jobs (quota {:?}, {} threads)",
        args.jobs, args.quota, args.threads
    );

    let write_file = |registry: &MetricsRegistry| {
        if let Some(path) = &args.metrics_file {
            if let Err(e) = registry.write_to_file(std::path::Path::new(path)) {
                eprintln!("cannot write {path}: {e}");
            }
        }
    };

    let mut rounds = 0u64;
    while queue.run_round(args.threads) > 0 {
        rounds += 1;
        write_file(&registry);
    }
    write_file(&registry);

    let mut failed = 0u64;
    for job in queue.jobs() {
        let verdict = match job.audit() {
            Some(report) => report.to_string(),
            None => match job.error() {
                Some(e) => format!("error: {e}"),
                None => "no audit".to_string(),
            },
        };
        println!(
            "{:<8} {:<10} slices={} selections={} — {verdict}",
            job.name(),
            job.state().label(),
            job.slices(),
            job.selections_done(),
        );
        if job.state().is_terminal() && job.state() != bgr_serve::SessionState::Completed {
            failed += 1;
        }
    }
    println!("drained in {rounds} rounds; {failed} failed");

    if args.linger_ms > 0 && server.is_some() {
        println!("lingering {} ms for scrapes...", args.linger_ms);
        std::thread::sleep(std::time::Duration::from_millis(args.linger_ms));
    }
    if let Some(s) = &mut server {
        s.shutdown();
    }
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
