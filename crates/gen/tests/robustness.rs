//! Generator robustness at parameter extremes: every combination must
//! yield a valid, placeable, routable design.

use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::{generate, place_design, GenParams, PlacementStyle};

fn params(f: impl FnOnce(&mut GenParams)) -> GenParams {
    let mut p = GenParams::small(17);
    f(&mut p);
    p
}

fn routes(p: &GenParams) {
    let design = generate(p);
    design.circuit.validate().expect("valid circuit");
    for style in [PlacementStyle::EvenFeed, PlacementStyle::FeedAside] {
        let placement = place_design(&design, p, style);
        placement
            .validate(&design.circuit)
            .expect("valid placement");
        GlobalRouter::new(RouterConfig::unconstrained())
            .route(design.circuit.clone(), placement, vec![])
            .expect("routes");
    }
}

#[test]
fn single_row() {
    routes(&params(|p| {
        p.rows = 1;
        p.logic_cells = 30;
    }));
}

#[test]
fn shallow_depth() {
    routes(&params(|p| {
        p.depth = 1;
        p.logic_cells = 20;
    }));
}

#[test]
fn no_feed_cells_at_all() {
    routes(&params(|p| {
        p.feeds_per_row = 0;
        p.rows = 5;
    }));
}

#[test]
fn no_flip_flops() {
    routes(&params(|p| {
        p.ff_fraction = 0.0;
    }));
}

#[test]
fn all_flip_flops() {
    routes(&params(|p| {
        p.ff_fraction = 1.0;
    }));
}

#[test]
fn many_diff_pairs() {
    let p = params(|p| {
        p.diff_pairs = 10;
        p.depth = 12;
    });
    let design = generate(&p);
    assert!(design.circuit.diff_pairs().len() >= 5);
    routes(&p);
}

#[test]
fn minimal_pads() {
    routes(&params(|p| {
        p.pads = 1;
    }));
}

#[test]
fn fully_global_fanin() {
    routes(&params(|p| {
        p.global_fanin = 1.0;
    }));
}

#[test]
fn more_rows_than_cells_per_level() {
    routes(&params(|p| {
        p.rows = 12;
        p.logic_cells = 24;
        p.depth = 4;
    }));
}

#[test]
fn zero_constraints_requested() {
    let p = params(|p| p.num_constraints = 0);
    let design = generate(&p);
    assert!(design.constraints.is_empty());
    routes(&p);
}
