//! Placement generation: the paper's P1 / P2 styles.

use bgr_layout::{Placement, PlacementBuilder};
use bgr_netlist::{CellId, TermDir};

use crate::netgen::{GenParams, GeneratedDesign};

/// Feed-cell distribution style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStyle {
    /// P1: feed cells evenly interleaved between logic cells ("automatic
    /// feed-cell insertion" by the designers).
    EvenFeed,
    /// P2: feed cells pushed to the row ends ("moving the feed cells
    /// aside in the cell rows in order to test the even spacing effect").
    FeedAside,
}

/// Places a generated design into rows.
///
/// Logic cells go row-major in level order (adjacent levels land in
/// nearby rows, like a levelized standard-cell placement); feed cells
/// are interleaved (P1) or appended at the row end (P2); input pads are
/// spread along the bottom boundary, output pads along the top.
pub fn place(
    circuit: &bgr_netlist::Circuit,
    params: &GenParams,
    style: PlacementStyle,
) -> Placement {
    let design_rows = split_rows(circuit, params);
    place_rows(circuit, params, style, &design_rows)
}

/// Convenience: place straight from a [`GeneratedDesign`].
pub fn place_design(
    design: &GeneratedDesign,
    params: &GenParams,
    style: PlacementStyle,
) -> Placement {
    place_rows(
        &design.circuit,
        params,
        style,
        &(design.row_cells.clone(), design.feed_cells.clone()),
    )
}

type RowSplit = (Vec<Vec<CellId>>, Vec<Vec<CellId>>);

/// Splits circuit cells into per-row logic and feed lists (used when the
/// caller has only a circuit, e.g. after deserialization).
fn split_rows(circuit: &bgr_netlist::Circuit, params: &GenParams) -> RowSplit {
    let mut logic = Vec::new();
    let mut feeds = Vec::new();
    for id in circuit.cell_ids() {
        if circuit.library().kind(circuit.cell(id).kind()).is_feed() {
            feeds.push(id);
        } else {
            logic.push(id);
        }
    }
    let rows = params.rows.max(1);
    let per_row = logic.len().div_ceil(rows);
    let mut row_logic: Vec<Vec<CellId>> =
        logic.chunks(per_row.max(1)).map(|c| c.to_vec()).collect();
    row_logic.resize(rows, Vec::new());
    let per_row_f = feeds.len().div_ceil(rows);
    let mut row_feeds: Vec<Vec<CellId>> =
        feeds.chunks(per_row_f.max(1)).map(|c| c.to_vec()).collect();
    row_feeds.resize(rows, Vec::new());
    (row_logic, row_feeds)
}

fn place_rows(
    circuit: &bgr_netlist::Circuit,
    params: &GenParams,
    style: PlacementStyle,
    rows: &RowSplit,
) -> Placement {
    let (row_logic, row_feeds) = rows;
    let num_rows = params.rows.max(1);
    let mut pb = PlacementBuilder::new(params.geometry, num_rows);
    let width_of = |c: CellId| {
        circuit
            .library()
            .kind(circuit.cell(c).kind())
            .width_pitches()
    };
    for r in 0..num_rows {
        let logic = row_logic.get(r).cloned().unwrap_or_default();
        let feeds = row_feeds.get(r).cloned().unwrap_or_default();
        match style {
            PlacementStyle::EvenFeed => {
                // Interleave: one feed cell after every
                // ceil(logic/feeds) logic cells.
                let stride = if feeds.is_empty() {
                    usize::MAX
                } else {
                    logic.len().div_ceil(feeds.len()).max(1)
                };
                let mut fi = 0;
                for (i, &c) in logic.iter().enumerate() {
                    pb.append_with_width(r, c, width_of(c));
                    if (i + 1) % stride == 0 && fi < feeds.len() {
                        pb.append_with_width(r, feeds[fi], width_of(feeds[fi]));
                        fi += 1;
                    }
                }
                for &f in &feeds[fi.min(feeds.len())..] {
                    pb.append_with_width(r, f, width_of(f));
                }
            }
            PlacementStyle::FeedAside => {
                for &c in &logic {
                    pb.append_with_width(r, c, width_of(c));
                }
                for &f in feeds.iter() {
                    pb.append_with_width(r, f, width_of(f));
                }
            }
        }
    }
    // Pads: inputs bottom, outputs top, spread across the row span.
    let mut in_pads = Vec::new();
    let mut out_pads = Vec::new();
    for (i, pad) in circuit.pads().iter().enumerate() {
        match pad.dir() {
            TermDir::Input => in_pads.push(bgr_netlist::PadId::new(i)),
            TermDir::Output => out_pads.push(bgr_netlist::PadId::new(i)),
        }
    }
    // Estimate span from the widest row cursor by finishing later; place
    // pads over a nominal span derived from total widths.
    let span: i32 = row_logic
        .iter()
        .zip(row_feeds)
        .map(|(l, f)| l.iter().chain(f).map(|&c| width_of(c) as i32).sum::<i32>())
        .max()
        .unwrap_or(1)
        .max(1);
    for (i, &p) in in_pads.iter().enumerate() {
        pb.place_pad_bottom(p, (i as i32 + 1) * span / (in_pads.len() as i32 + 1));
    }
    for (i, &p) in out_pads.iter().enumerate() {
        pb.place_pad_top(p, (i as i32 + 1) * span / (out_pads.len() as i32 + 1));
    }
    pb.finish(circuit).expect("generated placement validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{generate, GenParams};

    #[test]
    fn both_styles_validate() {
        let params = GenParams::small(9);
        let design = generate(&params);
        let p1 = place_design(&design, &params, PlacementStyle::EvenFeed);
        let p2 = place_design(&design, &params, PlacementStyle::FeedAside);
        assert_eq!(p1.num_rows(), params.rows);
        assert_eq!(p2.num_rows(), params.rows);
        p1.validate(&design.circuit).unwrap();
        p2.validate(&design.circuit).unwrap();
    }

    #[test]
    fn even_feed_spreads_and_aside_clusters() {
        let params = GenParams::small(9);
        let design = generate(&params);
        let p1 = place_design(&design, &params, PlacementStyle::EvenFeed);
        let p2 = place_design(&design, &params, PlacementStyle::FeedAside);
        let is_feed = |c: bgr_netlist::CellId| {
            design
                .circuit
                .library()
                .kind(design.circuit.cell(c).kind())
                .is_feed()
        };
        // In P2 every feed cell sits right of every logic cell in its row.
        for row in p2.rows() {
            let mut seen_feed = false;
            for pc in row.cells() {
                if is_feed(pc.cell) {
                    seen_feed = true;
                } else {
                    assert!(!seen_feed, "P2 keeps feeds at the row end");
                }
            }
        }
        // In P1 at least one row interleaves (a feed with logic on both
        // sides).
        let interleaved = p1.rows().iter().any(|row| {
            let cells = row.cells();
            (1..cells.len().saturating_sub(1)).any(|i| {
                is_feed(cells[i].cell) && !is_feed(cells[i - 1].cell) && !is_feed(cells[i + 1].cell)
            })
        });
        assert!(interleaved);
    }

    #[test]
    fn place_from_circuit_only_works() {
        let params = GenParams::small(9);
        let design = generate(&params);
        let p = place(&design.circuit, &params, PlacementStyle::EvenFeed);
        p.validate(&design.circuit).unwrap();
    }
}
