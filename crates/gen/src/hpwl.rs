//! Half-perimeter wire-length estimates.
//!
//! Table 3 of the paper compares routed critical-path delays against a
//! lower bound obtained "by assuming the wire length for each net to be
//! half the perimeter of the rectangle containing the net terminals".

use bgr_layout::{PadSide, Placement, TermSite};
use bgr_netlist::Circuit;

/// Per-net half-perimeter lengths in µm.
///
/// x spans come from terminal pitch coordinates; y spans from row
/// positions (`row_height` per row step, pads on the chip boundary).
/// Channel heights are unknown before routing and excluded — that is
/// what makes this a lower bound.
pub fn hpwl_net_lengths_um(circuit: &Circuit, placement: &Placement) -> Vec<f64> {
    let g = placement.geometry();
    let num_rows = placement.num_rows();
    circuit
        .net_ids()
        .map(|net| {
            let mut x_min = f64::INFINITY;
            let mut x_max = f64::NEG_INFINITY;
            let mut y_min = f64::INFINITY;
            let mut y_max = f64::NEG_INFINITY;
            for term in circuit.net(net).terms() {
                let pos = placement.term_pos(circuit, term);
                let x = g.pitches_to_um(pos.x as f64);
                let y = match pos.site {
                    TermSite::Cell { row, .. } => (row as f64 + 0.5) * g.row_height_um,
                    TermSite::Pad(PadSide::Bottom) => 0.0,
                    TermSite::Pad(PadSide::Top) => num_rows as f64 * g.row_height_um,
                };
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
            (x_max - x_min) + (y_max - y_min)
        })
        .collect()
}

/// Per-net half-perimeter lengths in µm **within a routed layout**:
/// y spans include the given per-channel track heights, matching the
/// paper's rectangle "containing the net terminals" in the final layout.
///
/// # Panics
///
/// Panics if `channel_tracks.len() != placement.num_channels()`.
pub fn hpwl_net_lengths_in_layout_um(
    circuit: &Circuit,
    placement: &Placement,
    channel_tracks: &[usize],
) -> Vec<f64> {
    let g = placement.geometry();
    let num_rows = placement.num_rows();
    assert_eq!(
        channel_tracks.len(),
        num_rows + 1,
        "one track count per channel"
    );
    // y of the center of each row, bottom-up, accumulating channel
    // heights below it.
    let mut row_y = Vec::with_capacity(num_rows);
    let mut y = 0.0;
    for (r, &t) in channel_tracks.iter().take(num_rows).enumerate() {
        y += g.channel_height_um(t);
        row_y.push(y + g.row_height_um / 2.0);
        y += g.row_height_um;
        let _ = r;
    }
    let total = y + g.channel_height_um(channel_tracks[num_rows]);
    circuit
        .net_ids()
        .map(|net| {
            let mut x_min = f64::INFINITY;
            let mut x_max = f64::NEG_INFINITY;
            let mut y_min = f64::INFINITY;
            let mut y_max = f64::NEG_INFINITY;
            for term in circuit.net(net).terms() {
                let pos = placement.term_pos(circuit, term);
                let x = g.pitches_to_um(pos.x as f64);
                let yy = match pos.site {
                    TermSite::Cell { row, .. } => row_y[row],
                    TermSite::Pad(PadSide::Bottom) => 0.0,
                    TermSite::Pad(PadSide::Top) => total,
                };
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(yy);
                y_max = y_max.max(yy);
            }
            (x_max - x_min) + (y_max - y_min)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};

    #[test]
    fn hpwl_spans_x_and_rows() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net(
            "n",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 3);
        pb.place_at(0, CellId::new(0), 0, 3).unwrap();
        pb.place_at(2, CellId::new(1), 10, 3).unwrap();
        let placement = pb.finish(&circuit).unwrap();
        let lens = hpwl_net_lengths_um(&circuit, &placement);
        // u1.Y at x=2 (16 µm), u2.A at x=10 (80 µm): Δx = 64 µm.
        // Rows 0 -> 2: Δy = 2 × 160 µm = 320 µm.
        assert!((lens[0] - (64.0 + 320.0)).abs() < 1e-9);
    }

    #[test]
    fn single_row_net_has_no_y_span() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net(
            "n",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.place_at(0, CellId::new(0), 0, 3).unwrap();
        pb.place_at(0, CellId::new(1), 5, 3).unwrap();
        let placement = pb.finish(&circuit).unwrap();
        let lens = hpwl_net_lengths_um(&circuit, &placement);
        // u1.Y at pitch 2 (16 µm), u2.A at pitch 5 (40 µm): Δx = 24 µm.
        assert!((lens[0] - 24.0).abs() < 1e-9);
    }
}
