//! Constraint harvesting: synthesize the designer-supplied constraint
//! sets of the paper's Table 1.
//!
//! The paper's constraints came from "interviews with the logic
//! designers" (C1/C2) or layout-data analysis (C3). We reconstruct the
//! same *kind* of constraint set: pad-to-pad and register-to-register
//! paths, each granted a wiring-delay budget of `wire_budget ×` its pure
//! gate delay — tight enough that unconstrained routing violates some of
//! them, loose enough that the timing-driven router can close them.

use bgr_netlist::{Circuit, SplitMix64, TermDir, TermId};
use bgr_timing::{ConstraintGraph, DelayGraph, PathConstraint};

/// Harvests up to `count` satisfiable path constraints.
///
/// Sources are input pads and flip-flop `Q` outputs; sinks are output
/// pads and flip-flop `D` inputs. Every returned constraint is
/// reachable, and its limit is `gate_delay × (1 + wire_budget)`.
pub fn harvest_constraints(
    circuit: &Circuit,
    count: usize,
    wire_budget: f64,
    seed: u64,
) -> Vec<PathConstraint> {
    let dg = DelayGraph::build(circuit);
    let zero = vec![0.0; dg.num_nets()];

    let mut sources: Vec<TermId> = Vec::new();
    let mut sinks: Vec<TermId> = Vec::new();
    for pad in circuit.pads() {
        match pad.dir() {
            TermDir::Input => sources.push(pad.term()),
            TermDir::Output => sinks.push(pad.term()),
        }
    }
    for cell in circuit.cells() {
        let kind = circuit.library().kind(cell.kind());
        if !kind.is_sequential() {
            continue;
        }
        for (pin, spec) in kind.terms().iter().enumerate() {
            match (spec.dir, spec.name.as_str()) {
                (TermDir::Output, _) => sources.push(cell.terms()[pin]),
                (TermDir::Input, "D") => sinks.push(cell.terms()[pin]),
                _ => {}
            }
        }
    }
    let mut rng = SplitMix64::new(seed);
    let mut pairs: Vec<(TermId, TermId)> = sources
        .iter()
        .flat_map(|&s| sinks.iter().map(move |&t| (s, t)))
        .collect();
    rng.shuffle(&mut pairs);

    let mut out = Vec::new();
    for (s, t) in pairs {
        if out.len() >= count {
            break;
        }
        let c = PathConstraint::new(format!("p{}", out.len()), s, t, f64::INFINITY);
        let Ok(cg) = ConstraintGraph::build(&dg, c) else {
            continue;
        };
        let lp = cg.longest_paths(&dg, &zero, &zero);
        let gate_delay = cg.arrival_ps(&lp);
        if gate_delay <= 0.0 {
            continue;
        }
        out.push(PathConstraint::new(
            format!("p{}", out.len()),
            s,
            t,
            gate_delay * (1.0 + wire_budget),
        ));
    }
    out
}

/// Arrival time (ps) of an `(s, t)` path at given per-net lengths, or
/// `None` when unreachable.
pub fn arrival_with_lengths(
    circuit: &Circuit,
    source: TermId,
    sink: TermId,
    lengths_um: &[f64],
) -> Option<f64> {
    let dg = DelayGraph::build(circuit);
    let wire = bgr_timing::WireParams::default();
    let model = bgr_timing::DelayModel::Capacitance;
    let cl: Vec<f64> = circuit
        .net_ids()
        .map(|n| model.wire_cap_ff(&wire, lengths_um[n.index()], circuit.net(n).width_pitches()))
        .collect();
    let rc = vec![0.0; cl.len()];
    let cg = ConstraintGraph::build(&dg, PathConstraint::new("tmp", source, sink, 0.0)).ok()?;
    let lp = cg.longest_paths(&dg, &cl, &rc);
    Some(cg.arrival_ps(&lp))
}

/// Harvests constraints with limits set *between* a per-path lower bound
/// and a reference (e.g. naively routed) delay:
/// `τ = lb + β·(ref − lb)`.
///
/// This mirrors the paper's constraint provenance — designer interviews
/// for C1/C2, and explicit layout-data analysis for C3 ("constraints for
/// C3 were improved according to the layout data analysis") — and
/// guarantees every constraint is demanding (the reference route
/// violates it for β < 1) yet anchored to achievability (the lower
/// bound satisfies it for β > 0).
pub fn harvest_between(
    circuit: &Circuit,
    count: usize,
    beta: f64,
    seed: u64,
    lb_lengths_um: &[f64],
    ref_lengths_um: &[f64],
) -> Vec<PathConstraint> {
    // Reuse the gate-budget harvester purely for (source, sink) picking.
    let picked = harvest_constraints(circuit, count, 0.0, seed);
    picked
        .into_iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let lb = arrival_with_lengths(circuit, c.source, c.sink, lb_lengths_um)?;
            let rf = arrival_with_lengths(circuit, c.source, c.sink, ref_lengths_um)?;
            let rf = rf.max(lb);
            Some(PathConstraint::new(
                format!("p{i}"),
                c.source,
                c.sink,
                lb + beta * (rf - lb),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{generate, GenParams};
    use bgr_netlist::TermOwner;

    #[test]
    fn harvest_between_brackets_limits() {
        let design = generate(&GenParams::small(3));
        let n = design.circuit.nets().len();
        let lb = vec![100.0; n];
        let rf = vec![500.0; n];
        let cons = harvest_between(&design.circuit, 3, 0.5, 11, &lb, &rf);
        assert!(!cons.is_empty());
        for c in &cons {
            let at_lb = arrival_with_lengths(&design.circuit, c.source, c.sink, &lb).unwrap();
            let at_rf = arrival_with_lengths(&design.circuit, c.source, c.sink, &rf).unwrap();
            assert!(c.limit_ps >= at_lb - 1e-9, "lower bound satisfies");
            assert!(c.limit_ps <= at_rf + 1e-9, "reference violates");
        }
    }

    #[test]
    fn constraints_are_reachable_and_budgeted() {
        let design = generate(&GenParams::small(3));
        let dg = DelayGraph::build(&design.circuit);
        let zero = vec![0.0; dg.num_nets()];
        assert!(!design.constraints.is_empty());
        for c in &design.constraints {
            let cg = ConstraintGraph::build(&dg, c.clone()).expect("reachable");
            let lp = cg.longest_paths(&dg, &zero, &zero);
            let gate = cg.arrival_ps(&lp);
            // Limit = gate × (1 + 0.35).
            assert!((c.limit_ps / gate - 1.35).abs() < 1e-9);
        }
    }

    #[test]
    fn harvest_respects_count() {
        let design = generate(&GenParams::small(3));
        let cons = harvest_constraints(&design.circuit, 2, 0.5, 11);
        assert!(cons.len() <= 2);
        assert!(!cons.is_empty());
    }

    #[test]
    fn harvest_is_deterministic() {
        let design = generate(&GenParams::small(3));
        let a = harvest_constraints(&design.circuit, 3, 0.5, 11);
        let b = harvest_constraints(&design.circuit, 3, 0.5, 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.source, x.sink), (y.source, y.sink));
        }
    }

    #[test]
    fn source_sink_owners_are_pads_or_ffs() {
        let design = generate(&GenParams::small(5));
        for c in &design.constraints {
            for t in [c.source, c.sink] {
                match design.circuit.term(t).owner() {
                    TermOwner::Pad(_) => {}
                    TermOwner::Cell { cell, .. } => {
                        let kind = design
                            .circuit
                            .library()
                            .kind(design.circuit.cell(cell).kind());
                        assert!(kind.is_sequential());
                    }
                }
            }
        }
    }
}
