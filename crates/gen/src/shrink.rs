//! Verifier-guided shrinking of failing adversarial cases (ddmin-lite).
//!
//! When the fuzz harness (`tests/fuzz_route.rs`) trips an expectation,
//! the raw repro is a whole [`AdversarialCase`] — often a hundred nets
//! and dozens of constraints, nearly all irrelevant to the failure.
//! [`shrink_case`] delta-debugs the case against a caller-supplied
//! predicate ("does this still fail?"): it greedily drops constraint
//! chunks, then net chunks, then constraints again (net removal can
//! orphan constraints), halving the chunk size until single-element
//! removals stop making progress. The result is 1-minimal-ish: small
//! enough to read, while the predicate still holds.
//!
//! Nets are removed by **replaying** the circuit through
//! [`CircuitBuilder`] in the original creation order, skipping the
//! dropped nets. Cell, pad and terminal ids are preserved exactly
//! (cells and pads are recreated in their original interleaving, which
//! the terminal table records), so the placement, the feed-cell /
//! row-cell tables and every constraint's `TermId`s stay valid without
//! remapping. Net ids renumber; differential pairs are kept only when
//! both members survive. A candidate that no longer validates is simply
//! treated as "does not fail" and skipped.

use bgr_netlist::{Circuit, CircuitBuilder, NetId, TermDir};

use crate::adversarial::AdversarialCase;

/// How a shrink run ended: the minimized case plus bookkeeping.
#[derive(Debug)]
pub struct ShrinkReport {
    /// The minimized case (still failing per the predicate).
    pub case: AdversarialCase,
    /// Constraints in the original case.
    pub constraints_before: usize,
    /// Nets in the original case.
    pub nets_before: usize,
    /// Predicate evaluations spent.
    pub probes: usize,
}

impl ShrinkReport {
    /// Constraints surviving the shrink.
    pub fn constraints_after(&self) -> usize {
        self.case.design.constraints.len()
    }

    /// Nets surviving the shrink.
    pub fn nets_after(&self) -> usize {
        self.case.design.circuit.nets().len()
    }

    /// One-line summary for failure artifacts.
    pub fn summary(&self) -> String {
        format!(
            "shrunk: nets {} -> {}, constraints {} -> {} ({} probes)",
            self.nets_before,
            self.nets_after(),
            self.constraints_before,
            self.constraints_after(),
            self.probes
        )
    }
}

/// Rebuilds `circuit` without the nets where `keep[net] == false`.
///
/// Returns `None` when the reduced circuit no longer validates (e.g. a
/// surviving half of a differential pair would be fine — pairs are
/// dropped with either member — but an acyclicity or width invariant
/// could still object).
pub fn drop_nets(circuit: &Circuit, keep: &[bool]) -> Option<Circuit> {
    assert_eq!(keep.len(), circuit.nets().len(), "keep mask length");
    let mut cb = CircuitBuilder::new(circuit.library().clone());

    // Replay cells and pads in their original creation order so every
    // CellId, PadId and TermId is reproduced bit-for-bit. The terminal
    // table records the interleaving: a cell's pins are contiguous, a
    // pad owns a single terminal. Feed cells own no terminals, so they
    // are replayed relative to the other cells by cell index alone.
    #[derive(Clone, Copy)]
    enum Event {
        Cell(usize),
        Pad(usize),
    }
    let mut events: Vec<(usize, Event)> = Vec::new();
    for (i, cell) in circuit.cells().iter().enumerate() {
        if let Some(first) = cell.terms().first() {
            events.push((first.index(), Event::Cell(i)));
        }
    }
    for (p, pad) in circuit.pads().iter().enumerate() {
        events.push((pad.term().index(), Event::Pad(p)));
    }
    events.sort_by_key(|(t, _)| *t);

    fn replay_termless_below(
        circuit: &Circuit,
        cb: &mut CircuitBuilder,
        next_cell: &mut usize,
        bound: usize,
    ) {
        while *next_cell < bound {
            let cell = &circuit.cells()[*next_cell];
            if cell.terms().is_empty() {
                cb.add_cell(cell.name().to_owned(), cell.kind());
            }
            *next_cell += 1;
        }
    }
    let mut next_cell = 0usize;
    for (_, ev) in events {
        match ev {
            Event::Cell(i) => {
                replay_termless_below(circuit, &mut cb, &mut next_cell, i);
                cb.add_cell(
                    circuit.cells()[i].name().to_owned(),
                    circuit.cells()[i].kind(),
                );
                next_cell = i + 1;
            }
            Event::Pad(p) => {
                let pad = &circuit.pads()[p];
                match pad.dir() {
                    TermDir::Input => cb.add_input_pad(pad.name().to_owned()),
                    TermDir::Output => cb.add_output_pad(pad.name().to_owned()),
                };
            }
        }
    }
    replay_termless_below(circuit, &mut cb, &mut next_cell, circuit.cells().len());
    debug_assert_eq!(cb.cell_count(), circuit.cells().len());

    // Re-add the surviving nets (NetIds renumber) and remap pairs.
    let mut new_id: Vec<Option<NetId>> = vec![None; circuit.nets().len()];
    for (i, net) in circuit.nets().iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let id = cb
            .add_wide_net(
                net.name().to_owned(),
                net.driver(),
                net.sinks().iter().copied(),
                net.width_pitches(),
            )
            .ok()?;
        new_id[i] = Some(id);
    }
    for &(a, b) in circuit.diff_pairs() {
        if let (Some(a), Some(b)) = (new_id[a.index()], new_id[b.index()]) {
            cb.mark_diff_pair(a, b).ok()?;
        }
    }
    cb.finish().ok()
}

/// One greedy ddmin pass over a keep-mask: tries dropping chunks of
/// `keep`-ed indices, halving the chunk until singles stall. `test`
/// receives the candidate mask and answers "does it still fail?".
fn ddmin(keep: &mut [bool], probes: &mut usize, mut test: impl FnMut(&[bool]) -> bool) {
    let mut chunk = keep.len().div_ceil(2).max(1);
    loop {
        let live: Vec<usize> = (0..keep.len()).filter(|&i| keep[i]).collect();
        let mut start = 0;
        while start < live.len() {
            let end = (start + chunk).min(live.len());
            let mut cand = keep.to_vec();
            for &i in &live[start..end] {
                cand[i] = false;
            }
            *probes += 1;
            if test(&cand) {
                keep.copy_from_slice(&cand);
            }
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
}

/// Builds the case variant selected by the two keep-masks, or `None`
/// when the reduced circuit no longer validates.
fn select(
    case: &AdversarialCase,
    keep_nets: &[bool],
    keep_cons: &[bool],
) -> Option<AdversarialCase> {
    let circuit = if keep_nets.iter().all(|&k| k) {
        case.design.circuit.clone()
    } else {
        drop_nets(&case.design.circuit, keep_nets)?
    };
    let mut out = case.clone();
    out.design.circuit = circuit;
    out.design.constraints = case
        .design
        .constraints
        .iter()
        .enumerate()
        .filter(|(i, _)| keep_cons[*i])
        .map(|(_, c)| c.clone())
        .collect();
    Some(out)
}

/// Delta-debugs `case` down to a (near-)minimal variant for which
/// `still_fails` keeps answering `true`.
///
/// The predicate is called on *candidate* cases; it must treat any
/// outcome other than the original failure (including success, a
/// different error, or a panic the caller converts) as `false`. The
/// original case itself is assumed failing and is returned unchanged if
/// nothing can be dropped. Placement, seed, pathology and params are
/// carried over verbatim; `expect_overconstrained` keeps its original
/// value and is only meaningful for the un-shrunk case.
pub fn shrink_case(
    case: &AdversarialCase,
    mut still_fails: impl FnMut(&AdversarialCase) -> bool,
) -> ShrinkReport {
    let nets_before = case.design.circuit.nets().len();
    let constraints_before = case.design.constraints.len();
    let mut keep_nets = vec![true; nets_before];
    let mut keep_cons = vec![true; constraints_before];
    let mut probes = 0usize;

    // Constraints first (cheap, often decisive), then nets, then
    // constraints again: removing nets can orphan constraints that the
    // first pass had to keep.
    for phase in 0..3 {
        let nets_phase = phase == 1;
        let mask = if nets_phase {
            keep_nets.clone()
        } else {
            keep_cons.clone()
        };
        let mut mask = mask;
        ddmin(&mut mask, &mut probes, |cand| {
            let (kn, kc) = if nets_phase {
                (cand, &keep_cons[..])
            } else {
                (&keep_nets[..], cand)
            };
            select(case, kn, kc).is_some_and(|c| still_fails(&c))
        });
        if nets_phase {
            keep_nets = mask;
        } else {
            keep_cons = mask;
        }
    }

    let case = select(case, &keep_nets, &keep_cons)
        .expect("the accepted masks produced a valid case during the search");
    ShrinkReport {
        case,
        constraints_before,
        nets_before,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::adversarial_case;

    #[test]
    fn full_keep_mask_replays_the_circuit_exactly() {
        let case = adversarial_case(7);
        let circuit = &case.design.circuit;
        let replayed = drop_nets(circuit, &vec![true; circuit.nets().len()]).unwrap();
        assert_eq!(replayed.cells().len(), circuit.cells().len());
        assert_eq!(replayed.pads().len(), circuit.pads().len());
        assert_eq!(replayed.terms().len(), circuit.terms().len());
        assert_eq!(replayed.nets().len(), circuit.nets().len());
        assert_eq!(replayed.diff_pairs(), circuit.diff_pairs());
        for (a, b) in replayed.cells().iter().zip(circuit.cells()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.terms(), b.terms());
        }
        for (a, b) in replayed.nets().iter().zip(circuit.nets()) {
            assert_eq!(a.driver(), b.driver());
            assert_eq!(a.sinks(), b.sinks());
            assert_eq!(a.width_pitches(), b.width_pitches());
        }
        // The placement of the original case must still validate.
        case.placement.validate(&replayed).unwrap();
    }

    #[test]
    fn shrinks_to_a_single_blamed_constraint() {
        let case = adversarial_case(0); // InfeasibleLimits: many constraints
        assert!(case.design.constraints.len() > 1);
        let victim = case.design.constraints[2].name.clone();
        let report = shrink_case(&case, |c| {
            c.design.constraints.iter().any(|k| k.name == victim)
        });
        assert_eq!(report.constraints_after(), 1);
        assert_eq!(report.case.design.constraints[0].name, victim);
        assert!(report.probes > 0);
        assert!(report.summary().contains("constraints"));
    }

    #[test]
    fn shrinks_nets_while_keeping_the_circuit_valid() {
        let case = adversarial_case(2); // SingleRow
        let nets = case.design.circuit.nets().len();
        assert!(nets > 4);
        let victim = case.design.circuit.nets()[nets / 2].name().to_owned();
        let report = shrink_case(&case, |c| {
            c.design.circuit.validate().is_ok()
                && c.design.circuit.nets().iter().any(|n| n.name() == victim)
        });
        assert!(report.nets_after() < nets, "no net was dropped");
        assert!(report
            .case
            .design
            .circuit
            .nets()
            .iter()
            .any(|n| n.name() == victim));
        report.case.design.circuit.validate().unwrap();
        report
            .case
            .placement
            .validate(&report.case.design.circuit)
            .unwrap();
    }

    #[test]
    fn predicate_never_true_returns_the_original_shape() {
        let case = adversarial_case(4);
        let report = shrink_case(&case, |_| false);
        assert_eq!(report.nets_after(), report.nets_before);
        assert_eq!(report.constraints_after(), report.constraints_before);
    }
}
