//! Benchmark reconstruction substrate.
//!
//! The paper evaluates on three proprietary NTT bipolar transmission-
//! system circuits (C1–C3, Table 1) with designer placements P1 (even
//! automatic feed-cell insertion) and P2 (feed cells moved aside). Those
//! designs are unavailable, so this crate synthesizes ECL standard-cell
//! circuits with the same *statistical* shape — levelized random logic
//! with flip-flops, a wide multi-pitch clock tree, differential pairs,
//! pad-bounded paths — plus the two placement styles and a constraint
//! harvester that mimics "interviews with the logic designers" by
//! granting each critical path a configurable wiring-delay budget on top
//! of its pure gate delay.
//!
//! # Example
//!
//! ```
//! use bgr_gen::{generate, GenParams, place, PlacementStyle};
//!
//! let params = GenParams::small(42);
//! let design = generate(&params);
//! let placement = place(&design.circuit, &params, PlacementStyle::EvenFeed);
//! assert!(design.circuit.cells().len() > 10);
//! assert!(placement.num_rows() == params.rows);
//! assert!(!design.constraints.is_empty());
//! ```

pub mod adversarial;
pub mod circuits;
pub mod constraints;
pub mod hpwl;
pub mod netgen;
pub mod placegen;
pub mod shrink;

pub use adversarial::{adversarial_case, AdversarialCase, Pathology};
pub use circuits::{
    c1, c1_cached, c2, c2_cached, c3, c3_cached, custom, golden_instance, table_data_sets, DataSet,
};
pub use constraints::{arrival_with_lengths, harvest_between, harvest_constraints};
pub use hpwl::{hpwl_net_lengths_in_layout_um, hpwl_net_lengths_um};
pub use netgen::{generate, GenParams, GeneratedDesign};
pub use placegen::{place, place_design, PlacementStyle};
pub use shrink::{drop_nets, shrink_case, ShrinkReport};
