//! Seeded adversarial instance generation for the fault-tolerance
//! harness (`tests/fuzz_route.rs`).
//!
//! Each seed deterministically produces one [`AdversarialCase`]: a
//! design/placement pair drawn from a family of pathologies the router
//! must survive *structurally* — returning either a valid forest of
//! trees or a structured `RouteError`, never a panic:
//!
//! - **Infeasible delay limits** — every harvested constraint limit is
//!   scaled to a fraction of its *pure gate delay* (the harvester grants
//!   `gate_delay × (1 + wire_budget)`, so scaling by 0.2 lands well
//!   below the zero-wire bound). No routing can satisfy such a
//!   constraint, which forces §3.5 phase-1 recovery to exhaust its
//!   passes: the over-constrained differential case `OnViolation::Fail`
//!   vs `BestEffort` is exercised on every such instance.
//! - **Zero feed capacity** — no pre-inserted feed cells at all
//!   (`feeds_per_row = 0`), so every cross-row net leans on §4.3
//!   feed-cell insertion and row widening.
//! - **Pathological aspect ratios** — the same logic squeezed into a
//!   single row (every net's terminals in one row, no vertical
//!   crossings) or smeared over many nearly-empty rows.
//! - **Combined** — infeasible limits on top of zero feed capacity.

use bgr_layout::Placement;
use bgr_netlist::SplitMix64;
use bgr_timing::PathConstraint;

use crate::netgen::{generate, GenParams, GeneratedDesign};
use crate::placegen::{place_design, PlacementStyle};

/// Fraction of the harvested limit kept by the infeasible variants.
/// The harvester grants `gate_delay × (1 + wire_budget)` with
/// `wire_budget ≤ 0.5` here, so `0.2 × limit < gate_delay`: the limit is
/// unreachable even with zero wire.
const INFEASIBLE_SCALE: f64 = 0.2;

/// The pathology family a seed mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pathology {
    /// Constraint limits below pure gate delay.
    InfeasibleLimits,
    /// `feeds_per_row = 0`.
    ZeroFeedCapacity,
    /// All cells in a single row.
    SingleRow,
    /// Many nearly-empty rows.
    ManyThinRows,
    /// [`Pathology::InfeasibleLimits`] + [`Pathology::ZeroFeedCapacity`].
    InfeasibleAndStarved,
}

impl Pathology {
    /// All families, in the order seeds cycle through them.
    pub const ALL: [Pathology; 5] = [
        Pathology::InfeasibleLimits,
        Pathology::ZeroFeedCapacity,
        Pathology::SingleRow,
        Pathology::ManyThinRows,
        Pathology::InfeasibleAndStarved,
    ];
}

/// One adversarial routing instance.
#[derive(Debug, Clone)]
pub struct AdversarialCase {
    /// The seed this case was derived from.
    pub seed: u64,
    /// Which pathology family the seed landed in.
    pub pathology: Pathology,
    /// Generation parameters actually used.
    pub params: GenParams,
    /// The (possibly constraint-rewritten) design.
    pub design: GeneratedDesign,
    /// A placement of the design.
    pub placement: Placement,
    /// Whether the constraints are infeasible by construction: routing
    /// with `OnViolation::Fail` must error and with `BestEffort` must
    /// return a non-empty violation report.
    pub expect_overconstrained: bool,
}

/// Scales every constraint limit by [`INFEASIBLE_SCALE`].
fn make_infeasible(constraints: &mut [PathConstraint]) {
    for c in constraints.iter_mut() {
        *c = PathConstraint::new(
            c.name.clone(),
            c.source,
            c.sink,
            c.limit_ps * INFEASIBLE_SCALE,
        );
    }
}

/// Deterministically derives the adversarial case for `seed`.
///
/// The pathology family cycles with `seed % 5`; the remaining seed bits
/// vary the circuit shape (cell count, depth, fan-in locality) and the
/// placement style, so no two seeds in a family are the same instance.
pub fn adversarial_case(seed: u64) -> AdversarialCase {
    let mut rng = SplitMix64::new(seed ^ 0xad5e_5a71_a100_cafe);
    let pathology = Pathology::ALL[(seed % Pathology::ALL.len() as u64) as usize];

    let mut params = GenParams::small(seed);
    // Vary the shape so seeds within a family differ structurally.
    params.logic_cells = 40 + rng.range_usize(0, 60);
    params.depth = 4 + rng.range_usize(0, 6);
    params.global_fanin = 0.05 + 0.25 * rng.next_f64();
    params.wire_budget = 0.25 + 0.25 * rng.next_f64();
    match pathology {
        Pathology::InfeasibleLimits => {}
        Pathology::ZeroFeedCapacity | Pathology::InfeasibleAndStarved => {
            params.feeds_per_row = 0;
        }
        Pathology::SingleRow => {
            params.rows = 1;
        }
        Pathology::ManyThinRows => {
            params.rows = 10 + rng.range_usize(0, 6);
            params.feeds_per_row = 2;
        }
    }

    let mut design = generate(&params);
    let expect_overconstrained = matches!(
        pathology,
        Pathology::InfeasibleLimits | Pathology::InfeasibleAndStarved
    ) && !design.constraints.is_empty();
    if expect_overconstrained {
        make_infeasible(&mut design.constraints);
    }

    let style = if rng.next_bool(0.5) {
        PlacementStyle::EvenFeed
    } else {
        PlacementStyle::FeedAside
    };
    let placement = place_design(&design, &params, style);

    AdversarialCase {
        seed,
        pathology,
        params,
        design,
        placement,
        expect_overconstrained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_timing::{DelayModel, Sta, WireParams};

    #[test]
    fn cases_are_deterministic_and_validate() {
        for seed in 0..10 {
            let a = adversarial_case(seed);
            let b = adversarial_case(seed);
            assert_eq!(a.pathology, b.pathology);
            assert_eq!(a.design.circuit.nets().len(), b.design.circuit.nets().len());
            a.design.circuit.validate().unwrap();
            a.placement.validate(&a.design.circuit).unwrap();
        }
    }

    #[test]
    fn seeds_cycle_all_pathologies() {
        let seen: Vec<Pathology> = (0..5).map(|s| adversarial_case(s).pathology).collect();
        for p in Pathology::ALL {
            assert!(seen.contains(&p), "missing {p:?}");
        }
    }

    #[test]
    fn infeasible_limits_are_below_pure_gate_delay() {
        // Zero-wire arrival is the lower bound on any routed arrival, so
        // a limit below it is unsatisfiable by construction.
        let case = adversarial_case(0);
        assert_eq!(case.pathology, Pathology::InfeasibleLimits);
        assert!(case.expect_overconstrained);
        let sta = Sta::new(
            &case.design.circuit,
            case.design.constraints.clone(),
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        for c in 0..sta.num_constraints() {
            assert!(
                sta.margin_ps(c) < 0.0,
                "constraint {c} satisfiable at zero wire"
            );
        }
    }

    #[test]
    fn single_row_case_really_is_single_row() {
        let case = adversarial_case(2);
        assert_eq!(case.pathology, Pathology::SingleRow);
        assert_eq!(case.placement.num_rows(), 1);
    }

    #[test]
    fn starved_case_has_no_preinserted_feeds() {
        let case = adversarial_case(1);
        assert_eq!(case.pathology, Pathology::ZeroFeedCapacity);
        assert!(case.design.feed_cells.iter().all(|r| r.is_empty()));
    }
}
