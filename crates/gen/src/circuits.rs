//! Fixed-seed reconstructions of the paper's test circuits (Table 1).
//!
//! The paper's C1 is the regenerator-section overhead processing circuit
//! of a 10 Gbit/s transmission system; C2 and C3 are further
//! transmission-system circuits of growing size, each with tens of
//! designer constraints. The absolute cell/net counts did not survive
//! the text extraction, so these reconstructions target the magnitudes
//! typical of 1994 bipolar LSIs (hundreds to a few thousand cells) with
//! the same qualitative make-up.

use crate::constraints::harvest_between;
use crate::hpwl::hpwl_net_lengths_in_layout_um;
use crate::netgen::{generate, GenParams, GeneratedDesign};
use crate::placegen::{place_design, PlacementStyle};
use bgr_core::{GlobalRouter, RouterConfig};
use bgr_layout::Placement;

/// One "data set" of Table 1/2: a circuit plus one placement.
#[derive(Debug, Clone)]
pub struct DataSet {
    /// Data name (e.g. `"C1P1"`).
    pub name: String,
    /// Generation parameters used.
    pub params: GenParams,
    /// The design (circuit + constraints).
    pub design: GeneratedDesign,
    /// The placement.
    pub placement: Placement,
}

impl DataSet {
    /// Constraint position between the per-path lower bound (0) and the
    /// naively routed reference delay (1).
    const BETA: f64 = 0.5;

    fn build(name: &str, params: GenParams, style: PlacementStyle) -> Self {
        let mut design = generate(&params);
        // Constraints are a property of the *design*, so they are always
        // derived from the canonical P1 placement: limits sit halfway
        // between each path's half-perimeter lower bound and its delay in
        // a reference (unconstrained) route — the paper's layout-data-
        // analysis constraint provenance.
        let p1 = place_design(&design, &params, PlacementStyle::EvenFeed);
        let reference = GlobalRouter::new(RouterConfig::unconstrained())
            .route(design.circuit.clone(), p1.clone(), Vec::new())
            .expect("reference route succeeds");
        let detail = bgr_channel::route_channels(
            &reference.circuit,
            &reference.placement,
            &reference.result,
            &[],
            bgr_timing::DelayModel::Capacitance,
            bgr_timing::WireParams::default(),
        )
        .expect("reference detail route succeeds");
        // Lower bound in the *reference layout* geometry (channel heights
        // included): limits anchored to it are genuinely achievable.
        let lb =
            hpwl_net_lengths_in_layout_um(&reference.circuit, &reference.placement, &detail.tracks);
        // Feed cells added by the reference route have no nets, so the
        // net-length tables match the original circuit's net count.
        design.constraints = harvest_between(
            &design.circuit,
            params.num_constraints,
            Self::BETA,
            params.seed ^ 0x5bd1_e995,
            &lb,
            &detail.net_lengths_um,
        );
        let placement = if style == PlacementStyle::EvenFeed {
            p1
        } else {
            place_design(&design, &params, style)
        };
        Self {
            name: name.to_owned(),
            params,
            design,
            placement,
        }
    }
}

fn c1_params() -> GenParams {
    GenParams {
        seed: 0xC1,
        logic_cells: 700,
        depth: 14,
        rows: 10,
        ff_fraction: 0.15,
        diff_pairs: 6,
        pads: 16,
        feeds_per_row: 10,
        global_fanin: 0.25,
        num_constraints: 18,
        wire_budget: 0.30,
        geometry: bgr_layout::Geometry {
            track_pitch_um: 4.0,
            ..bgr_layout::Geometry::default()
        },
    }
}

fn c2_params() -> GenParams {
    GenParams {
        seed: 0xC2,
        logic_cells: 1400,
        depth: 18,
        rows: 14,
        ff_fraction: 0.15,
        diff_pairs: 10,
        pads: 24,
        feeds_per_row: 12,
        global_fanin: 0.25,
        num_constraints: 28,
        wire_budget: 0.30,
        geometry: bgr_layout::Geometry {
            track_pitch_um: 4.0,
            ..bgr_layout::Geometry::default()
        },
    }
}

fn c3_params() -> GenParams {
    GenParams {
        seed: 0xC3,
        logic_cells: 2600,
        depth: 22,
        rows: 18,
        ff_fraction: 0.14,
        diff_pairs: 14,
        pads: 32,
        feeds_per_row: 14,
        global_fanin: 0.25,
        num_constraints: 40,
        wire_budget: 0.30,
        geometry: bgr_layout::Geometry {
            track_pitch_um: 4.0,
            ..bgr_layout::Geometry::default()
        },
    }
}

/// C1 with the requested placement style (`P1` = even, `P2` = aside).
pub fn c1(style: PlacementStyle) -> DataSet {
    let suffix = match style {
        PlacementStyle::EvenFeed => "P1",
        PlacementStyle::FeedAside => "P2",
    };
    DataSet::build(&format!("C1{suffix}"), c1_params(), style)
}

/// C2 with the requested placement style.
pub fn c2(style: PlacementStyle) -> DataSet {
    let suffix = match style {
        PlacementStyle::EvenFeed => "P1",
        PlacementStyle::FeedAside => "P2",
    };
    DataSet::build(&format!("C2{suffix}"), c2_params(), style)
}

/// C3 with the requested placement style (the paper only reports C3P1).
pub fn c3(style: PlacementStyle) -> DataSet {
    let suffix = match style {
        PlacementStyle::EvenFeed => "P1",
        PlacementStyle::FeedAside => "P2",
    };
    DataSet::build(&format!("C3{suffix}"), c3_params(), style)
}

/// Builds a data set from explicit parameters (for ablations/tuning).
pub fn custom(name: &str, params: GenParams, style: PlacementStyle) -> DataSet {
    DataSet::build(name, params, style)
}

/// The fixed instance behind the checked-in golden trace
/// (`tests/golden/trace.jsonl`). The `trace_summary` bin and the
/// `golden_trace` integration test must route byte-identical input, so
/// the definition lives here rather than in either consumer.
pub fn golden_instance() -> DataSet {
    let params = GenParams {
        logic_cells: 300,
        depth: 8,
        rows: 6,
        diff_pairs: 2,
        feeds_per_row: 6,
        num_constraints: 8,
        ..GenParams::small(0x7ACE)
    };
    custom("TRACE", params, PlacementStyle::EvenFeed)
}

/// `C1P1`, built once per process. [`DataSet::build`] runs a full
/// reference route to anchor the constraints, which dwarfs everything a
/// bench does with the result — harnesses comparing strategies or
/// configurations on the same data set must share one construction.
pub fn c1_cached() -> &'static DataSet {
    static DS: std::sync::OnceLock<DataSet> = std::sync::OnceLock::new();
    DS.get_or_init(|| c1(PlacementStyle::EvenFeed))
}

/// `C2P1`, built once per process (see [`c1_cached`]).
pub fn c2_cached() -> &'static DataSet {
    static DS: std::sync::OnceLock<DataSet> = std::sync::OnceLock::new();
    DS.get_or_init(|| c2(PlacementStyle::EvenFeed))
}

/// `C3P1`, built once per process (see [`c1_cached`]).
pub fn c3_cached() -> &'static DataSet {
    static DS: std::sync::OnceLock<DataSet> = std::sync::OnceLock::new();
    DS.get_or_init(|| c3(PlacementStyle::EvenFeed))
}

/// The paper's five Table 2 rows: C1P1, C1P2, C2P1, C2P2, C3P1.
pub fn table_data_sets() -> Vec<DataSet> {
    vec![
        c1(PlacementStyle::EvenFeed),
        c1(PlacementStyle::FeedAside),
        c2(PlacementStyle::EvenFeed),
        c2(PlacementStyle::FeedAside),
        c3(PlacementStyle::EvenFeed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::CircuitStats;

    #[test]
    fn c1_magnitudes() {
        let ds = c1(PlacementStyle::EvenFeed);
        let stats = CircuitStats::of(&ds.design.circuit);
        assert!(stats.logic_cells >= 500, "got {}", stats.logic_cells);
        assert!(stats.nets >= 500);
        assert!(ds.design.constraints.len() >= 10);
        ds.placement.validate(&ds.design.circuit).unwrap();
    }

    #[test]
    fn sizes_grow_c1_to_c3() {
        let s1 = CircuitStats::of(&c1(PlacementStyle::EvenFeed).design.circuit);
        let s2 = CircuitStats::of(&c2(PlacementStyle::EvenFeed).design.circuit);
        let s3 = CircuitStats::of(&c3(PlacementStyle::EvenFeed).design.circuit);
        assert!(s1.logic_cells < s2.logic_cells && s2.logic_cells < s3.logic_cells);
        assert!(s1.nets < s2.nets && s2.nets < s3.nets);
    }

    #[test]
    fn p1_p2_share_the_circuit() {
        let p1 = c1(PlacementStyle::EvenFeed);
        let p2 = c1(PlacementStyle::FeedAside);
        assert_eq!(
            p1.design.circuit.cells().len(),
            p2.design.circuit.cells().len()
        );
        assert_eq!(
            p1.design.circuit.nets().len(),
            p2.design.circuit.nets().len()
        );
    }
}
