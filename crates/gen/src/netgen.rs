//! Synthetic ECL circuit generation.

use bgr_netlist::{CellId, CellLibrary, Circuit, CircuitBuilder, NetId, SplitMix64, TermId};
use bgr_timing::PathConstraint;

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Deterministic seed.
    pub seed: u64,
    /// Approximate number of logic cells (excluding feed cells).
    pub logic_cells: usize,
    /// Logic levels between registers/pads.
    pub depth: usize,
    /// Cell rows for placement.
    pub rows: usize,
    /// Probability that a level cell is a flip-flop.
    pub ff_fraction: f64,
    /// Number of differential (DBUF) links.
    pub diff_pairs: usize,
    /// Input/output pad count (each).
    pub pads: usize,
    /// Feed cells pre-inserted per row (the "designer" insertion of P1).
    pub feeds_per_row: usize,
    /// Fraction of gate inputs driven by a uniformly random earlier
    /// producer instead of a recent (local) one — models global signals
    /// that span many rows.
    pub global_fanin: f64,
    /// Number of path constraints to harvest.
    pub num_constraints: usize,
    /// Wiring-delay budget granted to each constraint, as a fraction of
    /// its zero-wire gate delay (smaller = tighter).
    pub wire_budget: f64,
    /// Wire pitch / row geometry.
    pub geometry: bgr_layout::Geometry,
}

impl GenParams {
    /// A laptop-quick design for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            logic_cells: 80,
            depth: 8,
            rows: 4,
            ff_fraction: 0.12,
            diff_pairs: 2,
            pads: 6,
            feeds_per_row: 10,
            global_fanin: 0.10,
            num_constraints: 4,
            wire_budget: 0.35,
            geometry: bgr_layout::Geometry::default(),
        }
    }
}

/// A generated circuit with its harvested constraints.
#[derive(Debug, Clone)]
pub struct GeneratedDesign {
    /// The circuit (logic + clock + diff pairs + pre-inserted feed cells).
    pub circuit: Circuit,
    /// Harvested path constraints.
    pub constraints: Vec<PathConstraint>,
    /// Ids of pre-inserted feed cells, grouped by intended row.
    pub feed_cells: Vec<Vec<CellId>>,
    /// Non-feed cells in placement order (level order), grouped by row.
    pub row_cells: Vec<Vec<CellId>>,
}

/// Generates a levelized random ECL circuit.
///
/// Structure: `pads → [logic levels with embedded DFFs] → pads`, one
/// 2-pitch clock net from a `CLKDRV` to every DFF, and `diff_pairs`
/// DBUF→DBUF differential links spliced between levels.
pub fn generate(params: &GenParams) -> GeneratedDesign {
    let mut rng = SplitMix64::new(params.seed);
    let lib = CellLibrary::ecl();
    let kind = |name: &str| lib.kind_by_name(name).expect("ecl kind");
    let gates = [
        kind("INV"),
        kind("BUF"),
        kind("NOR2"),
        kind("OR2"),
        kind("AND2"),
        kind("NOR3"),
        kind("XOR2"),
        kind("MUX2"),
    ];
    let dff = kind("DFF");
    let dbuf = kind("DBUF");
    let clkdrv = kind("CLKDRV");
    let feed1 = kind("FEED1");
    let mut cb = CircuitBuilder::new(lib);

    // Pads.
    let in_pads: Vec<_> = (0..params.pads)
        .map(|i| cb.add_input_pad(format!("in{i}")))
        .collect();
    let out_pads: Vec<_> = (0..params.pads)
        .map(|i| cb.add_output_pad(format!("out{i}")))
        .collect();
    let clk_pad = cb.add_input_pad("clk");

    let mut net_count = 0usize;
    let new_net =
        |cb: &mut CircuitBuilder, drv: TermId, sinks: Vec<TermId>, count: &mut usize| -> NetId {
            let id = cb
                .add_net(format!("n{}", *count), drv, sinks)
                .expect("generator wiring is valid");
            *count += 1;
            id
        };

    // Levelized logic: per level, cells consume signals from the previous
    // two levels (or pads) and publish their outputs.
    let per_level = params.logic_cells.div_ceil(params.depth.max(1));
    let mut ff_cells: Vec<CellId> = Vec::new();
    let mut cell_order: Vec<CellId> = Vec::new();
    // Pending sink lists per produced signal index.
    let mut pending_sinks: Vec<Vec<TermId>> = Vec::new();
    let mut producers: Vec<(TermId, usize)> = Vec::new(); // (driver term, level)

    // Seed producers with input pads (level 0).
    for &p in &in_pads {
        producers.push((cb.pad_term(p), 0));
        pending_sinks.push(Vec::new());
    }

    let mut diff_budget = params.diff_pairs;

    for level in 1..=params.depth {
        let mut next_producers: Vec<(TermId, usize)> = Vec::new();
        let mut next_pending: Vec<Vec<TermId>> = Vec::new();
        for c in 0..per_level {
            // Choose a producer for each input from recent levels.
            let global_fanin = params.global_fanin;
            let pick = |rng: &mut SplitMix64| -> usize {
                let n = producers.len();
                if rng.next_bool(global_fanin) {
                    // Global signal: any earlier producer.
                    rng.range_usize(0, n)
                } else {
                    // Bias toward late producers for locality.
                    let lo = n.saturating_sub(3 * per_level.max(params.pads));
                    rng.range_usize(lo, n)
                }
            };
            let is_ff = rng.next_bool(params.ff_fraction);
            let want_diff = diff_budget > 0 && level > 1 && c == 0;
            if want_diff {
                // Differential link: DBUF driver feeding a DBUF receiver.
                diff_budget -= 1;
                let u = cb.add_cell(format!("dd{}_{}", level, c), dbuf);
                let v = cb.add_cell(format!("dr{}_{}", level, c), dbuf);
                cell_order.push(u);
                cell_order.push(v);
                let s1 = pick(&mut rng);
                let mut s2 = pick(&mut rng);
                if s2 == s1 {
                    s2 = (s1 + 1) % producers.len();
                }
                pending_sinks[s1].push(cb.cell_term(u, "A").expect("pin"));
                pending_sinks[s2].push(cb.cell_term(u, "AN").expect("pin"));
                // The pair nets themselves: u.Y -> v.A and u.YN -> v.AN.
                let uy = cb.cell_term(u, "Y").expect("pin");
                let va = cb.cell_term(v, "A").expect("pin");
                let uyn = cb.cell_term(u, "YN").expect("pin");
                let van = cb.cell_term(v, "AN").expect("pin");
                let p = new_net(&mut cb, uy, vec![va], &mut net_count);
                let q = new_net(&mut cb, uyn, vec![van], &mut net_count);
                cb.mark_diff_pair(p, q).expect("fresh pair");
                next_producers.push((cb.cell_term(v, "Y").expect("pin"), level));
                next_pending.push(Vec::new());
                next_producers.push((cb.cell_term(v, "YN").expect("pin"), level));
                next_pending.push(Vec::new());
                continue;
            }
            let kind_id = if is_ff {
                dff
            } else {
                gates[rng.range_usize(0, gates.len())]
            };
            let cell = cb.add_cell(format!("u{}_{}", level, c), kind_id);
            cell_order.push(cell);
            if is_ff {
                ff_cells.push(cell);
                let s = pick(&mut rng);
                pending_sinks[s].push(cb.cell_term(cell, "D").expect("pin"));
                next_producers.push((cb.cell_term(cell, "Q").expect("pin"), level));
            } else {
                let kind = cb.library().kind(kind_id).clone();
                for pin in kind.input_pins() {
                    let s = pick(&mut rng);
                    let term = cb.cell_term_at(cell, pin);
                    pending_sinks[s].push(term);
                }
                let out_pin = kind.output_pins().next().expect("gate has output");
                next_producers.push((cb.cell_term_at(cell, out_pin), level));
            }
            next_pending.push(Vec::new());
        }
        producers.append(&mut next_producers);
        pending_sinks.append(&mut next_pending);
    }

    // Route final-level producers to output pads; ensure every output pad
    // is driven.
    for (i, &p) in out_pads.iter().enumerate() {
        let idx = producers.len() - 1 - (i % per_level.max(1)).min(producers.len() - 1);
        pending_sinks[idx].push(cb.pad_term(p));
    }

    // Clock tree: CLKDRV -> all DFF clock pins, as a 2-pitch net.
    let drv = cb.add_cell("clkdrv", clkdrv);
    cell_order.push(drv);
    let clk_term = cb.pad_term(clk_pad);
    let drv_a = cb.cell_term(drv, "A").expect("pin");
    new_net(&mut cb, clk_term, vec![drv_a], &mut net_count);
    if !ff_cells.is_empty() {
        let sinks: Vec<TermId> = ff_cells
            .iter()
            .map(|&ff| cb.cell_term(ff, "CK").expect("pin"))
            .collect();
        let drv_y = cb.cell_term(drv, "Y").expect("pin");
        cb.add_wide_net("clk", drv_y, sinks, 2).expect("clock net");
        net_count += 1;
    }

    // Materialize all pending producer nets with at least one sink.
    for (idx, sinks) in pending_sinks.into_iter().enumerate() {
        if sinks.is_empty() {
            continue;
        }
        let (drv, _) = producers[idx];
        new_net(&mut cb, drv, sinks, &mut net_count);
    }

    // Feed cells, grouped per row for the placer.
    let mut feed_cells = vec![Vec::new(); params.rows];
    for (r, row) in feed_cells.iter_mut().enumerate() {
        for k in 0..params.feeds_per_row {
            row.push(cb.add_cell(format!("feed{r}_{k}"), feed1));
        }
    }

    let circuit = cb.finish().expect("generated circuit validates");

    // Split placeable logic cells over rows in level order.
    let per_row = cell_order.len().div_ceil(params.rows.max(1));
    let row_cells: Vec<Vec<CellId>> = cell_order
        .chunks(per_row.max(1))
        .map(|c| c.to_vec())
        .collect();
    let mut row_cells = row_cells;
    row_cells.resize(params.rows, Vec::new());

    let constraints = crate::constraints::harvest_constraints(
        &circuit,
        params.num_constraints,
        params.wire_budget,
        params.seed ^ 0x9e37_79b9,
    );

    GeneratedDesign {
        circuit,
        constraints,
        feed_cells,
        row_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::CircuitStats;

    #[test]
    fn small_design_validates_and_has_structure() {
        let design = generate(&GenParams::small(7));
        let stats = CircuitStats::of(&design.circuit);
        assert!(stats.logic_cells >= 60);
        assert!(stats.feed_cells >= 40);
        assert!(stats.nets > 50);
        assert_eq!(stats.diff_pairs, 2);
        assert!(stats.wide_nets >= 1, "clock net is 2-pitch");
        assert!(stats.max_fanout >= 3);
        assert!(!design.constraints.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenParams::small(7));
        let b = generate(&GenParams::small(7));
        assert_eq!(a.circuit.cells().len(), b.circuit.cells().len());
        assert_eq!(a.circuit.nets().len(), b.circuit.nets().len());
        assert_eq!(a.constraints.len(), b.constraints.len());
        for (x, y) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.sink, y.sink);
            assert!((x.limit_ps - y.limit_ps).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenParams::small(1));
        let b = generate(&GenParams::small(2));
        assert!(
            a.circuit.nets().len() != b.circuit.nets().len()
                || a.constraints
                    .iter()
                    .zip(&b.constraints)
                    .any(|(x, y)| x.source != y.source)
        );
    }
}
