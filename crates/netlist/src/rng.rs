//! A tiny deterministic PRNG (SplitMix64) for the workspace.
//!
//! The repository builds fully offline: no external crates. Everything
//! that needs randomness — the synthetic-circuit generator in `bgr-gen`
//! and the randomized differential tests across the workspace — draws
//! from this one generator, so the whole pipeline stays reproducible
//! from a single `u64` seed.
//!
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom
//! number generators", OOPSLA 2014) passes BigCrush, has a full 2^64
//! period, and is a handful of arithmetic ops per draw — more than
//! enough statistical quality for circuit synthesis and property-style
//! testing, with none of the dependency weight.

/// A SplitMix64 pseudorandom generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is
    /// at most `bound / 2^64`, far below anything our tests can observe.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `i32` draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi as i64 - lo as i64) as u64) as i32
    }

    /// Uniform draw in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn reference_vector() {
        // SplitMix64 with seed 1234567: first outputs from the published
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.range_usize(3, 10);
            assert!((3..10).contains(&x));
            let y = r.range_i32(-5, 5);
            assert!((-5..5).contains(&y));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut r = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| r.next_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements almost surely move");
    }
}
