//! Circuit substrate for the `bgr` global router.
//!
//! This crate models the *logical* side of a bipolar (ECL) standard-cell
//! LSI exactly as the router of Harada & Kitazawa (DAC 1994) consumes it:
//!
//! * a [`CellLibrary`] of [`CellKind`]s carrying the capacitance delay-model
//!   parameters of the paper's Eq. (1): intrinsic delays `T0(t_i, t_o)`
//!   per timing arc, fan-in capacitance factors `F_in(t)` per terminal, and
//!   per-output fan-in delay factor `T_f(t_o)` and unit-capacitance delay
//!   `T_d(t_o)`;
//! * a [`Circuit`] of cell instances, external pads and [`Net`]s, including
//!   the bipolar-specific annotations the router needs — *differential
//!   drive pairs* (§4.1) and *multi-pitch* wide nets (§4.2).
//!
//! # Example
//!
//! Build a two-gate circuit and validate it:
//!
//! ```
//! use bgr_netlist::{CellLibrary, CircuitBuilder};
//!
//! let lib = CellLibrary::ecl();
//! let inv = lib.kind_by_name("INV").unwrap();
//! let mut cb = CircuitBuilder::new(lib);
//! let a = cb.add_input_pad("a");
//! let y = cb.add_output_pad("y");
//! let u1 = cb.add_cell("u1", inv);
//! let u2 = cb.add_cell("u2", inv);
//! cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])?;
//! cb.add_net("n2", cb.cell_term(u1, "Y").unwrap(), [cb.cell_term(u2, "A").unwrap()])?;
//! cb.add_net("n3", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])?;
//! let circuit = cb.finish()?;
//! assert_eq!(circuit.cells().len(), 2);
//! # Ok::<(), bgr_netlist::NetlistError>(())
//! ```

pub mod circuit;
pub mod error;
pub mod ids;
pub mod library;
pub mod rng;
pub mod stats;

pub use circuit::{Cell, Circuit, CircuitBuilder, Net, Pad, TermOwner, Terminal};
pub use error::NetlistError;
pub use ids::{CellId, KindId, NetId, PadId, TermId};
pub use library::{AccessSide, ArcSpec, CellKind, CellKindBuilder, CellLibrary, TermDir, TermSpec};
pub use rng::SplitMix64;
pub use stats::CircuitStats;
