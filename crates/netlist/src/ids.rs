//! Typed index newtypes for the circuit model.
//!
//! All collections in this workspace are index-addressed `Vec`s; these
//! newtypes keep a `CellId` from being confused with a `NetId` at compile
//! time (Rust API guideline C-NEWTYPE).

/// Defines a `u32`-backed index newtype with the common trait set and
/// conversion helpers.
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the raw index for slice addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// Index of a [`crate::CellKind`] within a [`crate::CellLibrary`].
    KindId
);
define_id!(
    /// Index of a [`crate::Cell`] instance within a [`crate::Circuit`].
    CellId
);
define_id!(
    /// Index of a [`crate::Net`] within a [`crate::Circuit`].
    NetId
);
define_id!(
    /// Index of a [`crate::Terminal`] within a [`crate::Circuit`].
    ///
    /// Terminals are created eagerly: one per cell pin when the cell is
    /// instantiated, and one per external pad.
    TermId
);
define_id!(
    /// Index of an external [`crate::Pad`] within a [`crate::Circuit`].
    PadId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(CellId::from(42usize), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(NetId::new(7), NetId::new(7));
    }

    #[test]
    fn display_names_the_type() {
        assert_eq!(TermId::new(3).to_string(), "TermId(3)");
    }

    #[test]
    fn ids_are_hashable() {
        let mut set = std::collections::HashSet::new();
        set.insert(PadId::new(0));
        set.insert(PadId::new(0));
        assert_eq!(set.len(), 1);
    }
}
