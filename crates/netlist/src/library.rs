//! Cell library: kinds, terminals, timing arcs and the ECL demo library.
//!
//! A [`CellKind`] carries everything the router and the timing analyzer
//! need about a cell type:
//!
//! * physical width in wiring *pitches* and per-pin x offsets,
//! * the delay-model parameters of the paper's Eq. (1):
//!   intrinsic arc delays `T0(t_i, t_o)`, per-terminal fan-in capacitance
//!   `F_in(t)` (fF), and per-output factors `T_f` (ps/fF of fan-in load)
//!   and `T_d` (ps/fF of wiring capacitance),
//! * the *sequential* flag (flip-flops cut combinational paths), and
//! * the *feed slot* count — bipolar cells normally have **no** space for
//!   feedthrough wires (§4.3), so only dedicated feed cells (and spacer
//!   gaps) contribute feedthrough positions.

use crate::ids::KindId;

/// Direction of a cell terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermDir {
    /// Signal flows into the cell.
    Input,
    /// Signal flows out of the cell.
    Output,
}

/// Which channel(s) a terminal's physical position can be tapped from.
///
/// Standard-cell terminals are usually reachable from both the channel
/// above and the channel below the cell row; restricted pins model blocked
/// access. The router turns each reachable side into a candidate
/// *terminal-position* vertex of the routing graph (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessSide {
    /// Only the channel above the row.
    Top,
    /// Only the channel below the row.
    Bottom,
    /// Either channel (two candidate positions).
    #[default]
    Both,
}

/// Specification of one terminal of a [`CellKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct TermSpec {
    /// Pin name, unique within the kind (e.g. `"A"`, `"Y"`).
    pub name: String,
    /// Signal direction.
    pub dir: TermDir,
    /// Channel access for the physical pin.
    pub access: AccessSide,
    /// Fan-in capacitance `F_in(t)` in fF presented to the driving net.
    pub fanin_ff: f64,
    /// Horizontal pin offset from the cell origin, in pitches.
    pub offset_pitches: u32,
}

/// A timing arc `t_i -> t_o` with intrinsic delay `T0(t_i, t_o)` in ps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcSpec {
    /// Index of the input terminal within [`CellKind::terms`].
    pub from: usize,
    /// Index of the output terminal within [`CellKind::terms`].
    pub to: usize,
    /// Intrinsic delay `T0` in ps.
    pub intrinsic_ps: f64,
}

/// A cell type in the library.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKind {
    name: String,
    width_pitches: u32,
    terms: Vec<TermSpec>,
    arcs: Vec<ArcSpec>,
    fanin_delay_ps_per_ff: f64,
    load_delay_ps_per_ff: f64,
    sequential: bool,
    feed_slots: u32,
}

impl CellKind {
    /// Starts building a kind with the given name and width in pitches.
    pub fn builder(name: impl Into<String>, width_pitches: u32) -> CellKindBuilder {
        CellKindBuilder::new(name, width_pitches)
    }

    /// Kind name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width in wiring pitches.
    pub fn width_pitches(&self) -> u32 {
        self.width_pitches
    }

    /// Terminal specifications, indexed by pin index.
    pub fn terms(&self) -> &[TermSpec] {
        &self.terms
    }

    /// Timing arcs.
    pub fn arcs(&self) -> &[ArcSpec] {
        &self.arcs
    }

    /// Fan-in delay factor `T_f` in ps per fF of fan-out input load.
    pub fn fanin_delay_ps_per_ff(&self) -> f64 {
        self.fanin_delay_ps_per_ff
    }

    /// Unit wiring-capacitance delay `T_d` in ps per fF.
    pub fn load_delay_ps_per_ff(&self) -> f64 {
        self.load_delay_ps_per_ff
    }

    /// Whether this kind is sequential (cuts combinational propagation).
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// Number of 1-pitch feedthrough slots this kind contributes.
    ///
    /// Zero for ordinary bipolar cells; positive for feed cells.
    pub fn feed_slots(&self) -> u32 {
        self.feed_slots
    }

    /// Whether this is a dedicated feed cell.
    pub fn is_feed(&self) -> bool {
        self.feed_slots > 0
    }

    /// Looks up a pin index by name.
    pub fn pin(&self, name: &str) -> Option<usize> {
        self.terms.iter().position(|t| t.name == name)
    }

    /// Iterates over indices of output terminals.
    pub fn output_pins(&self) -> impl Iterator<Item = usize> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.dir == TermDir::Output)
            .map(|(i, _)| i)
    }

    /// Iterates over indices of input terminals.
    pub fn input_pins(&self) -> impl Iterator<Item = usize> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.dir == TermDir::Input)
            .map(|(i, _)| i)
    }
}

/// Builder for [`CellKind`] (Rust API guideline C-BUILDER).
///
/// # Example
///
/// ```
/// use bgr_netlist::{CellKind, TermDir};
///
/// let nor2 = CellKind::builder("NOR2", 4)
///     .input("A", 6.0, 0)
///     .input("B", 6.0, 1)
///     .output("Y", 3)
///     .arc("A", "Y", 95.0)
///     .arc("B", "Y", 105.0)
///     .fanin_delay(3.0)
///     .load_delay(0.55)
///     .build();
/// assert_eq!(nor2.terms().len(), 3);
/// assert_eq!(nor2.arcs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CellKindBuilder {
    kind: CellKind,
    pending_arcs: Vec<(String, String, f64)>,
}

impl CellKindBuilder {
    fn new(name: impl Into<String>, width_pitches: u32) -> Self {
        Self {
            kind: CellKind {
                name: name.into(),
                width_pitches,
                terms: Vec::new(),
                arcs: Vec::new(),
                fanin_delay_ps_per_ff: 0.0,
                load_delay_ps_per_ff: 0.0,
                sequential: false,
                feed_slots: 0,
            },
            pending_arcs: Vec::new(),
        }
    }

    /// Adds an input pin with fan-in capacitance (fF) and x offset.
    pub fn input(mut self, name: &str, fanin_ff: f64, offset_pitches: u32) -> Self {
        self.kind.terms.push(TermSpec {
            name: name.to_owned(),
            dir: TermDir::Input,
            access: AccessSide::Both,
            fanin_ff,
            offset_pitches,
        });
        self
    }

    /// Adds an output pin at the given x offset.
    pub fn output(mut self, name: &str, offset_pitches: u32) -> Self {
        self.kind.terms.push(TermSpec {
            name: name.to_owned(),
            dir: TermDir::Output,
            access: AccessSide::Both,
            fanin_ff: 0.0,
            offset_pitches,
        });
        self
    }

    /// Restricts the channel access of the most recently added pin.
    ///
    /// # Panics
    ///
    /// Panics if no pin has been added yet.
    pub fn access(mut self, access: AccessSide) -> Self {
        self.kind
            .terms
            .last_mut()
            .expect("access() requires a preceding pin")
            .access = access;
        self
    }

    /// Adds a timing arc `from -> to` with intrinsic delay `T0` in ps.
    pub fn arc(mut self, from: &str, to: &str, intrinsic_ps: f64) -> Self {
        self.pending_arcs
            .push((from.to_owned(), to.to_owned(), intrinsic_ps));
        self
    }

    /// Sets the fan-in delay factor `T_f` (ps/fF).
    pub fn fanin_delay(mut self, ps_per_ff: f64) -> Self {
        self.kind.fanin_delay_ps_per_ff = ps_per_ff;
        self
    }

    /// Sets the unit wiring-capacitance delay `T_d` (ps/fF).
    pub fn load_delay(mut self, ps_per_ff: f64) -> Self {
        self.kind.load_delay_ps_per_ff = ps_per_ff;
        self
    }

    /// Marks the kind as sequential (flip-flop / latch).
    pub fn sequential(mut self) -> Self {
        self.kind.sequential = true;
        self
    }

    /// Declares the kind a feed cell contributing `slots` feedthrough
    /// positions.
    pub fn feed(mut self, slots: u32) -> Self {
        self.kind.feed_slots = slots;
        self
    }

    /// Finishes the kind.
    ///
    /// # Panics
    ///
    /// Panics if an arc references an unknown pin name or connects pins of
    /// the wrong direction; kinds are static data, so this is a programming
    /// error rather than a recoverable condition.
    pub fn build(mut self) -> CellKind {
        for (from, to, t0) in std::mem::take(&mut self.pending_arcs) {
            let fi = self
                .kind
                .pin(&from)
                .unwrap_or_else(|| panic!("kind {}: unknown arc source {from}", self.kind.name));
            let ti = self
                .kind
                .pin(&to)
                .unwrap_or_else(|| panic!("kind {}: unknown arc target {to}", self.kind.name));
            assert_eq!(
                self.kind.terms[fi].dir,
                TermDir::Input,
                "arc source must be an input pin"
            );
            assert_eq!(
                self.kind.terms[ti].dir,
                TermDir::Output,
                "arc target must be an output pin"
            );
            self.kind.arcs.push(ArcSpec {
                from: fi,
                to: ti,
                intrinsic_ps: t0,
            });
        }
        self.kind
    }
}

/// An immutable collection of [`CellKind`]s.
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    kinds: Vec<CellKind>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kind, returning its id.
    pub fn add(&mut self, kind: CellKind) -> KindId {
        let id = KindId::new(self.kinds.len());
        self.kinds.push(kind);
        id
    }

    /// All kinds in insertion order.
    pub fn kinds(&self) -> &[CellKind] {
        &self.kinds
    }

    /// Looks up a kind by id.
    pub fn kind(&self, id: KindId) -> &CellKind {
        &self.kinds[id.index()]
    }

    /// Checks whether the id is valid for this library.
    pub fn contains(&self, id: KindId) -> bool {
        id.index() < self.kinds.len()
    }

    /// Finds a kind id by name.
    pub fn kind_by_name(&self, name: &str) -> Option<KindId> {
        self.kinds
            .iter()
            .position(|k| k.name() == name)
            .map(KindId::new)
    }

    /// A realistic ECL demo library.
    ///
    /// Delay numbers follow early-1990s Gbit/s-class bipolar standard
    /// cells: intrinsic gate delays of 60–140 ps, input capacitances of a
    /// few fF, and load sensitivities of a fraction of a ps per fF. The
    /// `FEED1`/`FEED2` kinds are pure feed cells; `CLKDRV` is a high-drive
    /// clock buffer intended to drive multi-pitch nets.
    pub fn ecl() -> Self {
        let mut lib = Self::new();
        lib.add(
            CellKind::builder("INV", 3)
                .input("A", 5.0, 0)
                .output("Y", 2)
                .arc("A", "Y", 60.0)
                .fanin_delay(2.5)
                .load_delay(0.45)
                .build(),
        );
        lib.add(
            CellKind::builder("BUF", 3)
                .input("A", 5.0, 0)
                .output("Y", 2)
                .arc("A", "Y", 70.0)
                .fanin_delay(2.0)
                .load_delay(0.40)
                .build(),
        );
        lib.add(
            CellKind::builder("NOR2", 4)
                .input("A", 6.0, 0)
                .input("B", 6.0, 1)
                .output("Y", 3)
                .arc("A", "Y", 95.0)
                .arc("B", "Y", 105.0)
                .fanin_delay(3.0)
                .load_delay(0.55)
                .build(),
        );
        lib.add(
            CellKind::builder("OR2", 4)
                .input("A", 6.0, 0)
                .input("B", 6.0, 1)
                .output("Y", 3)
                .arc("A", "Y", 90.0)
                .arc("B", "Y", 100.0)
                .fanin_delay(3.0)
                .load_delay(0.55)
                .build(),
        );
        lib.add(
            CellKind::builder("AND2", 4)
                .input("A", 6.5, 0)
                .input("B", 6.5, 1)
                .output("Y", 3)
                .arc("A", "Y", 100.0)
                .arc("B", "Y", 110.0)
                .fanin_delay(3.2)
                .load_delay(0.60)
                .build(),
        );
        lib.add(
            CellKind::builder("NOR3", 5)
                .input("A", 6.0, 0)
                .input("B", 6.0, 1)
                .input("C", 6.0, 2)
                .output("Y", 4)
                .arc("A", "Y", 110.0)
                .arc("B", "Y", 120.0)
                .arc("C", "Y", 130.0)
                .fanin_delay(3.4)
                .load_delay(0.65)
                .build(),
        );
        lib.add(
            CellKind::builder("XOR2", 6)
                .input("A", 8.0, 0)
                .input("B", 8.0, 2)
                .output("Y", 5)
                .arc("A", "Y", 130.0)
                .arc("B", "Y", 140.0)
                .fanin_delay(3.8)
                .load_delay(0.70)
                .build(),
        );
        lib.add(
            CellKind::builder("MUX2", 6)
                .input("A", 7.0, 0)
                .input("B", 7.0, 1)
                .input("S", 8.5, 3)
                .output("Y", 5)
                .arc("A", "Y", 115.0)
                .arc("B", "Y", 115.0)
                .arc("S", "Y", 135.0)
                .fanin_delay(3.5)
                .load_delay(0.65)
                .build(),
        );
        lib.add(
            CellKind::builder("DFF", 8)
                .input("D", 7.0, 0)
                .input("CK", 9.0, 3)
                .output("Q", 7)
                .arc("CK", "Q", 150.0)
                .fanin_delay(2.8)
                .load_delay(0.50)
                .sequential()
                .build(),
        );
        lib.add(
            CellKind::builder("CLKDRV", 10)
                .input("A", 12.0, 0)
                .output("Y", 9)
                .arc("A", "Y", 120.0)
                .fanin_delay(0.8)
                .load_delay(0.12)
                .build(),
        );
        // Differential buffer: true/complement inputs and outputs sit one
        // pitch apart, so a differential pair's two nets see identical
        // relative geometry — the §4.1 homogeneity precondition.
        lib.add(
            CellKind::builder("DBUF", 5)
                .input("A", 6.0, 0)
                .input("AN", 6.0, 1)
                .output("Y", 3)
                .output("YN", 4)
                .arc("A", "Y", 100.0)
                .arc("AN", "YN", 100.0)
                .fanin_delay(3.0)
                .load_delay(0.55)
                .build(),
        );
        lib.add(CellKind::builder("FEED1", 1).feed(1).build());
        lib.add(CellKind::builder("FEED2", 2).feed(2).build());
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_arcs_by_name() {
        let kind = CellKind::builder("X", 4)
            .input("A", 5.0, 0)
            .output("Y", 3)
            .arc("A", "Y", 50.0)
            .build();
        assert_eq!(kind.arcs()[0].from, 0);
        assert_eq!(kind.arcs()[0].to, 1);
        assert_eq!(kind.arcs()[0].intrinsic_ps, 50.0);
    }

    #[test]
    #[should_panic(expected = "unknown arc source")]
    fn builder_panics_on_unknown_arc_pin() {
        let _ = CellKind::builder("X", 4)
            .output("Y", 3)
            .arc("A", "Y", 50.0)
            .build();
    }

    #[test]
    fn pin_lookup_by_name() {
        let lib = CellLibrary::ecl();
        let nor2 = lib.kind(lib.kind_by_name("NOR2").unwrap());
        assert_eq!(nor2.pin("B"), Some(1));
        assert_eq!(nor2.pin("Z"), None);
    }

    #[test]
    fn ecl_library_shape() {
        let lib = CellLibrary::ecl();
        assert!(lib.kind_by_name("DFF").is_some());
        let dff = lib.kind(lib.kind_by_name("DFF").unwrap());
        assert!(dff.is_sequential());
        // The only DFF arc is clock-to-Q; D does not propagate
        // combinationally.
        assert_eq!(dff.arcs().len(), 1);
        assert_eq!(dff.terms()[dff.arcs()[0].from].name, "CK");

        let feed = lib.kind(lib.kind_by_name("FEED1").unwrap());
        assert!(feed.is_feed());
        assert_eq!(feed.terms().len(), 0);
    }

    #[test]
    fn input_output_pin_iterators() {
        let lib = CellLibrary::ecl();
        let mux = lib.kind(lib.kind_by_name("MUX2").unwrap());
        assert_eq!(mux.input_pins().count(), 3);
        assert_eq!(mux.output_pins().count(), 1);
    }

    #[test]
    fn access_side_modifier() {
        let kind = CellKind::builder("X", 2)
            .input("A", 1.0, 0)
            .access(AccessSide::Top)
            .output("Y", 1)
            .build();
        assert_eq!(kind.terms()[0].access, AccessSide::Top);
        assert_eq!(kind.terms()[1].access, AccessSide::Both);
    }

    #[test]
    fn library_contains_and_lookup() {
        let lib = CellLibrary::ecl();
        let id = lib.kind_by_name("INV").unwrap();
        assert!(lib.contains(id));
        assert!(!lib.contains(KindId::new(999)));
        assert_eq!(lib.kind(id).name(), "INV");
    }
}
