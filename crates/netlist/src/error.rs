//! Error type for circuit construction and validation.

use crate::ids::{CellId, KindId, NetId, TermId};

/// Errors produced while building or validating a [`crate::Circuit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net's driver terminal is not an output-direction terminal
    /// (a cell output pin or an input pad).
    DriverNotOutput(NetId, TermId),
    /// A net sink terminal is not an input-direction terminal
    /// (a cell input pin or an output pad).
    SinkNotInput(NetId, TermId),
    /// A terminal was connected to more than one net.
    TerminalReused(TermId, NetId, NetId),
    /// A net has no sinks.
    EmptyNet(NetId),
    /// The combinational subgraph contains a cycle through the given cell.
    CombinationalCycle(CellId),
    /// A differential pair references the same net twice.
    DiffPairSelf(NetId),
    /// A differential pair's nets have different sink counts or widths.
    DiffPairMismatch(NetId, NetId),
    /// A net participates in more than one differential pair.
    DiffPairReused(NetId),
    /// A kind id does not exist in the library.
    UnknownKind(KindId),
    /// A pin name lookup failed on the given kind.
    UnknownPin(KindId, String),
    /// A net width of zero pitches was requested.
    ZeroWidth(NetId),
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DriverNotOutput(net, term) => {
                write!(f, "net {net} is driven by non-output terminal {term}")
            }
            Self::SinkNotInput(net, term) => {
                write!(f, "net {net} has non-input sink terminal {term}")
            }
            Self::TerminalReused(term, a, b) => {
                write!(f, "terminal {term} connected to both {a} and {b}")
            }
            Self::EmptyNet(net) => write!(f, "net {net} has no sinks"),
            Self::CombinationalCycle(cell) => {
                write!(f, "combinational cycle through cell {cell}")
            }
            Self::DiffPairSelf(net) => write!(f, "differential pair of {net} with itself"),
            Self::DiffPairMismatch(a, b) => {
                write!(
                    f,
                    "differential pair {a}/{b} has mismatched sinks or widths"
                )
            }
            Self::DiffPairReused(net) => {
                write!(f, "net {net} appears in more than one differential pair")
            }
            Self::UnknownKind(kind) => write!(f, "unknown cell kind {kind}"),
            Self::UnknownPin(kind, pin) => write!(f, "kind {kind} has no pin named `{pin}`"),
            Self::ZeroWidth(net) => write!(f, "net {net} requested zero-pitch width"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let err = NetlistError::EmptyNet(NetId::new(4));
        let text = err.to_string();
        assert!(text.contains("NetId(4)"));
        assert!(text.ends_with("no sinks"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
