//! Circuit instances: cells, pads, terminals, nets, differential pairs.

use crate::error::NetlistError;
use crate::ids::{CellId, KindId, NetId, PadId, TermId};
use crate::library::{CellLibrary, TermDir};

/// A placed-able cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    name: String,
    kind: KindId,
    /// Terminal ids of this cell, indexed by pin index of the kind.
    terms: Vec<TermId>,
}

impl Cell {
    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell kind.
    pub fn kind(&self) -> KindId {
        self.kind
    }

    /// Terminal ids, indexed by pin index.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }
}

/// An external (chip-boundary) terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pad {
    name: String,
    dir: TermDir,
    term: TermId,
}

impl Pad {
    /// Pad name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direction as seen by the chip core: an *input* pad drives a net,
    /// an *output* pad sinks one.
    pub fn dir(&self) -> TermDir {
        self.dir
    }

    /// The pad's terminal id.
    pub fn term(&self) -> TermId {
        self.term
    }
}

/// Who owns a terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermOwner {
    /// Pin `pin` of cell `cell`.
    Cell {
        /// Owning cell instance.
        cell: CellId,
        /// Pin index within the cell's kind.
        pin: usize,
    },
    /// An external pad.
    Pad(PadId),
}

/// A connectable point: a cell pin or an external pad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Terminal {
    owner: TermOwner,
    net: Option<NetId>,
}

impl Terminal {
    /// The owner of this terminal.
    pub fn owner(&self) -> TermOwner {
        self.owner
    }

    /// The net connected to this terminal, if any.
    pub fn net(&self) -> Option<NetId> {
        self.net
    }
}

/// A signal net: one driver, one or more sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    name: String,
    driver: TermId,
    sinks: Vec<TermId>,
    width_pitches: u32,
}

impl Net {
    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Driving terminal (a cell output or input pad).
    pub fn driver(&self) -> TermId {
        self.driver
    }

    /// Sink terminals (cell inputs or output pads).
    pub fn sinks(&self) -> &[TermId] {
        &self.sinks
    }

    /// Wire width in pitches (§4.2 multi-pitch wires); 1 for ordinary nets.
    pub fn width_pitches(&self) -> u32 {
        self.width_pitches
    }

    /// Iterates over all terminals of the net, driver first.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }
}

/// A validated circuit: library + instances + connectivity.
#[derive(Debug, Clone)]
pub struct Circuit {
    library: CellLibrary,
    cells: Vec<Cell>,
    pads: Vec<Pad>,
    terms: Vec<Terminal>,
    nets: Vec<Net>,
    diff_pairs: Vec<(NetId, NetId)>,
}

impl Circuit {
    /// The cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Cell instances.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// External pads.
    pub fn pads(&self) -> &[Pad] {
        &self.pads
    }

    /// All terminals.
    pub fn terms(&self) -> &[Terminal] {
        &self.terms
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Differential drive pairs (§4.1). Each net appears at most once.
    pub fn diff_pairs(&self) -> &[(NetId, NetId)] {
        &self.diff_pairs
    }

    /// Looks up a cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a pad.
    pub fn pad(&self, id: PadId) -> &Pad {
        &self.pads[id.index()]
    }

    /// Looks up a terminal.
    pub fn term(&self, id: TermId) -> &Terminal {
        &self.terms[id.index()]
    }

    /// Looks up a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::new)
    }

    /// Iterates over cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len()).map(CellId::new)
    }

    /// Returns the differential partner of a net, if it is paired.
    pub fn diff_partner(&self, net: NetId) -> Option<NetId> {
        self.diff_pairs.iter().find_map(|&(a, b)| {
            if a == net {
                Some(b)
            } else if b == net {
                Some(a)
            } else {
                None
            }
        })
    }

    /// The direction of a terminal as a net endpoint.
    ///
    /// An input *pad* acts as a driver (output direction into the core);
    /// an output pad acts as a sink.
    pub fn term_dir(&self, id: TermId) -> TermDir {
        match self.terms[id.index()].owner {
            TermOwner::Cell { cell, pin } => {
                self.library.kind(self.cells[cell.index()].kind()).terms()[pin].dir
            }
            TermOwner::Pad(pad) => match self.pads[pad.index()].dir() {
                TermDir::Input => TermDir::Output,
                TermDir::Output => TermDir::Input,
            },
        }
    }

    /// Fan-in capacitance `F_in(t)` of a terminal in fF (0 for pads).
    pub fn term_fanin_ff(&self, id: TermId) -> f64 {
        match self.terms[id.index()].owner {
            TermOwner::Cell { cell, pin } => {
                self.library.kind(self.cells[cell.index()].kind()).terms()[pin].fanin_ff
            }
            TermOwner::Pad(_) => 0.0,
        }
    }

    /// A short human-readable description of a terminal, for diagnostics.
    pub fn term_name(&self, id: TermId) -> String {
        match self.terms[id.index()].owner {
            TermOwner::Cell { cell, pin } => {
                let c = &self.cells[cell.index()];
                let kind = self.library.kind(c.kind());
                format!("{}/{}", c.name(), kind.terms()[pin].name)
            }
            TermOwner::Pad(pad) => self.pads[pad.index()].name().to_owned(),
        }
    }

    /// Total fan-out input capacitance of a net, `Σ F_in(t)` over sinks.
    pub fn net_fanout_ff(&self, net: NetId) -> f64 {
        self.nets[net.index()]
            .sinks()
            .iter()
            .map(|&s| self.term_fanin_ff(s))
            .sum()
    }

    /// Appends a feed cell to a validated circuit (feed-cell insertion,
    /// §4.3 of the paper). Feed cells have no terminals, so connectivity
    /// invariants are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a feed kind of this circuit's library.
    pub fn add_feed_cell(&mut self, name: impl Into<String>, kind: KindId) -> CellId {
        assert!(
            self.library.contains(kind) && self.library.kind(kind).is_feed(),
            "add_feed_cell requires a feed kind"
        );
        let id = CellId::new(self.cells.len());
        self.cells.push(Cell {
            name: name.into(),
            kind,
            terms: Vec::new(),
        });
        id
    }

    /// Validates structural invariants. Called by
    /// [`CircuitBuilder::finish`]; re-exposed for circuits modified by the
    /// router (e.g. after feed-cell insertion).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: driver/sink directions,
    /// terminal reuse, empty nets, differential-pair consistency and
    /// combinational acyclicity.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut used: Vec<Option<NetId>> = vec![None; self.terms.len()];
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId::new(i);
            if net.sinks().is_empty() {
                return Err(NetlistError::EmptyNet(id));
            }
            if net.width_pitches() == 0 {
                return Err(NetlistError::ZeroWidth(id));
            }
            if self.term_dir(net.driver()) != TermDir::Output {
                return Err(NetlistError::DriverNotOutput(id, net.driver()));
            }
            for &s in net.sinks() {
                if self.term_dir(s) != TermDir::Input {
                    return Err(NetlistError::SinkNotInput(id, s));
                }
            }
            for t in net.terms() {
                if let Some(prev) = used[t.index()] {
                    return Err(NetlistError::TerminalReused(t, prev, id));
                }
                used[t.index()] = Some(id);
            }
        }
        self.validate_diff_pairs()?;
        self.validate_acyclic()
    }

    fn validate_diff_pairs(&self) -> Result<(), NetlistError> {
        let mut seen = vec![false; self.nets.len()];
        for &(a, b) in &self.diff_pairs {
            if a == b {
                return Err(NetlistError::DiffPairSelf(a));
            }
            for n in [a, b] {
                if seen[n.index()] {
                    return Err(NetlistError::DiffPairReused(n));
                }
                seen[n.index()] = true;
            }
            let na = &self.nets[a.index()];
            let nb = &self.nets[b.index()];
            if na.sinks().len() != nb.sinks().len() || na.width_pitches() != nb.width_pitches() {
                return Err(NetlistError::DiffPairMismatch(a, b));
            }
        }
        Ok(())
    }

    /// DFS cycle check over the combinational cell graph.
    fn validate_acyclic(&self) -> Result<(), NetlistError> {
        // Adjacency: cell -> cells reachable through one combinational arc
        // + net hop.
        let n = self.cells.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (ci, cell) in self.cells.iter().enumerate() {
            let kind = self.library.kind(cell.kind());
            if kind.is_sequential() {
                continue;
            }
            for arc in kind.arcs() {
                let out_term = cell.terms()[arc.to];
                if let Some(net) = self.terms[out_term.index()].net() {
                    for &s in self.nets[net.index()].sinks() {
                        if let TermOwner::Cell { cell: dst, .. } = self.terms[s.index()].owner {
                            adj[ci].push(dst.index() as u32);
                        }
                    }
                }
            }
        }
        // Iterative coloring DFS.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; n];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            color[start] = GRAY;
            stack.push((start as u32, 0));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                let vi = v as usize;
                if *next < adj[vi].len() {
                    let w = adj[vi][*next] as usize;
                    *next += 1;
                    match color[w] {
                        WHITE => {
                            color[w] = GRAY;
                            stack.push((w as u32, 0));
                        }
                        GRAY => return Err(NetlistError::CombinationalCycle(CellId::new(w))),
                        _ => {}
                    }
                } else {
                    color[vi] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`Circuit`] (Rust API guideline C-BUILDER).
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    library: CellLibrary,
    cells: Vec<Cell>,
    pads: Vec<Pad>,
    terms: Vec<Terminal>,
    nets: Vec<Net>,
    diff_pairs: Vec<(NetId, NetId)>,
}

impl CircuitBuilder {
    /// Starts a circuit over the given library.
    pub fn new(library: CellLibrary) -> Self {
        Self {
            library,
            cells: Vec::new(),
            pads: Vec::new(),
            terms: Vec::new(),
            nets: Vec::new(),
            diff_pairs: Vec::new(),
        }
    }

    /// The library the builder was created with.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Adds a cell instance; terminals for every pin are created eagerly.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not in the library.
    pub fn add_cell(&mut self, name: impl Into<String>, kind: KindId) -> CellId {
        assert!(self.library.contains(kind), "unknown kind {kind}");
        let id = CellId::new(self.cells.len());
        let pin_count = self.library.kind(kind).terms().len();
        let terms = (0..pin_count)
            .map(|pin| {
                let t = TermId::new(self.terms.len());
                self.terms.push(Terminal {
                    owner: TermOwner::Cell { cell: id, pin },
                    net: None,
                });
                t
            })
            .collect();
        self.cells.push(Cell {
            name: name.into(),
            kind,
            terms,
        });
        id
    }

    /// Adds an external input pad (drives a net).
    pub fn add_input_pad(&mut self, name: impl Into<String>) -> PadId {
        self.add_pad(name, TermDir::Input)
    }

    /// Adds an external output pad (sinks a net).
    pub fn add_output_pad(&mut self, name: impl Into<String>) -> PadId {
        self.add_pad(name, TermDir::Output)
    }

    fn add_pad(&mut self, name: impl Into<String>, dir: TermDir) -> PadId {
        let id = PadId::new(self.pads.len());
        let term = TermId::new(self.terms.len());
        self.terms.push(Terminal {
            owner: TermOwner::Pad(id),
            net: None,
        });
        self.pads.push(Pad {
            name: name.into(),
            dir,
            term,
        });
        id
    }

    /// Terminal id of pin `pin_name` on `cell`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPin`] if the kind has no such pin.
    pub fn cell_term(&self, cell: CellId, pin_name: &str) -> Result<TermId, NetlistError> {
        let c = &self.cells[cell.index()];
        let kind = self.library.kind(c.kind());
        let pin = kind
            .pin(pin_name)
            .ok_or_else(|| NetlistError::UnknownPin(c.kind(), pin_name.to_owned()))?;
        Ok(c.terms()[pin])
    }

    /// Terminal id of a pad.
    pub fn pad_term(&self, pad: PadId) -> TermId {
        self.pads[pad.index()].term()
    }

    /// Kind of an added cell.
    pub fn cell_kind(&self, cell: CellId) -> KindId {
        self.cells[cell.index()].kind()
    }

    /// Terminal id of `cell`'s pin by index (see
    /// [`CircuitBuilder::cell_term`] for lookup by name).
    pub fn cell_term_at(&self, cell: CellId, pin: usize) -> TermId {
        self.cells[cell.index()].terms()[pin]
    }

    /// Adds a 1-pitch net.
    ///
    /// # Errors
    ///
    /// Returns an error if a terminal is already connected, the driver is
    /// not output-direction, a sink is not input-direction, or there are no
    /// sinks.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        driver: TermId,
        sinks: impl IntoIterator<Item = TermId>,
    ) -> Result<NetId, NetlistError> {
        self.add_wide_net(name, driver, sinks, 1)
    }

    /// Adds a net with an explicit width in pitches (§4.2).
    ///
    /// # Errors
    ///
    /// As [`CircuitBuilder::add_net`]; additionally rejects zero width.
    pub fn add_wide_net(
        &mut self,
        name: impl Into<String>,
        driver: TermId,
        sinks: impl IntoIterator<Item = TermId>,
        width_pitches: u32,
    ) -> Result<NetId, NetlistError> {
        let id = NetId::new(self.nets.len());
        if width_pitches == 0 {
            return Err(NetlistError::ZeroWidth(id));
        }
        let sinks: Vec<TermId> = sinks.into_iter().collect();
        if sinks.is_empty() {
            return Err(NetlistError::EmptyNet(id));
        }
        for &t in std::iter::once(&driver).chain(&sinks) {
            if let Some(prev) = self.terms[t.index()].net {
                return Err(NetlistError::TerminalReused(t, prev, id));
            }
        }
        self.terms[driver.index()].net = Some(id);
        for &s in &sinks {
            self.terms[s.index()].net = Some(id);
        }
        self.nets.push(Net {
            name: name.into(),
            driver,
            sinks,
            width_pitches,
        });
        Ok(id)
    }

    /// Declares two nets a differential drive pair (§4.1).
    ///
    /// # Errors
    ///
    /// Returns an error if the nets are identical, mismatched in arity or
    /// width, or already paired.
    pub fn mark_diff_pair(&mut self, a: NetId, b: NetId) -> Result<(), NetlistError> {
        if a == b {
            return Err(NetlistError::DiffPairSelf(a));
        }
        for &(x, y) in &self.diff_pairs {
            for n in [a, b] {
                if n == x || n == y {
                    return Err(NetlistError::DiffPairReused(n));
                }
            }
        }
        let na = &self.nets[a.index()];
        let nb = &self.nets[b.index()];
        if na.sinks().len() != nb.sinks().len() || na.width_pitches() != nb.width_pitches() {
            return Err(NetlistError::DiffPairMismatch(a, b));
        }
        self.diff_pairs.push((a, b));
        Ok(())
    }

    /// Finishes and validates the circuit.
    ///
    /// # Errors
    ///
    /// Propagates any invariant violation from [`Circuit::validate`].
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let circuit = Circuit {
            library: self.library,
            cells: self.cells,
            pads: self.pads,
            terms: self.terms,
            nets: self.nets,
            diff_pairs: self.diff_pairs,
        };
        circuit.validate()?;
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    fn two_inv_chain() -> CircuitBuilder {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n2",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n3", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        cb
    }

    #[test]
    fn chain_builds_and_validates() {
        let circuit = two_inv_chain().finish().unwrap();
        assert_eq!(circuit.cells().len(), 2);
        assert_eq!(circuit.nets().len(), 3);
        assert_eq!(circuit.pads().len(), 2);
        // 2 cells × 2 pins + 2 pads.
        assert_eq!(circuit.terms().len(), 6);
    }

    #[test]
    fn term_dir_for_pads_flips() {
        let circuit = two_inv_chain().finish().unwrap();
        let in_pad = circuit.pads()[0].term();
        let out_pad = circuit.pads()[1].term();
        assert_eq!(circuit.term_dir(in_pad), TermDir::Output);
        assert_eq!(circuit.term_dir(out_pad), TermDir::Input);
    }

    #[test]
    fn net_fanout_sums_fanin_caps() {
        let circuit = two_inv_chain().finish().unwrap();
        // n2 sinks one INV input (5 fF).
        assert_eq!(circuit.net_fanout_ff(NetId::new(1)), 5.0);
        // n3 sinks a pad (0 fF).
        assert_eq!(circuit.net_fanout_ff(NetId::new(2)), 0.0);
    }

    #[test]
    fn rejects_terminal_reuse() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let u1 = cb.add_cell("u1", inv);
        let sink = cb.cell_term(u1, "A").unwrap();
        cb.add_net("n1", cb.pad_term(a), [sink]).unwrap();
        let b = cb.add_input_pad("b");
        let err = cb.add_net("n2", cb.pad_term(b), [sink]).unwrap_err();
        assert!(matches!(err, NetlistError::TerminalReused(..)));
    }

    #[test]
    fn rejects_driver_that_is_an_input() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let bad_driver = cb.cell_term(u1, "A").unwrap();
        let sink = cb.cell_term(u2, "A").unwrap();
        let id = cb.add_net("n", bad_driver, [sink]).unwrap();
        // The direction error is caught at finish-time validation.
        let err = cb.finish().unwrap_err();
        assert_eq!(err, NetlistError::DriverNotOutput(id, bad_driver));
    }

    #[test]
    fn rejects_empty_net() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let drv = cb.cell_term(u1, "Y").unwrap();
        let err = cb.add_net("n", drv, []).unwrap_err();
        assert!(matches!(err, NetlistError::EmptyNet(_)));
    }

    #[test]
    fn detects_combinational_cycle() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "n2",
            cb.cell_term(u2, "Y").unwrap(),
            [cb.cell_term(u1, "A").unwrap()],
        )
        .unwrap();
        let err = cb.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn dff_breaks_cycles() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let dff = lib.kind_by_name("DFF").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let clk = cb.add_input_pad("clk");
        let u1 = cb.add_cell("u1", inv);
        let ff = cb.add_cell("ff", dff);
        cb.add_net("ck", cb.pad_term(clk), [cb.cell_term(ff, "CK").unwrap()])
            .unwrap();
        // inv -> dff.D, dff.Q -> inv: sequential loop, combinationally fine.
        cb.add_net(
            "d",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(ff, "D").unwrap()],
        )
        .unwrap();
        cb.add_net(
            "q",
            cb.cell_term(ff, "Q").unwrap(),
            [cb.cell_term(u1, "A").unwrap()],
        )
        .unwrap();
        assert!(cb.finish().is_ok());
    }

    #[test]
    fn diff_pair_checks() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u = [
            cb.add_cell("u0", inv),
            cb.add_cell("u1", inv),
            cb.add_cell("u2", inv),
            cb.add_cell("u3", inv),
        ];
        let n1 = cb
            .add_net(
                "p",
                cb.cell_term(u[0], "Y").unwrap(),
                [cb.cell_term(u[2], "A").unwrap()],
            )
            .unwrap();
        let n2 = cb
            .add_net(
                "n",
                cb.cell_term(u[1], "Y").unwrap(),
                [cb.cell_term(u[3], "A").unwrap()],
            )
            .unwrap();
        assert_eq!(
            cb.mark_diff_pair(n1, n1),
            Err(NetlistError::DiffPairSelf(n1))
        );
        cb.mark_diff_pair(n1, n2).unwrap();
        assert_eq!(
            cb.mark_diff_pair(n1, n2),
            Err(NetlistError::DiffPairReused(n1))
        );
        let circuit = cb.finish().unwrap();
        assert_eq!(circuit.diff_partner(n1), Some(n2));
        assert_eq!(circuit.diff_partner(n2), Some(n1));
    }

    #[test]
    fn wide_net_records_width() {
        let lib = CellLibrary::ecl();
        let drv = lib.kind_by_name("CLKDRV").unwrap();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let u1 = cb.add_cell("u1", drv);
        let u2 = cb.add_cell("u2", inv);
        let id = cb
            .add_wide_net(
                "clk",
                cb.cell_term(u1, "Y").unwrap(),
                [cb.cell_term(u2, "A").unwrap()],
                2,
            )
            .unwrap();
        let circuit = cb.finish().unwrap();
        assert_eq!(circuit.net(id).width_pitches(), 2);
    }

    #[test]
    fn term_name_is_readable() {
        let circuit = two_inv_chain().finish().unwrap();
        let n2 = circuit.net(NetId::new(1));
        assert_eq!(circuit.term_name(n2.driver()), "u1/Y");
        assert_eq!(circuit.term_name(n2.sinks()[0]), "u2/A");
    }
}
