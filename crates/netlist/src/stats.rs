//! Summary statistics for circuits (Table 1 of the paper).

use crate::circuit::Circuit;

/// Aggregate circuit statistics, as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CircuitStats {
    /// Number of non-feed cell instances.
    pub logic_cells: usize,
    /// Number of feed-cell instances.
    pub feed_cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of external pads.
    pub pads: usize,
    /// Number of differential pairs.
    pub diff_pairs: usize,
    /// Number of multi-pitch (width > 1) nets.
    pub wide_nets: usize,
    /// Largest net fan-out (sink count).
    pub max_fanout: usize,
    /// Mean net fan-out.
    pub mean_fanout: f64,
}

impl CircuitStats {
    /// Computes statistics for a circuit.
    ///
    /// # Example
    ///
    /// ```
    /// use bgr_netlist::{CellLibrary, CircuitBuilder, CircuitStats};
    ///
    /// let lib = CellLibrary::ecl();
    /// let inv = lib.kind_by_name("INV").unwrap();
    /// let mut cb = CircuitBuilder::new(lib);
    /// let a = cb.add_input_pad("a");
    /// let u = cb.add_cell("u", inv);
    /// let y = cb.add_output_pad("y");
    /// cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A")?])?;
    /// cb.add_net("n2", cb.cell_term(u, "Y")?, [cb.pad_term(y)])?;
    /// let stats = CircuitStats::of(&cb.finish()?);
    /// assert_eq!(stats.logic_cells, 1);
    /// assert_eq!(stats.nets, 2);
    /// # Ok::<(), bgr_netlist::NetlistError>(())
    /// ```
    pub fn of(circuit: &Circuit) -> Self {
        let mut stats = Self {
            pads: circuit.pads().len(),
            nets: circuit.nets().len(),
            diff_pairs: circuit.diff_pairs().len(),
            ..Self::default()
        };
        for cell in circuit.cells() {
            if circuit.library().kind(cell.kind()).is_feed() {
                stats.feed_cells += 1;
            } else {
                stats.logic_cells += 1;
            }
        }
        let mut total_fanout = 0usize;
        for net in circuit.nets() {
            let fanout = net.sinks().len();
            total_fanout += fanout;
            stats.max_fanout = stats.max_fanout.max(fanout);
            if net.width_pitches() > 1 {
                stats.wide_nets += 1;
            }
        }
        if stats.nets > 0 {
            stats.mean_fanout = total_fanout as f64 / stats.nets as f64;
        }
        stats
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} logic cells, {} feed cells, {} nets ({} wide, {} diff pairs), \
             {} pads, fan-out max {} mean {:.2}",
            self.logic_cells,
            self.feed_cells,
            self.nets,
            self.wide_nets,
            self.diff_pairs,
            self.pads,
            self.max_fanout,
            self.mean_fanout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::library::CellLibrary;

    #[test]
    fn counts_feed_and_logic_cells() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let u = cb.add_cell("u", inv);
        cb.add_cell("f0", feed);
        cb.add_cell("f1", feed);
        let y = cb.add_output_pad("y");
        cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
            .unwrap();
        cb.add_net("n2", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let stats = CircuitStats::of(&cb.finish().unwrap());
        assert_eq!(stats.logic_cells, 1);
        assert_eq!(stats.feed_cells, 2);
        assert_eq!(stats.max_fanout, 1);
        assert!((stats.mean_fanout - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_everything() {
        let stats = CircuitStats {
            logic_cells: 3,
            feed_cells: 1,
            nets: 4,
            pads: 2,
            diff_pairs: 1,
            wide_nets: 1,
            max_fanout: 5,
            mean_fanout: 2.5,
        };
        let text = stats.to_string();
        assert!(text.contains("3 logic cells"));
        assert!(text.contains("max 5"));
    }
}
