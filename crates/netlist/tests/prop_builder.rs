//! Randomized tests on the circuit builder: arbitrary well-formed build
//! sequences always validate, and validation catches every planted
//! defect.

use bgr_netlist::{CellLibrary, CircuitBuilder, NetlistError, SplitMix64, TermDir};

/// Random layered wiring over random gates always validates.
#[test]
fn random_layered_circuits_validate() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(0xB17D ^ (seed << 7));
        let lib = CellLibrary::ecl();
        let gates: Vec<_> = ["INV", "BUF", "NOR2", "OR2", "AND2", "NOR3", "XOR2", "MUX2"]
            .iter()
            .map(|n| lib.kind_by_name(n).unwrap())
            .collect();
        let mut cb = CircuitBuilder::new(lib);
        let pad = cb.add_input_pad("in");
        // Producer terms with their sink lists (wired at the end).
        let mut producers = vec![cb.pad_term(pad)];
        let mut sinks: Vec<Vec<bgr_netlist::TermId>> = vec![Vec::new()];
        let levels = rng.range_usize(3, 40);
        for i in 0..levels {
            let kind_id = gates[rng.range_usize(0, gates.len())];
            let cell = cb.add_cell(format!("u{i}"), kind_id);
            let kind = cb.library().kind(kind_id).clone();
            for pin in kind.input_pins() {
                // Feed from an earlier producer (acyclic by construction).
                let p = (i * 7 + pin) % producers.len();
                sinks[p].push(cb.cell_term_at(cell, pin));
            }
            let out = kind.output_pins().next().unwrap();
            producers.push(cb.cell_term_at(cell, out));
            sinks.push(Vec::new());
        }
        let mut net_no = 0;
        for (p, s) in producers.iter().zip(&sinks) {
            if s.is_empty() {
                continue;
            }
            cb.add_net(format!("n{net_no}"), *p, s.clone()).unwrap();
            net_no += 1;
        }
        let circuit = cb.finish().expect("layered circuits are valid");
        assert!(circuit.nets().len() <= producers.len());
        // Every net's driver really is output-direction.
        for net in circuit.nets() {
            assert_eq!(circuit.term_dir(net.driver()), TermDir::Output);
        }
    }
}

/// Planted combinational cycles of arbitrary length are caught.
#[test]
fn planted_cycles_are_rejected() {
    for len in 2usize..8 {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let cells: Vec<_> = (0..len)
            .map(|i| cb.add_cell(format!("u{i}"), inv))
            .collect();
        for i in 0..len {
            let next = (i + 1) % len;
            cb.add_net(
                format!("n{i}"),
                cb.cell_term(cells[i], "Y").unwrap(),
                [cb.cell_term(cells[next], "A").unwrap()],
            )
            .unwrap();
        }
        let err = cb.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }
}

/// A DFF anywhere in the loop makes it legal.
#[test]
fn ff_breaks_planted_cycles() {
    for len in 2usize..8 {
        for ff_pos in 0..len {
            let lib = CellLibrary::ecl();
            let inv = lib.kind_by_name("INV").unwrap();
            let dff = lib.kind_by_name("DFF").unwrap();
            let mut cb = CircuitBuilder::new(lib);
            let clk = cb.add_input_pad("clk");
            let cells: Vec<_> = (0..len)
                .map(|i| {
                    if i == ff_pos {
                        cb.add_cell(format!("u{i}"), dff)
                    } else {
                        cb.add_cell(format!("u{i}"), inv)
                    }
                })
                .collect();
            cb.add_net(
                "ck",
                cb.pad_term(clk),
                [cb.cell_term(cells[ff_pos], "CK").unwrap()],
            )
            .unwrap();
            for i in 0..len {
                let next = (i + 1) % len;
                let drv = if i == ff_pos { "Q" } else { "Y" };
                let snk = if next == ff_pos { "D" } else { "A" };
                cb.add_net(
                    format!("n{i}"),
                    cb.cell_term(cells[i], drv).unwrap(),
                    [cb.cell_term(cells[next], snk).unwrap()],
                )
                .unwrap();
            }
            assert!(cb.finish().is_ok());
        }
    }
}
