//! Criterion micro-benchmarks for the router's hot kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bgr_core::density::DensityMap;
use bgr_core::tentative::tentative_tree;
use bgr_core::RoutingGraph;
use bgr_gen::{generate, place_design, GenParams, PlacementStyle};
use bgr_layout::ChannelId;
use bgr_netlist::NetId;

fn setup() -> (bgr_netlist::Circuit, bgr_layout::Placement, Vec<Vec<(usize, i32)>>) {
    let params = GenParams {
        logic_cells: 300,
        depth: 10,
        rows: 6,
        ..GenParams::small(99)
    };
    let design = generate(&params);
    let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
    // Feed assignment via the router's public assignment path.
    let pairs = bgr_core::diffpair::PairMap::build(&design.circuit);
    let mut slots = bgr_layout::SlotStore::from_placement(&design.circuit, &placement);
    let order: Vec<NetId> = design.circuit.net_ids().collect();
    let out = bgr_core::assign::assign_feedthroughs(
        &design.circuit,
        &placement,
        &mut slots,
        &order,
        &pairs,
        bgr_layout::FlagPolicy::Ignore,
    );
    (design.circuit, placement, out.feeds)
}

fn bench_graph_build(c: &mut Criterion) {
    let (circuit, placement, feeds) = setup();
    c.bench_function("routing_graph_build_all_nets", |b| {
        b.iter(|| {
            let total: usize = circuit
                .net_ids()
                .map(|n| {
                    RoutingGraph::build(&circuit, &placement, n, &feeds[n.index()], 60.0)
                        .edges()
                        .len()
                })
                .sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_bridges_and_tentative(c: &mut Criterion) {
    let (circuit, placement, feeds) = setup();
    let graphs: Vec<RoutingGraph> = circuit
        .net_ids()
        .map(|n| RoutingGraph::build(&circuit, &placement, n, &feeds[n.index()], 60.0))
        .collect();
    c.bench_function("bridge_recompute_all_nets", |b| {
        b.iter_batched(
            || graphs.clone(),
            |mut gs| {
                for g in &mut gs {
                    g.recompute_bridges();
                }
                std::hint::black_box(gs.len())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("tentative_tree_all_nets", |b| {
        b.iter(|| {
            let total: f64 = graphs
                .iter()
                .filter(|g| g.terminals_connected())
                .map(|g| tentative_tree(g, None).map(|t| t.length_um).unwrap_or(0.0))
                .sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_density_ops(c: &mut Criterion) {
    c.bench_function("density_add_remove_1k_spans", |b| {
        b.iter(|| {
            let mut d = DensityMap::new(8, 400);
            for i in 0..1000i32 {
                let ch = ChannelId::new((i % 8) as usize);
                let x1 = (i * 7) % 350;
                d.add_span(ch, x1, x1 + 17, 1, i % 3 == 0);
            }
            let mut acc = 0;
            for cidx in 0..8 {
                acc += d.c_max(ChannelId::new(cidx)) + d.nc_min(ChannelId::new(cidx));
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_graph_build, bench_bridges_and_tentative, bench_density_ops
}
criterion_main!(kernels);
