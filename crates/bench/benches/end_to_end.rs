//! Criterion end-to-end benchmarks: full global routing throughput on a
//! small and a midsize generated design, constrained and unconstrained.

use criterion::{criterion_group, criterion_main, Criterion};

use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::{generate, place_design, GenParams, PlacementStyle};

fn bench_route(c: &mut Criterion) {
    for (label, cells) in [("small_100", 100usize), ("mid_400", 400)] {
        let params = GenParams {
            logic_cells: cells,
            depth: 10,
            rows: 6,
            ..GenParams::small(5)
        };
        let design = generate(&params);
        let placement = place_design(&design, &params, PlacementStyle::EvenFeed);
        c.bench_function(&format!("route_constrained_{label}"), |b| {
            b.iter(|| {
                let routed = GlobalRouter::new(RouterConfig::default())
                    .route(
                        design.circuit.clone(),
                        placement.clone(),
                        design.constraints.clone(),
                    )
                    .expect("routes");
                std::hint::black_box(routed.result.total_length_um)
            })
        });
        c.bench_function(&format!("route_unconstrained_{label}"), |b| {
            b.iter(|| {
                let routed = GlobalRouter::new(RouterConfig::unconstrained())
                    .route(design.circuit.clone(), placement.clone(), vec![])
                    .expect("routes");
                std::hint::black_box(routed.result.total_length_um)
            })
        });
    }
}

criterion_group! {
    name = end_to_end;
    config = Criterion::default().sample_size(10);
    targets = bench_route
}
criterion_main!(end_to_end);
