//! Experiment harness: reproduces the paper's Tables 1–3 and the
//! ablations listed in `DESIGN.md`.
//!
//! Each table has a binary (`cargo run -p bgr-bench --release --bin
//! table2`) that prints the same rows the paper reports; the library
//! holds the shared measurement pipeline so integration tests can assert
//! the *shape* of the results (who wins, by roughly what factor).

use bgr_channel::{route_channels, DetailedRoute};
use bgr_core::{GlobalRouter, Routed, RouterConfig};
use bgr_gen::{arrival_with_lengths, hpwl_net_lengths_in_layout_um, hpwl_net_lengths_um, DataSet};
use bgr_timing::{DelayModel, WireParams};

/// One measured routing run (one half of a Table 2 row).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Data set name (`C1P1` …).
    pub name: String,
    /// Largest constrained-path delay after channel routing, ps.
    pub delay_ps: f64,
    /// Chip core area, mm².
    pub area_mm2: f64,
    /// Total routed wire length, mm.
    pub length_mm: f64,
    /// Router wall-clock, seconds.
    pub cpu_s: f64,
    /// Violated constraints.
    pub violations: usize,
    /// Constraint count.
    pub constraints: usize,
    /// Per-constraint arrivals, ps.
    pub arrivals_ps: Vec<f64>,
    /// Per-constraint limits, ps.
    pub limits_ps: Vec<f64>,
}

/// Routes a data set with the given config and measures it after channel
/// routing (the paper's measurement protocol, §5).
pub fn measure(ds: &DataSet, config: RouterConfig) -> (Measurement, Routed, DetailedRoute) {
    let t = std::time::Instant::now();
    let routed = GlobalRouter::new(config)
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("benchmark circuits route");
    let cpu_s = t.elapsed().as_secs_f64();
    let detail = route_channels(
        &routed.circuit,
        &routed.placement,
        &routed.result,
        &ds.design.constraints,
        DelayModel::Capacitance,
        WireParams::default(),
    )
    .expect("benchmark circuits channel-route");
    let m = Measurement {
        name: ds.name.clone(),
        delay_ps: detail.timing.max_arrival_ps(),
        area_mm2: detail.area_mm2,
        length_mm: detail.total_length_mm(),
        cpu_s,
        violations: detail.timing.violations(),
        constraints: detail.timing.constraints.len(),
        arrivals_ps: detail
            .timing
            .constraints
            .iter()
            .map(|c| c.arrival_ps)
            .collect(),
        limits_ps: detail
            .timing
            .constraints
            .iter()
            .map(|c| c.limit_ps)
            .collect(),
    };
    (m, routed, detail)
}

/// Per-constraint half-perimeter lower-bound delays (Table 3's
/// reference), ps. Uses placement-only geometry (no channel heights).
pub fn lower_bound_delays(ds: &DataSet) -> Vec<f64> {
    let lb = hpwl_net_lengths_um(&ds.design.circuit, &ds.placement);
    ds.design
        .constraints
        .iter()
        .map(|c| {
            arrival_with_lengths(&ds.design.circuit, c.source, c.sink, &lb)
                .expect("constraints are reachable")
        })
        .collect()
}

/// Per-constraint lower-bound delays measured *in the routed layout*
/// (half-perimeter rectangles whose y spans include the routed channel
/// heights) — the geometry the paper's Table 3 rectangles live in. The
/// placement must be the routed one (possibly widened) and
/// `channel_tracks` its per-channel track counts.
pub fn lower_bound_delays_in_layout(
    ds: &DataSet,
    routed: &Routed,
    channel_tracks: &[usize],
) -> Vec<f64> {
    let lb = hpwl_net_lengths_in_layout_um(&routed.circuit, &routed.placement, channel_tracks);
    ds.design
        .constraints
        .iter()
        .map(|c| {
            arrival_with_lengths(&routed.circuit, c.source, c.sink, &lb)
                .expect("constraints are reachable")
        })
        .collect()
}

/// Table 3 statistic: mean percentage difference of the measured
/// arrivals from the lower bound, `mean((arrival − lb) / lb) × 100`.
pub fn mean_diff_from_lb_percent(arrivals: &[f64], lb: &[f64]) -> f64 {
    assert_eq!(arrivals.len(), lb.len());
    if arrivals.is_empty() {
        return 0.0;
    }
    let sum: f64 = arrivals
        .iter()
        .zip(lb)
        .map(|(a, l)| (a - l) / l * 100.0)
        .sum();
    sum / arrivals.len() as f64
}

/// The headline statistic: average critical-path delay reduction of the
/// constrained run relative to the unconstrained one, expressed as a
/// percentage of the lower bound (the paper reports 17.6%).
pub fn mean_reduction_of_lb_percent(con: &[f64], unc: &[f64], lb: &[f64]) -> f64 {
    assert!(con.len() == unc.len() && unc.len() == lb.len());
    if con.is_empty() {
        return 0.0;
    }
    let sum: f64 = con
        .iter()
        .zip(unc)
        .zip(lb)
        .map(|((c, u), l)| (u - c) / l * 100.0)
        .sum();
    sum / con.len() as f64
}

/// Formats one Table 2 row.
pub fn table2_row(m: &Measurement) -> String {
    format!(
        "{:<6} {:>9.0} {:>9.2} {:>9.1} {:>8.2} {:>6}/{}",
        m.name, m.delay_ps, m.area_mm2, m.length_mm, m.cpu_s, m.violations, m.constraints
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_from_lb_percent_math() {
        let lb = vec![100.0, 200.0];
        let arr = vec![110.0, 250.0];
        // (10% + 25%) / 2 = 17.5%.
        assert!((mean_diff_from_lb_percent(&arr, &lb) - 17.5).abs() < 1e-9);
    }

    #[test]
    fn reduction_of_lb_percent_math() {
        let lb = vec![100.0];
        let con = vec![110.0];
        let unc = vec![130.0];
        assert!((mean_reduction_of_lb_percent(&con, &unc, &lb) - 20.0).abs() < 1e-9);
    }
}
