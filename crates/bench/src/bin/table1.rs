//! Table 1: test circuit data — cells, nets, constraints per data set.

use bgr_gen::circuits::table_data_sets;
use bgr_netlist::CircuitStats;

fn main() {
    println!("Table 1: Test bipolar circuits (reconstruction)");
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>8} {:>7} {:>6} {:>7}",
        "Data", "cells", "feeds", "nets", "consts.", "pads", "diff", "wide"
    );
    for ds in table_data_sets() {
        let s = CircuitStats::of(&ds.design.circuit);
        println!(
            "{:<6} {:>7} {:>7} {:>7} {:>8} {:>7} {:>6} {:>7}",
            ds.name,
            s.logic_cells,
            s.feed_cells,
            s.nets,
            ds.design.constraints.len(),
            s.pads,
            s.diff_pairs,
            s.wide_nets
        );
    }
}
