//! Hierarchical self-profile of the paper-scale reconstructions: where
//! routing time goes, per phase, per deletion-loop scope, and per
//! [`RekeyCause`](bgr_core::probe::RekeyCause) (DESIGN.md §14).
//!
//! Routes `C2P1` and `C3P1` under the [`bgr_core::ProfilingProbe`] and
//! prints each call-tree (total vs self time, call counts) plus the
//! rekey-cause breakdown of the deletion loop — the data behind the
//! scoreboard-vs-rescan tradeoff. Also writes flamegraph-collapsed
//! stacks (`<name>.folded` under the out dir) for external flamegraph
//! tooling.
//!
//! The profiled run's deterministic observables are identical to an
//! unprofiled run's (asserted here against `route`), so the numbers
//! describe the production code path, not an instrumented variant.
//!
//! Usage: `profile_phases [out_dir]` (default `target/profile`).

use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::{c2_cached, c3_cached, DataSet};

fn profile(ds: &DataSet, out_dir: &str) {
    println!("{}: {} nets", ds.name, ds.design.circuit.nets().len());
    let router = GlobalRouter::new(RouterConfig::default());
    let (routed, _trace, profile) = router
        .route_profiled(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    let plain = router
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    assert_eq!(
        routed.result.stats.selection_log, plain.result.stats.selection_log,
        "profiling changed the selection stream on {}",
        ds.name
    );

    print!("{}", profile.to_ascii());
    let s = &routed.result.stats;
    println!(
        "  stats: deletions {} | reroutes {} | initial {:?} | improvement {:?}",
        s.deletions, s.reroutes, s.initial_routing, s.improvement
    );

    // Per-RekeyCause attribution: the rekey:* children of the profile
    // tree, tied back to the scoreboard's own cause counters.
    let rekey_entries: Vec<_> = profile
        .entries()
        .into_iter()
        .filter(|e| e.path.last().is_some_and(|l| l.starts_with("rekey:")))
        .collect();
    if rekey_entries.is_empty() {
        println!("  (no per-cause rekey scopes — full-rescan strategy?)");
    } else {
        println!("  rekey time by cause:");
        for e in &rekey_entries {
            println!(
                "    {:<24} {:>10?} over {} rekeys",
                e.path.last().unwrap(),
                e.total,
                e.calls
            );
        }
    }
    for (cause, n) in s.rekey_causes.iter() {
        println!("    scoreboard counter: {:<16} {n}", cause.label());
    }

    std::fs::create_dir_all(out_dir).expect("create out dir");
    let folded_path = format!("{out_dir}/{}.folded", ds.name);
    std::fs::write(&folded_path, profile.to_folded()).expect("write folded stacks");
    println!("  wrote {folded_path}");
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/profile".to_owned());
    profile(c2_cached(), &out_dir);
    profile(c3_cached(), &out_dir);
}
