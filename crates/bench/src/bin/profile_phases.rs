//! Diagnostic: where routing time goes per phase.
use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::PlacementStyle;

fn main() {
    let ds = bgr_gen::c2(PlacementStyle::EvenFeed);
    let routed = GlobalRouter::new(RouterConfig::default())
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .unwrap();
    let s = &routed.result.stats;
    println!(
        "{}: total {:?} | initial {:?} | improvement {:?} | deletions {} | reroutes {}",
        ds.name, s.total, s.initial_routing, s.improvement, s.deletions, s.reroutes
    );
}
