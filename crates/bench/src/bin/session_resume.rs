//! Measures the sessionized-core overhead (DESIGN.md §13) and emits the
//! CI artifacts for the `serve` job: a sample mid-run checkpoint and a
//! per-session JSONL stream.
//!
//! Three costs are profiled on the golden instance, per suspension:
//! `snapshot()` (capture), `write_checkpoint` + `parse_checkpoint`
//! (codec round-trip), and `resume()` (graph/STA/engine rebuild). The
//! run then re-executes the same instance uninterrupted and asserts the
//! deterministic event streams are byte-identical — the bench refuses
//! to publish artifacts for a drifting build.
//!
//! Usage: `session_resume [out_dir]` — writes `sample.bgrc` and
//! `session.jsonl` under `out_dir` (default `target/serve`).

use std::time::{Duration, Instant};

use bgr_core::probe::CollectingProbe;
use bgr_core::session::{RouteSession, StepOutcome};
use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::golden_instance;
use bgr_io::{
    deterministic_event_lines, parse_checkpoint, write_checkpoint, write_trace_jsonl,
    write_trace_jsonl_offset,
};
use bgr_serve::{JobQueue, SessionState};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/serve".to_owned());
    let ds = golden_instance();
    let config = RouterConfig::default();
    println!(
        "{}: {} nets, quota 4 selections/slice",
        ds.name,
        ds.design.circuit.nets().len()
    );

    // Sliced run, hand-driven so each stage can be timed.
    let t0 = Instant::now();
    let mut session = RouteSession::start(
        config.clone(),
        ds.design.circuit.clone(),
        ds.placement.clone(),
        ds.design.constraints.clone(),
        CollectingProbe::new(),
    )
    .expect("session starts");
    let t_start = t0.elapsed();

    let (mut t_snap, mut t_codec, mut t_resume) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    let mut events = String::new();
    let mut start_events = 0u64;
    let mut sample_checkpoint: Option<String> = None;
    let mut hops = 0u32;
    let mut bytes = 0usize;
    loop {
        if session.step(Some(4)).expect("step succeeds") == StepOutcome::Ready {
            break;
        }
        let t = Instant::now();
        let snapshot = session.snapshot();
        t_snap += t.elapsed();

        let t = Instant::now();
        let text = write_checkpoint(&snapshot);
        let reparsed = parse_checkpoint(&text).expect("checkpoint parses");
        t_codec += t.elapsed();
        bytes += text.len();
        sample_checkpoint.get_or_insert(text);

        let trace = session.into_probe().finish();
        events.push_str(&deterministic_event_lines(&write_trace_jsonl_offset(
            &trace,
            start_events,
        )));
        start_events = reparsed.events_emitted;

        let t = Instant::now();
        session = RouteSession::resume(reparsed, CollectingProbe::new()).expect("resume succeeds");
        t_resume += t.elapsed();
        hops += 1;
    }
    let (routed, probe) = session.finish().expect("finish succeeds");
    events.push_str(&deterministic_event_lines(&write_trace_jsonl_offset(
        &probe.finish(),
        start_events,
    )));
    println!(
        "sliced route: {hops} suspensions, {} selections, start {:.2} ms",
        routed.result.stats.selection_log.len(),
        ms(t_start)
    );
    println!(
        "per suspension: snapshot {:.3} ms, codec round-trip {:.3} ms ({} B avg), resume {:.3} ms",
        ms(t_snap) / hops as f64,
        ms(t_codec) / hops as f64,
        bytes / hops as usize,
        ms(t_resume) / hops as f64
    );

    // Equivalence gate: artifacts are only published for a build whose
    // interrupted stream is byte-identical to the uninterrupted one.
    let (full, trace) = GlobalRouter::new(config.clone())
        .route_traced(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("full route succeeds");
    let full_events = deterministic_event_lines(&write_trace_jsonl(&trace));
    if events != full_events || routed.result.trees != full.result.trees {
        eprintln!("resume equivalence FAILED — not publishing artifacts");
        std::process::exit(1);
    }
    println!(
        "equivalence: {} event lines byte-identical to the uninterrupted run",
        full_events.lines().count()
    );

    // The session JSONL artifact comes from the real job layer.
    let mut queue = JobQueue::new();
    let id = queue.submit(
        ds.name.clone(),
        ds.design.circuit.clone(),
        ds.placement.clone(),
        ds.design.constraints.clone(),
        config,
        Some(4),
    );
    let rounds = queue.run(2);
    let job = queue.job(id);
    assert_eq!(job.state(), SessionState::Completed, "{:?}", job.error());
    assert!(job.audit().expect("audited").is_clean());
    println!(
        "job queue: {rounds} rounds, {} slices, audit clean",
        job.slices()
    );

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let ckpt_path = format!("{out_dir}/sample.bgrc");
    let jsonl_path = format!("{out_dir}/session.jsonl");
    std::fs::write(
        &ckpt_path,
        sample_checkpoint.expect("at least one suspension"),
    )
    .expect("write sample.bgrc");
    std::fs::write(&jsonl_path, job.stream()).expect("write session.jsonl");
    println!(
        "wrote {ckpt_path} and {jsonl_path} ({} records)",
        job.stream().lines().count()
    );
}
