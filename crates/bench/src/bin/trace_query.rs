//! `trace_query`: analytics over schema-v1 JSONL route traces and the
//! bench-regression gate (DESIGN.md §14).
//!
//! Subcommands:
//!
//! * `stats <trace.jsonl> [--json]` — per-event-kind counts, selection
//!   and deletion totals, deciding-tier and counter breakdowns, and
//!   per-phase wall-clock, via [`bgr_io::TraceStats`]. `--json` prints
//!   one machine-readable object for CI.
//! * `diff <a.jsonl> <b.jsonl> [--json]` — first divergence of the
//!   deterministic prefixes via [`bgr_io::trace_divergence`]; exits 1
//!   when the traces diverge.
//! * `gate --bench <BENCH_deletion.json> --baseline <baseline.json>
//!   [--threshold PCT] [--json]` — compares the `RATE` scoreboard
//!   deletions/s against a committed baseline and exits 1 on a
//!   regression beyond `PCT` percent (default 15). `BGR_BLESS=1`
//!   (re)writes the baseline from the bench output instead.
//!
//! Everything is read-side: this tool never routes, so it can analyze
//! traces from any producer (bench bins, `bgr-serve` job streams once
//! progress records are stripped, CI artifacts).

use std::process::ExitCode;

use bgr_io::{trace_divergence, Json, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_query stats <trace.jsonl> [--json]\n\
         \x20      trace_query diff <a.jsonl> <b.jsonl> [--json]\n\
         \x20      trace_query gate --bench <BENCH_deletion.json> --baseline <baseline.json>\n\
         \x20                       [--threshold PCT] [--json]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    match args.first().map(String::as_str) {
        Some("stats") => {
            pos.next(); // the subcommand itself
            let Some(path) = pos.next() else {
                return usage();
            };
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let stats = match TraceStats::from_jsonl(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if json {
                println!("{}", stats.to_json());
            } else {
                print!("{}", stats.to_ascii());
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            pos.next();
            let (Some(a), Some(b)) = (pos.next(), pos.next()) else {
                return usage();
            };
            let (ta, tb) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            match trace_divergence(&ta, &tb) {
                None => {
                    if json {
                        println!("{{\"schema\":1,\"kind\":\"trace_diff\",\"diverged\":false}}");
                    } else {
                        println!("traces match on their deterministic prefix");
                    }
                    ExitCode::SUCCESS
                }
                Some(detail) => {
                    if json {
                        println!(
                            "{{\"schema\":1,\"kind\":\"trace_diff\",\"diverged\":true,\"detail\":\"{}\"}}",
                            bgr_io::escape_json(&detail)
                        );
                    } else {
                        println!("traces diverge:\n{detail}");
                    }
                    ExitCode::FAILURE
                }
            }
        }
        Some("gate") => gate(&args, json),
        _ => usage(),
    }
}

/// The `RATE` scoreboard throughput from a `BENCH_deletion.json`.
struct BenchPoint {
    threads: u64,
    deletions: u64,
    wall_ms: f64,
}

impl BenchPoint {
    fn deletions_per_s(&self) -> f64 {
        self.deletions as f64 / (self.wall_ms / 1e3)
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_bench(text: &str) -> Result<BenchPoint, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("no rows array")?;
    let row = rows
        .iter()
        .find(|r| {
            r.get("instance").and_then(Json::as_str) == Some("RATE")
                && r.get("strategy").and_then(Json::as_str) == Some("scoreboard")
        })
        .ok_or("no RATE scoreboard row")?;
    Ok(BenchPoint {
        threads: row.get("threads").and_then(Json::as_u64).unwrap_or(1),
        deletions: row
            .get("deletions")
            .and_then(Json::as_u64)
            .ok_or("row lacks deletions")?,
        wall_ms: row
            .get("wall_ms")
            .and_then(Json::as_f64)
            .filter(|w| *w > 0.0)
            .ok_or("row lacks a positive wall_ms")?,
    })
}

fn gate(args: &[String], json: bool) -> ExitCode {
    let Some(bench_path) = flag_value(args, "--bench") else {
        return usage();
    };
    let Some(baseline_path) = flag_value(args, "--baseline") else {
        return usage();
    };
    let threshold: f64 = match flag_value(args, "--threshold") {
        None => 15.0,
        Some(v) => match v.parse() {
            Ok(t) => t,
            Err(_) => return usage(),
        },
    };
    let bench_text = match read(bench_path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let point = match parse_bench(&bench_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rate = point.deletions_per_s();

    if std::env::var("BGR_BLESS").is_ok_and(|v| v == "1") {
        let out = format!(
            "{{\"schema\":1,\"kind\":\"bench_baseline\",\"instance\":\"RATE\",\
             \"strategy\":\"scoreboard\",\"threads\":{},\"deletions\":{},\
             \"deletions_per_s\":{:.1}}}\n",
            point.threads, point.deletions, rate
        );
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(baseline_path, &out) {
            eprintln!("cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("blessed {baseline_path} at {rate:.0} deletions/s");
        return ExitCode::SUCCESS;
    }

    let baseline_text = match read(baseline_path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let base_rate = match Json::parse(&baseline_text)
        .map_err(|e| e.to_string())
        .and_then(|doc| {
            doc.get("deletions_per_s")
                .and_then(Json::as_f64)
                .filter(|r| *r > 0.0)
                .ok_or_else(|| "baseline lacks a positive deletions_per_s".to_string())
        }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floor = base_rate * (1.0 - threshold / 100.0);
    let pass = rate >= floor;
    let delta_pct = (rate / base_rate - 1.0) * 100.0;
    if json {
        println!(
            "{{\"schema\":1,\"kind\":\"bench_gate\",\"pass\":{pass},\
             \"deletions_per_s\":{rate:.1},\"baseline_per_s\":{base_rate:.1},\
             \"delta_pct\":{delta_pct:.1},\"threshold_pct\":{threshold:.1}}}"
        );
    } else {
        println!(
            "RATE scoreboard: {rate:.0} deletions/s vs baseline {base_rate:.0} \
             ({delta_pct:+.1}%, floor {floor:.0} at -{threshold:.0}%) — {}",
            if pass { "pass" } else { "REGRESSION" }
        );
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "deletion throughput regressed more than {threshold:.0}% — \
             investigate, or re-bless tests/golden/bench_baseline.json with BGR_BLESS=1 \
             if the change is intentional"
        );
        ExitCode::FAILURE
    }
}
