//! `trace_query`: analytics over schema-v1 JSONL route traces and the
//! bench-regression gate (DESIGN.md §14).
//!
//! Subcommands:
//!
//! * `stats <trace.jsonl> [--json]` — per-event-kind counts, selection
//!   and deletion totals, deciding-tier and counter breakdowns, and
//!   per-phase wall-clock, via [`bgr_io::TraceStats`]. `--json` prints
//!   one machine-readable object for CI.
//! * `diff <a.jsonl> <b.jsonl> [--json]` — first divergence of the
//!   deterministic prefixes via [`bgr_io::trace_divergence`]; exits 1
//!   when the traces diverge.
//! * `gate --bench <BENCH_deletion.json> --baseline <baseline.json>
//!   [--threshold PCT] [--json]` — compares every scoreboard
//!   deletions/s row (`RATE` plus the paper-scale `C2P1`/`C3P1` rows,
//!   keyed by instance/strategy/threads) against a committed baseline
//!   and exits 1 when any row regresses beyond `PCT` percent (default
//!   15) or a blessed row is missing. `BGR_BLESS=1` (re)writes the
//!   baseline from the bench output instead — run it on the same
//!   `deletion_rate` invocation the gate consumes.
//!
//! Everything is read-side: this tool never routes, so it can analyze
//! traces from any producer (bench bins, `bgr-serve` job streams once
//! progress records are stripped, CI artifacts).

use std::process::ExitCode;

use bgr_io::{trace_divergence, Json, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_query stats <trace.jsonl> [--json]\n\
         \x20      trace_query diff <a.jsonl> <b.jsonl> [--json]\n\
         \x20      trace_query gate --bench <BENCH_deletion.json> --baseline <baseline.json>\n\
         \x20                       [--threshold PCT] [--json]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    match args.first().map(String::as_str) {
        Some("stats") => {
            pos.next(); // the subcommand itself
            let Some(path) = pos.next() else {
                return usage();
            };
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let stats = match TraceStats::from_jsonl(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if json {
                println!("{}", stats.to_json());
            } else {
                print!("{}", stats.to_ascii());
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            pos.next();
            let (Some(a), Some(b)) = (pos.next(), pos.next()) else {
                return usage();
            };
            let (ta, tb) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            match trace_divergence(&ta, &tb) {
                None => {
                    if json {
                        println!("{{\"schema\":1,\"kind\":\"trace_diff\",\"diverged\":false}}");
                    } else {
                        println!("traces match on their deterministic prefix");
                    }
                    ExitCode::SUCCESS
                }
                Some(detail) => {
                    if json {
                        println!(
                            "{{\"schema\":1,\"kind\":\"trace_diff\",\"diverged\":true,\"detail\":\"{}\"}}",
                            bgr_io::escape_json(&detail)
                        );
                    } else {
                        println!("traces diverge:\n{detail}");
                    }
                    ExitCode::FAILURE
                }
            }
        }
        Some("gate") => gate(&args, json),
        _ => usage(),
    }
}

/// One gated throughput point, keyed by `(instance, strategy,
/// threads)` — RATE plus the paper-scale C2P1/C3P1 rows.
struct BenchPoint {
    instance: String,
    strategy: String,
    threads: u64,
    deletions: u64,
    wall_ms: f64,
}

impl BenchPoint {
    fn deletions_per_s(&self) -> f64 {
        self.deletions as f64 / (self.wall_ms / 1e3)
    }

    fn key(&self) -> String {
        format!("{}/{}/t{}", self.instance, self.strategy, self.threads)
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every gateable (scoreboard) row of a `BENCH_deletion.json`.
fn parse_bench(text: &str) -> Result<Vec<BenchPoint>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("no rows array")?;
    let mut points = Vec::new();
    for row in rows {
        // Only the production strategy is gated; rescan-oracle rows
        // exist for speedup reporting, not as a performance contract.
        if row.get("strategy").and_then(Json::as_str) != Some("scoreboard") {
            continue;
        }
        points.push(BenchPoint {
            instance: row
                .get("instance")
                .and_then(Json::as_str)
                .ok_or("row lacks an instance")?
                .to_string(),
            strategy: "scoreboard".to_string(),
            threads: row.get("threads").and_then(Json::as_u64).unwrap_or(1),
            deletions: row
                .get("deletions")
                .and_then(Json::as_u64)
                .ok_or("row lacks deletions")?,
            wall_ms: row
                .get("wall_ms")
                .and_then(Json::as_f64)
                .filter(|w| *w > 0.0)
                .ok_or("row lacks a positive wall_ms")?,
        });
    }
    if points.is_empty() {
        return Err("no scoreboard rows to gate".to_string());
    }
    Ok(points)
}

/// One baseline row: the key plus the blessed throughput.
struct BaselinePoint {
    instance: String,
    strategy: String,
    threads: u64,
    deletions_per_s: f64,
}

impl BaselinePoint {
    fn key(&self) -> String {
        format!("{}/{}/t{}", self.instance, self.strategy, self.threads)
    }
}

/// Parses a baseline file: the multi-row `{"rows":[...]}` form, or the
/// legacy single-row object (treated as one row) so pre-existing
/// baselines keep gating until re-blessed.
fn parse_baseline(text: &str) -> Result<Vec<BaselinePoint>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let row_objs: Vec<&Json> = match doc.get("rows").and_then(Json::as_arr) {
        Some(rows) => rows.iter().collect(),
        None => vec![&doc],
    };
    let mut points = Vec::new();
    for row in row_objs {
        points.push(BaselinePoint {
            instance: row
                .get("instance")
                .and_then(Json::as_str)
                .ok_or("baseline row lacks an instance")?
                .to_string(),
            strategy: row
                .get("strategy")
                .and_then(Json::as_str)
                .ok_or("baseline row lacks a strategy")?
                .to_string(),
            threads: row.get("threads").and_then(Json::as_u64).unwrap_or(1),
            deletions_per_s: row
                .get("deletions_per_s")
                .and_then(Json::as_f64)
                .filter(|r| *r > 0.0)
                .ok_or("baseline row lacks a positive deletions_per_s")?,
        });
    }
    if points.is_empty() {
        return Err("baseline has no rows".to_string());
    }
    Ok(points)
}

fn gate(args: &[String], json: bool) -> ExitCode {
    let Some(bench_path) = flag_value(args, "--bench") else {
        return usage();
    };
    let Some(baseline_path) = flag_value(args, "--baseline") else {
        return usage();
    };
    let threshold: f64 = match flag_value(args, "--threshold") {
        None => 15.0,
        Some(v) => match v.parse() {
            Ok(t) => t,
            Err(_) => return usage(),
        },
    };
    let bench_text = match read(bench_path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let points = match parse_bench(&bench_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if std::env::var("BGR_BLESS").is_ok_and(|v| v == "1") {
        // Bless exactly the scoreboard rows of the given bench file —
        // run the same deletion_rate invocation CI's gate step uses, so
        // the baseline demands only rows the gate will have.
        let mut out = String::from("{\"schema\":1,\"kind\":\"bench_baseline\",\"rows\":[\n");
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                " {{\"instance\":\"{}\",\"strategy\":\"{}\",\"threads\":{},\
                 \"deletions\":{},\"deletions_per_s\":{:.1}}}{}\n",
                p.instance,
                p.strategy,
                p.threads,
                p.deletions,
                p.deletions_per_s(),
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("]}\n");
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(baseline_path, &out) {
            eprintln!("cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        for p in &points {
            println!(
                "blessed {}: {:.0} deletions/s",
                p.key(),
                p.deletions_per_s()
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline_text = match read(baseline_path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let baselines = match parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Every blessed row must be present and fast enough; extra bench
    // rows (e.g. a thread sweep from a full run) pass through ungated.
    let mut pass = true;
    let mut row_reports = Vec::new();
    for base in &baselines {
        let key = base.key();
        let Some(point) = points.iter().find(|p| p.key() == key) else {
            pass = false;
            eprintln!("{key}: blessed in the baseline but missing from {bench_path}");
            row_reports.push(format!(
                "{{\"key\":\"{key}\",\"pass\":false,\"missing\":true}}"
            ));
            continue;
        };
        let rate = point.deletions_per_s();
        let floor = base.deletions_per_s * (1.0 - threshold / 100.0);
        let row_pass = rate >= floor;
        pass &= row_pass;
        let delta_pct = (rate / base.deletions_per_s - 1.0) * 100.0;
        row_reports.push(format!(
            "{{\"key\":\"{key}\",\"pass\":{row_pass},\"deletions_per_s\":{rate:.1},\
             \"baseline_per_s\":{:.1},\"delta_pct\":{delta_pct:.1}}}",
            base.deletions_per_s
        ));
        if !json {
            println!(
                "{key}: {rate:.0} deletions/s vs baseline {:.0} \
                 ({delta_pct:+.1}%, floor {floor:.0} at -{threshold:.0}%) — {}",
                base.deletions_per_s,
                if row_pass { "pass" } else { "REGRESSION" }
            );
        }
    }
    if json {
        println!(
            "{{\"schema\":1,\"kind\":\"bench_gate\",\"pass\":{pass},\
             \"threshold_pct\":{threshold:.1},\"rows\":[{}]}}",
            row_reports.join(",")
        );
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "deletion throughput regressed more than {threshold:.0}% — \
             investigate, or re-bless tests/golden/bench_baseline.json with BGR_BLESS=1 \
             if the change is intentional"
        );
        ExitCode::FAILURE
    }
}
