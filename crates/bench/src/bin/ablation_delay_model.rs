//! Ablation A4: capacitance vs Elmore RC delay model on C1P1 (§2.1
//! claims the RC extension is a drop-in replacement).

use bgr_bench::measure;
use bgr_core::RouterConfig;
use bgr_gen::PlacementStyle;
use bgr_timing::DelayModel;

fn main() {
    let ds = bgr_gen::c1(PlacementStyle::EvenFeed);
    println!("Ablation A4 (delay model), data set {}", ds.name);
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>8}",
        "model", "delay(ps)", "area", "len(mm)", "cpu(s)"
    );
    for (label, model) in [
        ("capacitance", DelayModel::Capacitance),
        ("elmore", DelayModel::Elmore),
    ] {
        let cfg = RouterConfig {
            delay_model: model,
            ..RouterConfig::default()
        };
        let (m, _, _) = measure(&ds, cfg);
        println!(
            "{:<14} {:>10.0} {:>9.2} {:>9.1} {:>8.2}",
            label, m.delay_ps, m.area_mm2, m.length_mm, m.cpu_s
        );
    }
}
