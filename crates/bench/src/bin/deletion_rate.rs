//! Deletions-per-second: incremental scoreboard vs full-rescan oracle.
//!
//! Routes one generated instance (≥200 nets) under both
//! [`SelectionStrategy`] variants and reports the deletion throughput of
//! each, plus the speedup. The two runs are asserted to make identical
//! selections, so the comparison is work-for-work.

use std::time::Instant;

use bgr_core::{GlobalRouter, RouterConfig, SelectionStrategy};
use bgr_gen::{custom, GenParams, PlacementStyle};

fn main() {
    let params = GenParams {
        logic_cells: 1400,
        depth: 8,
        rows: 14,
        diff_pairs: 4,
        feeds_per_row: 6,
        num_constraints: 10,
        ..GenParams::small(0xDE1)
    };
    let ds = custom("RATE", params, PlacementStyle::EvenFeed);
    let nets = ds.design.circuit.nets().len();
    assert!(nets >= 200, "instance too small: {nets} nets");
    println!("{}: {} nets", ds.name, nets);

    let rate = |strategy: SelectionStrategy| {
        let config = RouterConfig {
            selection: strategy,
            ..RouterConfig::default()
        };
        let t = Instant::now();
        let routed = GlobalRouter::new(config)
            .route(
                ds.design.circuit.clone(),
                ds.placement.clone(),
                ds.design.constraints.clone(),
            )
            .expect("instance routes");
        let secs = t.elapsed().as_secs_f64();
        let dels = routed.result.stats.deletions;
        println!(
            "  {strategy:?}: {dels} deletions in {secs:.3}s = {:.0} deletions/s",
            dels as f64 / secs
        );
        (routed.result.stats.selection_log.clone(), secs, dels)
    };

    let (log_fast, t_fast, d_fast) = rate(SelectionStrategy::Scoreboard);
    let (log_slow, t_slow, d_slow) = rate(SelectionStrategy::FullRescan);
    assert_eq!(log_fast, log_slow, "strategies diverged");
    assert_eq!(d_fast, d_slow);
    println!("  speedup: {:.2}x", t_slow / t_fast);
    assert!(
        t_fast < t_slow,
        "scoreboard ({t_fast:.3}s) must beat full rescan ({t_slow:.3}s)"
    );
}
