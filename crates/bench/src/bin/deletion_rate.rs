//! Deletions-per-second: incremental scoreboard vs full-rescan oracle.
//!
//! Routes each instance under both [`SelectionStrategy`] variants and
//! reports the deletion throughput of each, plus the speedup and the
//! scoreboard's re-key breakdown by typed cause. The two runs are
//! asserted to make identical selections, so the comparison is
//! work-for-work.
//!
//! Rows: a ~1400-cell `RATE` instance (where the scoreboard is asserted
//! to win) plus the paper-scale `C2P1`/`C3P1` reconstructions
//! (report-only). Data-set construction runs a full reference route, so
//! the paper rows come from the process-wide caches of `bgr_gen` and
//! each instance is built exactly once across both strategy runs.

use std::time::Instant;

use bgr_core::{GlobalRouter, RouteStats, RouterConfig, SelectionStrategy};
use bgr_gen::{c2_cached, c3_cached, custom, DataSet, GenParams, PlacementStyle};

struct Row {
    t_fast: f64,
    t_slow: f64,
}

fn run(ds: &DataSet, strategy: SelectionStrategy) -> (f64, RouteStats) {
    let config = RouterConfig {
        selection: strategy,
        ..RouterConfig::default()
    };
    let t = Instant::now();
    let routed = GlobalRouter::new(config)
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    let secs = t.elapsed().as_secs_f64();
    let stats = routed.result.stats;
    println!(
        "  {strategy:?}: {} deletions in {secs:.3}s = {:.0} deletions/s",
        stats.deletions,
        stats.deletions as f64 / secs
    );
    (secs, stats)
}

fn bench_row(ds: &DataSet) -> Row {
    println!("{}: {} nets", ds.name, ds.design.circuit.nets().len());
    let (t_fast, fast) = run(ds, SelectionStrategy::Scoreboard);
    let (t_slow, slow) = run(ds, SelectionStrategy::FullRescan);
    assert_eq!(
        fast.selection_log, slow.selection_log,
        "strategies diverged on {}",
        ds.name
    );
    assert_eq!(fast.deletions, slow.deletions);
    let rekeys: Vec<String> = fast
        .rekey_causes
        .iter()
        .map(|(cause, n)| format!("{} {n}", cause.label()))
        .collect();
    println!(
        "  re-keys: {} ({})",
        fast.rekey_causes.total(),
        rekeys.join(", ")
    );
    println!("  speedup: {:.2}x", t_slow / t_fast);
    Row { t_fast, t_slow }
}

fn main() {
    let params = GenParams {
        logic_cells: 1400,
        depth: 8,
        rows: 14,
        diff_pairs: 4,
        feeds_per_row: 6,
        num_constraints: 10,
        ..GenParams::small(0xDE1)
    };
    let ds = custom("RATE", params, PlacementStyle::EvenFeed);
    let nets = ds.design.circuit.nets().len();
    assert!(nets >= 200, "instance too small: {nets} nets");
    let row = bench_row(&ds);
    assert!(
        row.t_fast < row.t_slow,
        "scoreboard ({:.3}s) must beat full rescan ({:.3}s)",
        row.t_fast,
        row.t_slow
    );

    // Paper-scale rows (Table 1 reconstructions), report-only: on these
    // the constraint structure and density interactions differ from
    // RATE, so the speedup is informative rather than asserted.
    bench_row(c2_cached());
    bench_row(c3_cached());
}
