//! Deletions-per-second: incremental scoreboard vs full-rescan oracle,
//! single-thread vs multi-thread.
//!
//! Routes each instance under both [`SelectionStrategy`] variants and
//! under threads ∈ {1, N} for the scoreboard, reports the deletion
//! throughput of each, the strategy and thread speedups, and the
//! scoreboard's re-key breakdown by typed cause. All runs of an
//! instance are asserted to make identical selections, so every
//! comparison is work-for-work.
//!
//! Rows: a ~1400-cell `RATE` instance (where the scoreboard is asserted
//! to win, and — on multi-core hosts — the multi-thread scoreboard is
//! asserted ≥ 1.5× the single-thread one) plus the paper-scale
//! `C2P1`/`C3P1` reconstructions (report-only). Every row is also
//! appended to a machine-readable `BENCH_deletion.json` (default
//! `target/bench/BENCH_deletion.json`) so the bench trajectory is
//! tracked across PRs.
//!
//! Usage: `deletion_rate [--smoke] [--paper] [out.json]` — `--smoke`
//! routes only the `RATE` scoreboard rows (the CI matrix runs one
//! smoke per `BGR_THREADS` configuration); `--paper` additionally
//! routes one scoreboard row for each of `C2P1`/`C3P1`, giving the
//! regression gate paper-scale throughput rows without the full
//! bench's strategy sweeps.

use std::fmt::Write as _;
use std::time::Instant;

use bgr_core::{GlobalRouter, RouteStats, RouterConfig, SelectionStrategy};
use bgr_gen::{c2_cached, c3_cached, custom, DataSet, GenParams, PlacementStyle};

/// One benchmark run, as serialized into `BENCH_deletion.json`.
struct Record {
    instance: String,
    strategy: &'static str,
    threads: usize,
    shards: usize,
    wall_ms: f64,
    selections: usize,
    deletions: usize,
}

fn strategy_label(s: SelectionStrategy) -> &'static str {
    match s {
        SelectionStrategy::Scoreboard => "scoreboard",
        SelectionStrategy::FullRescan => "full_rescan",
    }
}

fn run(
    ds: &DataSet,
    strategy: SelectionStrategy,
    threads: usize,
    records: &mut Vec<Record>,
) -> (f64, RouteStats) {
    let config = RouterConfig {
        selection: strategy,
        threads,
        ..RouterConfig::default()
    };
    let shards = config.shards;
    let t = Instant::now();
    let routed = GlobalRouter::new(config)
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    let secs = t.elapsed().as_secs_f64();
    let stats = routed.result.stats;
    println!(
        "  {strategy:?} threads={threads}: {} deletions in {secs:.3}s = {:.0} deletions/s",
        stats.deletions,
        stats.deletions as f64 / secs
    );
    records.push(Record {
        instance: ds.name.clone(),
        strategy: strategy_label(strategy),
        threads,
        shards,
        wall_ms: secs * 1e3,
        selections: stats.selection_log.len(),
        deletions: stats.deletions,
    });
    (secs, stats)
}

struct Row {
    /// Scoreboard, single worker thread.
    t_seq: f64,
    /// Scoreboard, `multi` worker threads.
    t_par: f64,
    /// Full-rescan oracle.
    t_slow: f64,
}

fn bench_row(ds: &DataSet, multi: usize, records: &mut Vec<Record>) -> Row {
    println!("{}: {} nets", ds.name, ds.design.circuit.nets().len());
    let (t_seq, seq) = run(ds, SelectionStrategy::Scoreboard, 1, records);
    let (t_par, par) = run(ds, SelectionStrategy::Scoreboard, multi, records);
    let (t_slow, slow) = run(ds, SelectionStrategy::FullRescan, 1, records);
    assert_eq!(
        seq.selection_log, slow.selection_log,
        "strategies diverged on {}",
        ds.name
    );
    assert_eq!(
        seq.selection_log, par.selection_log,
        "thread counts diverged on {}",
        ds.name
    );
    assert_eq!(seq.deletions, slow.deletions);
    let rekeys: Vec<String> = seq
        .rekey_causes
        .iter()
        .map(|(cause, n)| format!("{} {n}", cause.label()))
        .collect();
    println!(
        "  re-keys: {} ({})",
        seq.rekey_causes.total(),
        rekeys.join(", ")
    );
    println!(
        "  speedup: {:.2}x vs rescan, {:.2}x from {multi} threads",
        t_slow / t_seq,
        t_seq / t_par
    );
    Row {
        t_seq,
        t_par,
        t_slow,
    }
}

fn write_json(records: &[Record], path: &str) {
    let mut out = String::from("{\"schema\":1,\"bench\":\"deletion_rate\",\"rows\":[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            out,
            "{{\"instance\":\"{}\",\"strategy\":\"{}\",\"threads\":{},\"shards\":{},\
             \"wall_ms\":{:.3},\"selections\":{},\"deletions\":{}}}{sep}",
            r.instance, r.strategy, r.threads, r.shards, r.wall_ms, r.selections, r.deletions
        )
        .expect("write to string");
    }
    out.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create bench dir");
    }
    std::fs::write(path, &out).expect("write BENCH_deletion.json");
    println!("wrote {path} ({} rows)", records.len());
}

fn rate_dataset() -> DataSet {
    let params = GenParams {
        logic_cells: 1400,
        depth: 8,
        rows: 14,
        diff_pairs: 4,
        feeds_per_row: 6,
        num_constraints: 10,
        ..GenParams::small(0xDE1)
    };
    custom("RATE", params, PlacementStyle::EvenFeed)
}

fn main() {
    let mut smoke = false;
    let mut paper = false;
    let mut out_path = "target/bench/BENCH_deletion.json".to_owned();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--paper" {
            paper = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The multi-thread configuration under test: BGR_THREADS when set
    // (the CI matrix pins it), else every core the host offers.
    let multi = RouterConfig::default().threads.max(cores).max(2);
    let mut records = Vec::new();

    let ds = rate_dataset();
    let nets = ds.design.circuit.nets().len();
    assert!(nets >= 200, "instance too small: {nets} nets");

    if smoke {
        // One smoke row per CI configuration: the scoreboard at the
        // environment's thread count (BGR_THREADS or 1).
        let threads = RouterConfig::default().threads;
        println!("{} (smoke): {} nets", ds.name, nets);
        run(&ds, SelectionStrategy::Scoreboard, threads, &mut records);
        if paper {
            // Paper-scale gate rows: one scoreboard pass each, so the
            // C2P1/C3P1 deletions/s baselines are regression-gated
            // without the full bench's strategy sweeps.
            for ds in [c2_cached(), c3_cached()] {
                println!(
                    "{} (paper gate): {} nets",
                    ds.name,
                    ds.design.circuit.nets().len()
                );
                run(ds, SelectionStrategy::Scoreboard, threads, &mut records);
            }
        }
        write_json(&records, &out_path);
        return;
    }

    let row = bench_row(&ds, multi, &mut records);
    assert!(
        row.t_seq < row.t_slow,
        "scoreboard ({:.3}s) must beat full rescan ({:.3}s)",
        row.t_seq,
        row.t_slow
    );
    if cores >= 2 {
        assert!(
            row.t_seq / row.t_par >= 1.5,
            "multi-thread scoreboard ({:.3}s at {multi} threads) must be >= 1.5x \
             the single-thread one ({:.3}s) on a {cores}-core host",
            row.t_par,
            row.t_seq
        );
    } else {
        println!("  (single-core host: skipping the 1.5x multi-thread assertion)");
    }

    // Thread-scaling curve (ROADMAP "real-core benchmarking"): the RATE
    // instance at threads ∈ {1, 2, 4, 8}. Threads 1 and `multi` are
    // already measured above; the remaining points fill the curve. All
    // points make identical selections, so the curve is work-for-work,
    // and every row lands in BENCH_deletion.json for cross-PR tracking.
    let base_selections = records
        .iter()
        .find(|r| r.instance == ds.name && r.strategy == "scoreboard")
        .map(|r| r.selections)
        .expect("RATE scoreboard row recorded");
    println!("{} thread-scaling sweep:", ds.name);
    for threads in [1usize, 2, 4, 8] {
        if threads == 1 || threads == multi {
            continue;
        }
        let (_, stats) = run(&ds, SelectionStrategy::Scoreboard, threads, &mut records);
        assert_eq!(
            stats.selection_log.len(),
            base_selections,
            "thread count changed the selection stream on {}",
            ds.name
        );
    }

    // Paper-scale rows (Table 1 reconstructions), report-only: on these
    // the constraint structure and density interactions differ from
    // RATE, so the speedups are informative rather than asserted.
    bench_row(c2_cached(), multi, &mut records);
    bench_row(c3_cached(), multi, &mut records);
    write_json(&records, &out_path);
}
