//! Ablation A6: §3.1 slack-ordered feedthrough assignment vs plain
//! netlist order, on C1P1 and C2P1. Under feedthrough scarcity, critical
//! nets assigned first claim the best-positioned slots.

use bgr_bench::{lower_bound_delays_in_layout, mean_diff_from_lb_percent, measure};
use bgr_core::RouterConfig;
use bgr_gen::PlacementStyle;

fn main() {
    println!("Ablation A6 (assignment net ordering)");
    println!(
        "{:<6} {:<14} {:>10} {:>9} {:>12}",
        "Data", "order", "delay(ps)", "len(mm)", "above-lb(%)"
    );
    for ds in [
        bgr_gen::c1(PlacementStyle::EvenFeed),
        bgr_gen::c2(PlacementStyle::EvenFeed),
    ] {
        for (label, slack) in [("slack (§3.1)", true), ("netlist id", false)] {
            let cfg = RouterConfig {
                slack_ordering: slack,
                ..RouterConfig::default()
            };
            let (m, routed, detail) = measure(&ds, cfg);
            let lb = lower_bound_delays_in_layout(&ds, &routed, &detail.tracks);
            println!(
                "{:<6} {:<14} {:>10.0} {:>9.1} {:>12.1}",
                ds.name,
                label,
                m.delay_ps,
                m.length_mm,
                mean_diff_from_lb_percent(&m.arrivals_ps, &lb)
            );
        }
    }
}
