//! Table 2: routing results with and without constraints — Delay (ps),
//! Area (mm²), Length (mm), CPU (s) for the five data sets.

use bgr_bench::{measure, table2_row};
use bgr_core::RouterConfig;
use bgr_gen::circuits::table_data_sets;

fn main() {
    let sets = table_data_sets();
    println!("Table 2: Routing Results With Constraints");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "Data", "Delay", "Area", "Length", "CPU", "Viol"
    );
    let mut with = Vec::new();
    for ds in &sets {
        let (m, _, _) = measure(ds, RouterConfig::default());
        println!("{}", table2_row(&m));
        with.push(m);
    }
    println!();
    println!("Table 2: Routing Results Without Constraints");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "Data", "Delay", "Area", "Length", "CPU", "Viol"
    );
    for (ds, w) in sets.iter().zip(&with) {
        let (m, _, _) = measure(ds, RouterConfig::unconstrained());
        println!("{}", table2_row(&m));
        let impr = (m.delay_ps - w.delay_ps) / m.delay_ps * 100.0;
        println!("       -> delay improvement of constrained run: {impr:.2}% (paper range: 0.56%..23.5%)");
    }
}
