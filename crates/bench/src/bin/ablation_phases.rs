//! Ablation A3: improvement phases on/off on C2P1 —
//! initial-only, +recover, +delay, +area (full).

use bgr_bench::measure;
use bgr_core::RouterConfig;
use bgr_gen::PlacementStyle;

fn main() {
    let ds = bgr_gen::c2(PlacementStyle::EvenFeed);
    println!("Ablation A3 (improvement phases), data set {}", ds.name);
    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>8}",
        "phases", "delay(ps)", "area", "len(mm)", "viol"
    );
    let variants: [(&str, RouterConfig); 4] = [
        (
            "initial only",
            RouterConfig {
                recover_passes: 0,
                delay_passes: 0,
                area_passes: 0,
                ..RouterConfig::default()
            },
        ),
        (
            "+recover",
            RouterConfig {
                delay_passes: 0,
                area_passes: 0,
                ..RouterConfig::default()
            },
        ),
        (
            "+recover+delay",
            RouterConfig {
                area_passes: 0,
                ..RouterConfig::default()
            },
        ),
        ("+recover+delay+area", RouterConfig::default()),
    ];
    for (label, cfg) in variants {
        let (m, _, _) = measure(&ds, cfg);
        println!(
            "{:<22} {:>10.0} {:>9.2} {:>9.1} {:>5}/{}",
            label, m.delay_ps, m.area_mm2, m.length_mm, m.violations, m.constraints
        );
    }
}
