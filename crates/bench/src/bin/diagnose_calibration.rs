//! Diagnostic: internal (global-estimate) vs final (channel-routed)
//! arrivals per constraint on C2P1.
use bgr_bench::measure;
use bgr_core::RouterConfig;
use bgr_gen::{arrival_with_lengths, PlacementStyle};

fn main() {
    let ds = bgr_gen::c2(PlacementStyle::EvenFeed);
    let (con, conr, _) = measure(&ds, RouterConfig::default());
    let mut int_viol = 0;
    let mut fin_viol = 0;
    let mut ratio = 0.0;
    for (i, c) in ds.design.constraints.iter().enumerate() {
        let internal =
            arrival_with_lengths(&conr.circuit, c.source, c.sink, &conr.result.net_lengths_um)
                .unwrap();
        let fin = con.arrivals_ps[i];
        if internal > c.limit_ps {
            int_viol += 1;
        }
        if fin > c.limit_ps {
            fin_viol += 1;
        }
        ratio += fin / internal;
        if i < 8 {
            println!(
                "cons{i}: internal={internal:.0} final={fin:.0} limit={:.0}",
                c.limit_ps
            );
        }
    }
    let n = ds.design.constraints.len();
    println!("internal violations {int_viol}/{n}, final violations {fin_viol}/{n}, mean final/internal = {:.3}", ratio / n as f64);
}
