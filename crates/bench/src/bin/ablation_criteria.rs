//! Ablation A1: edge-selection criteria ordering on C2P1 —
//! delay-first (§3.4), area-first (§3.5), and density-only.

use bgr_bench::{lower_bound_delays_in_layout, mean_diff_from_lb_percent, measure};
use bgr_core::{CriteriaOrder, RouterConfig};
use bgr_gen::PlacementStyle;

fn main() {
    let ds = bgr_gen::c2(PlacementStyle::EvenFeed);
    println!("Ablation A1 (criteria ordering), data set {}", ds.name);
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>12}",
        "order", "delay(ps)", "area", "len(mm)", "above-lb(%)"
    );
    for (label, order) in [
        ("delay-first", CriteriaOrder::DelayFirst),
        ("area-first", CriteriaOrder::AreaFirst),
        ("density-only", CriteriaOrder::DensityOnly),
    ] {
        let cfg = RouterConfig {
            criteria_order: order,
            ..RouterConfig::default()
        };
        let (m, routed, detail) = measure(&ds, cfg);
        let lb = lower_bound_delays_in_layout(&ds, &routed, &detail.tracks);
        println!(
            "{:<14} {:>10.0} {:>9.2} {:>9.1} {:>12.1}",
            label,
            m.delay_ps,
            m.area_mm2,
            m.length_mm,
            mean_diff_from_lb_percent(&m.arrivals_ps, &lb)
        );
    }
}
