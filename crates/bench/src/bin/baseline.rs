//! Baseline comparison: the paper's concurrent edge-deletion router vs a
//! conventional sequential (net-at-a-time, congestion-penalized) router
//! on the same substrates and measurement pipeline.

use bgr_channel::route_channels;
use bgr_core::{GlobalRouter, RouterConfig, SequentialConfig, SequentialRouter};
use bgr_gen::PlacementStyle;
use bgr_timing::{DelayModel, WireParams};

fn main() {
    println!("Baseline comparison (channel-routed measurements)");
    println!(
        "{:<6} {:<22} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "Data", "router", "delay(ps)", "area", "len(mm)", "tracks", "cpu(s)"
    );
    for ds in [
        bgr_gen::c1(PlacementStyle::EvenFeed),
        bgr_gen::c2(PlacementStyle::EvenFeed),
    ] {
        let runs: Vec<(&str, bgr_core::Routed)> = vec![
            (
                "edge-deletion (cons)",
                GlobalRouter::new(RouterConfig::default())
                    .route(
                        ds.design.circuit.clone(),
                        ds.placement.clone(),
                        ds.design.constraints.clone(),
                    )
                    .expect("routes"),
            ),
            (
                "edge-deletion (unc)",
                GlobalRouter::new(RouterConfig::unconstrained())
                    .route(
                        ds.design.circuit.clone(),
                        ds.placement.clone(),
                        ds.design.constraints.clone(),
                    )
                    .expect("routes"),
            ),
            (
                "sequential (slack)",
                SequentialRouter::new(SequentialConfig::default())
                    .route(
                        ds.design.circuit.clone(),
                        ds.placement.clone(),
                        ds.design.constraints.clone(),
                    )
                    .expect("routes"),
            ),
        ];
        for (label, routed) in runs {
            let detail = route_channels(
                &routed.circuit,
                &routed.placement,
                &routed.result,
                &ds.design.constraints,
                DelayModel::Capacitance,
                WireParams::default(),
            )
            .expect("channel-routes");
            println!(
                "{:<6} {:<22} {:>10.0} {:>9.2} {:>9.1} {:>9} {:>8.2}",
                ds.name,
                label,
                detail.timing.max_arrival_ps(),
                detail.area_mm2,
                detail.total_length_mm(),
                detail.tracks.iter().sum::<usize>(),
                routed.result.stats.total.as_secs_f64()
            );
        }
    }
}
