//! Routes a small generated circuit with the collecting probe and
//! renders both trace artifacts: the JSONL trace (machine-diffable) and
//! the human-readable summary (criterion-decision breakdown, per-phase
//! time/work profile).
//!
//! Usage: `trace_summary [out_dir]` — writes `trace.jsonl` and
//! `trace_summary.txt` under `out_dir` (default `target/trace`). CI
//! uploads both, so every PR's routing behavior is diffable.

use bgr_core::{GlobalRouter, RouterConfig, TraceSummary};
use bgr_gen::{custom, GenParams, PlacementStyle};
use bgr_io::write_trace_jsonl;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace".to_owned());

    let params = GenParams {
        logic_cells: 300,
        depth: 8,
        rows: 6,
        diff_pairs: 2,
        feeds_per_row: 6,
        num_constraints: 8,
        ..GenParams::small(0x7ACE)
    };
    let ds = custom("TRACE", params, PlacementStyle::EvenFeed);
    println!("{}: {} nets", ds.name, ds.design.circuit.nets().len());

    let (routed, trace) = GlobalRouter::new(RouterConfig::default())
        .route_traced(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    assert_eq!(
        trace.deletions(),
        routed.result.stats.deletions,
        "event stream must account for every deletion"
    );

    let summary = TraceSummary::from_trace(&trace);
    let text = summary.to_ascii();
    print!("{text}");

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let jsonl = write_trace_jsonl(&trace);
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let text_path = format!("{out_dir}/trace_summary.txt");
    std::fs::write(&jsonl_path, &jsonl).expect("write trace.jsonl");
    std::fs::write(&text_path, &text).expect("write trace_summary.txt");
    println!(
        "wrote {jsonl_path} ({} records) and {text_path}",
        jsonl.lines().count()
    );
}
