//! Routes a small generated circuit with the collecting probe and
//! renders both trace artifacts: the JSONL trace (machine-diffable) and
//! the human-readable summary (criterion-decision breakdown, per-phase
//! time/work profile). When a golden trace is present it also checks
//! the deterministic event prefix against it and reports the first
//! divergence.
//!
//! Usage: `trace_summary [out_dir] [--json]` — writes `trace.jsonl`,
//! `trace_summary.txt`, the hierarchical self-profile (`profile.txt`
//! ASCII call-tree + `profile.folded` flamegraph-collapsed stacks) and
//! `trace_stats.json` under `out_dir` (default `target/trace`). CI
//! uploads them, so every PR's routing behavior is diffable. `--json`
//! additionally prints the [`bgr_io::TraceStats`] object to stdout for
//! machine consumers.
//!
//! Golden check: the deterministic prefix (meta + event lines) is
//! compared against `tests/golden/trace.jsonl` (override the path with
//! `BGR_GOLDEN`); on divergence the first differing line is printed and
//! the process exits non-zero. Run with `BGR_BLESS=1` to rewrite the
//! golden after an intentional behavior change.

use bgr_core::{Counter, GlobalRouter, RouterConfig, TraceSummary};
use bgr_gen::golden_instance;
use bgr_io::{deterministic_lines, trace_divergence, write_trace_jsonl, TraceStats};

fn main() {
    let mut out_dir = "target/trace".to_owned();
    let mut json = false;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            out_dir = arg;
        }
    }

    let ds = golden_instance();
    println!("{}: {} nets", ds.name, ds.design.circuit.nets().len());

    let (routed, trace, profile) = GlobalRouter::new(RouterConfig::default())
        .route_profiled(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("instance routes");
    assert_eq!(
        trace.deletions(),
        routed.result.stats.deletions,
        "event stream must account for every deletion"
    );

    // The per-net delay memo fronts the hypotenuse cache: a full
    // hypotenuse lookup happens only on a memo miss, so the two layers
    // must tie out exactly, the memo must actually absorb traffic, and
    // delay work must stay a strict subset of key evaluations.
    let hyp_lookups = trace.counter(Counter::HypCacheHit) + trace.counter(Counter::HypCacheMiss);
    let memo_hits = trace.counter(Counter::DelayMemoHit);
    let memo_misses = trace.counter(Counter::DelayMemoMiss);
    let key_evals = trace.counter(Counter::KeyEval);
    assert_eq!(
        hyp_lookups, memo_misses,
        "every hypotenuse lookup must come from exactly one delay-memo miss"
    );
    assert!(
        memo_hits > 0,
        "the delay memo never hit on a constrained instance"
    );
    assert!(
        hyp_lookups < key_evals,
        "memoization must keep hypotenuse lookups ({hyp_lookups}) below key evaluations ({key_evals})"
    );
    println!("delay memo: {memo_hits} hits / {memo_misses} misses over {key_evals} key evals");

    // Independent audit (DESIGN.md §12): recompute every claim of the
    // result from scratch. Runs *outside* the router, so it can never
    // perturb the traced decision stream it certifies.
    let audit = bgr_verify::audit(
        &routed.circuit,
        &routed.placement,
        &ds.design.constraints,
        &RouterConfig::default(),
        &routed.result,
    );
    println!("independent audit ({} checks):", audit.total_checks());
    print!("{}", audit.table());
    if !audit.is_clean() {
        eprintln!("audit FAILED — the trace below describes a corrupted route");
        std::process::exit(1);
    }

    let summary = TraceSummary::from_trace(&trace);
    let text = summary.to_ascii();
    print!("{text}");

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let jsonl = write_trace_jsonl(&trace);
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let text_path = format!("{out_dir}/trace_summary.txt");
    std::fs::write(&jsonl_path, &jsonl).expect("write trace.jsonl");
    std::fs::write(&text_path, &text).expect("write trace_summary.txt");
    println!(
        "wrote {jsonl_path} ({} records) and {text_path}",
        jsonl.lines().count()
    );

    // Hierarchical self-profile (DESIGN.md §14): where the route's wall
    // clock went, by phase and scope. Diagnostic only — the profiled
    // run's deterministic event stream is what the golden check below
    // certifies, so profiling demonstrably didn't perturb the route.
    print!("{}", profile.to_ascii());
    let profile_path = format!("{out_dir}/profile.txt");
    let folded_path = format!("{out_dir}/profile.folded");
    std::fs::write(&profile_path, profile.to_ascii()).expect("write profile.txt");
    std::fs::write(&folded_path, profile.to_folded()).expect("write profile.folded");
    println!("wrote {profile_path} and {folded_path}");

    let stats = TraceStats::from_jsonl(&jsonl).expect("own trace parses");
    let stats_path = format!("{out_dir}/trace_stats.json");
    std::fs::write(&stats_path, format!("{}\n", stats.to_json())).expect("write trace_stats.json");
    println!("wrote {stats_path}");
    if json {
        println!("{}", stats.to_json());
    }

    let golden_path =
        std::env::var("BGR_GOLDEN").unwrap_or_else(|_| "tests/golden/trace.jsonl".to_owned());
    if std::env::var("BGR_BLESS").is_ok_and(|v| v == "1") {
        let det = deterministic_lines(&jsonl);
        std::fs::write(&golden_path, &det).expect("write golden trace");
        // A bless is only as trustworthy as the route it freezes: record
        // that the independent audit certified it.
        println!(
            "blessed {golden_path} ({} deterministic lines, audit clean over {} checks)",
            det.lines().count(),
            audit.total_checks()
        );
        return;
    }
    match std::fs::read_to_string(&golden_path) {
        Ok(golden) => match trace_divergence(&golden, &jsonl) {
            None => println!(
                "golden: {golden_path} matches ({} deterministic lines)",
                deterministic_lines(&jsonl).lines().count()
            ),
            Some(diff) => {
                eprintln!("golden trace drift against {golden_path}:\n{diff}");
                eprintln!(
                    "independent audit of the drifted route: {}",
                    if audit.is_clean() {
                        "clean (behavior change, not corruption)"
                    } else {
                        "FAILED (see verdicts above)"
                    }
                );
                eprintln!("if the change is intentional, re-bless with BGR_BLESS=1");
                std::process::exit(1);
            }
        },
        Err(_) => println!("golden: {golden_path} not found, comparison skipped"),
    }
}
