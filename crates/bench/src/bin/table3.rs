//! Table 3: difference of critical-path delays from the half-perimeter
//! lower bound, constrained vs unconstrained, plus the paper's headline
//! "average reduction of the critical-path delay as % of the lower
//! bound" (paper: 17.6%).

use bgr_bench::{
    lower_bound_delays_in_layout, mean_diff_from_lb_percent, mean_reduction_of_lb_percent, measure,
};
use bgr_core::RouterConfig;
use bgr_gen::circuits::table_data_sets;

fn main() {
    println!("Table 3: Difference from the lower bound");
    println!(
        "{:<6} {:>10} {:>14} {:>16}",
        "Data", "lb (ps)", "Constr. (%)", "Unconstr. (%)"
    );
    let mut reductions = Vec::new();
    for ds in table_data_sets() {
        let (con, con_routed, con_detail) = measure(&ds, RouterConfig::default());
        let (unc, _, _) = measure(&ds, RouterConfig::unconstrained());
        // The lower bound lives in the routed layout geometry (the
        // paper's rectangles contain the terminals of the final layout).
        let lb = lower_bound_delays_in_layout(&ds, &con_routed, &con_detail.tracks);
        let lb_max = lb.iter().copied().fold(0.0, f64::max);
        let dc = mean_diff_from_lb_percent(&con.arrivals_ps, &lb);
        let du = mean_diff_from_lb_percent(&unc.arrivals_ps, &lb);
        println!("{:<6} {:>10.0} {:>14.1} {:>16.1}", ds.name, lb_max, dc, du);
        reductions.push(mean_reduction_of_lb_percent(
            &con.arrivals_ps,
            &unc.arrivals_ps,
            &lb,
        ));
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("Average critical-path delay reduction: {avg:.1}% of the lower bound (paper: 17.6%)");
}
