//! Ablation A7: channel-router track ordering — the fast preference pass
//! vs the classic VCG-constrained left-edge — on C1P1.

use bgr_channel::{route_channels_with, TrackOrdering};
use bgr_core::{GlobalRouter, RouterConfig};
use bgr_gen::PlacementStyle;
use bgr_timing::{DelayModel, WireParams};

fn main() {
    let ds = bgr_gen::c1(PlacementStyle::EvenFeed);
    let routed = GlobalRouter::new(RouterConfig::default())
        .route(
            ds.design.circuit.clone(),
            ds.placement.clone(),
            ds.design.constraints.clone(),
        )
        .expect("routes");
    println!("Ablation A7 (channel track ordering), data set {}", ds.name);
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "ordering", "delay(ps)", "area", "len(mm)", "tracks", "vcg-viol"
    );
    for (label, ordering) in [
        ("preference", TrackOrdering::Preference),
        ("vcg", TrackOrdering::Vcg),
    ] {
        let d = route_channels_with(
            &routed.circuit,
            &routed.placement,
            &routed.result,
            &ds.design.constraints,
            DelayModel::Capacitance,
            WireParams::default(),
            ordering,
        )
        .expect("channel-routes");
        println!(
            "{:<12} {:>10.0} {:>9.2} {:>9.1} {:>9} {:>10}",
            label,
            d.timing.max_arrival_ps(),
            d.area_mm2,
            d.total_length_mm(),
            d.tracks.iter().sum::<usize>(),
            d.vcg_violations
        );
    }
}
