//! Ablation A5: bipolar-specific features on C1P1 — differential-pair
//! lockstep on/off, and feed-cell insertion pressure (P1 vs P2).

use bgr_bench::measure;
use bgr_core::RouterConfig;
use bgr_gen::PlacementStyle;

fn main() {
    let p1 = bgr_gen::c1(PlacementStyle::EvenFeed);
    let p2 = bgr_gen::c1(PlacementStyle::FeedAside);
    println!("Ablation A5 (bipolar features)");
    println!(
        "{:<26} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "variant", "delay(ps)", "area", "len(mm)", "locked", "inserted"
    );
    for (label, ds, pair) in [
        ("P1 + diff lockstep", &p1, true),
        ("P1, independent pairs", &p1, false),
        ("P2 + diff lockstep", &p2, true),
    ] {
        let cfg = RouterConfig {
            pair_differential: pair,
            ..RouterConfig::default()
        };
        let (m, routed, _) = measure(ds, cfg);
        println!(
            "{:<26} {:>10.0} {:>9.2} {:>9.1} {:>9} {:>9}",
            label,
            m.delay_ps,
            m.area_mm2,
            m.length_mm,
            routed.result.stats.diff_pairs_locked,
            routed.result.stats.feed_cells_inserted
        );
    }
}
