//! Independent invariant verifier: audits a finished
//! [`RoutingResult`] against from-scratch oracles.
//!
//! The router maintains several *incremental* structures — a
//! diff-array density profile, memoized net lengths inside the static
//! timing analyzer, a sharded candidate scoreboard — whose
//! correctness rests on invalidation contracts (DESIGN.md §7–§8). A
//! bug in any contract produces a *silently* wrong result: the route
//! completes, every internal `debug_assert!` that happens to be
//! compiled in stays quiet, and the damage only shows at the channel
//! router or on silicon. This crate is the counterweight: it takes
//! only the **public inputs** (circuit, placement, constraints,
//! configuration) plus the result, recomputes every claim from
//! scratch, and returns a structured [`AuditReport`] with one verdict
//! per [`Invariant`] and first-divergence detail.
//!
//! **Zero shared state.** Nothing here reads the engine, the
//! scoreboard, the incremental density map or the memoized analyzer;
//! the only shared code is stateless public API (net-tree geometry,
//! `TimingReport::evaluate`, `SlotStore::from_placement`). An
//! incremental-state bug therefore cannot corrupt its own auditor.
//!
//! The oracles:
//!
//! * [`Invariant::Forest`] — every net's segments form a spanning
//!   tree over its coordinate graph, tapping exactly the net's
//!   terminals at their placed positions (§3.2's "delete until
//!   spanning tree" postcondition).
//! * [`Invariant::Density`] — a naive max-sweep over all trunk spans
//!   reproduces `channel_tracks` (the paper's `C_M` estimate,
//!   §3.3) channel by channel.
//! * [`Invariant::Timing`] — a fresh analyzer over the reported net
//!   lengths reproduces the timing report and the arrival times
//!   quoted by the violation report; reported lengths match the tree
//!   geometry.
//! * [`Invariant::Constraints`] — the violation report contains
//!   exactly the constraints a fresh analysis finds violated: no
//!   silent misses, no spurious entries (§3.5 recovery accounting).
//! * [`Invariant::Feedthrough`] — every row crossing sits on a
//!   feed-capable column of its row (§4.3 slot discipline).
//! * [`Invariant::DiffPair`] — at least `diff_pairs_locked` pairs
//!   are geometrically parallel, and the lock/independent counts
//!   cover every pair (§4.1 lockstep).

use bgr_core::{RouterConfig, RoutingResult, Segment, TimingReport};
use bgr_layout::{ChannelId, Placement, SlotId, SlotStore};
use bgr_netlist::{Circuit, NetId};
use bgr_timing::PathConstraint;

/// Float tolerance for recomputed lengths, arrivals and margins (µm /
/// ps) — generous against accumulation order, far below any real
/// divergence.
const EPS: f64 = 1e-6;

/// One independently checkable claim of a routing result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Per-net spanning-tree validity over the segment geometry.
    Forest,
    /// `channel_tracks` equals a from-scratch density sweep.
    Density,
    /// Timing report and violation arrivals match a fresh analysis.
    Timing,
    /// Violation report is complete and free of spurious entries.
    Constraints,
    /// Row crossings sit on feed-capable columns.
    Feedthrough,
    /// Differential-pair lockstep counts are consistent with geometry.
    DiffPair,
}

impl Invariant {
    /// Every invariant, in audit order.
    pub const ALL: [Invariant; 6] = [
        Invariant::Forest,
        Invariant::Density,
        Invariant::Timing,
        Invariant::Constraints,
        Invariant::Feedthrough,
        Invariant::DiffPair,
    ];

    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            Invariant::Forest => "forest",
            Invariant::Density => "density",
            Invariant::Timing => "timing",
            Invariant::Constraints => "constraints",
            Invariant::Feedthrough => "feedthrough",
            Invariant::DiffPair => "diff_pair",
        }
    }
}

/// First divergence one oracle found.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFailure {
    /// The violated invariant.
    pub invariant: Invariant,
    /// The net the divergence localizes to, when one does.
    pub net: Option<NetId>,
    /// The channel the divergence localizes to, when one does.
    pub channel: Option<ChannelId>,
    /// The constraint (by name) the divergence localizes to.
    pub constraint: Option<String>,
    /// Human-readable first-divergence description.
    pub detail: String,
}

impl std::fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant.label(), self.detail)?;
        if let Some(n) = self.net {
            write!(f, " [net {}]", n.index())?;
        }
        if let Some(c) = self.channel {
            write!(f, " [channel {}]", c.index())?;
        }
        if let Some(c) = &self.constraint {
            write!(f, " [constraint {c}]")?;
        }
        Ok(())
    }
}

/// One oracle's outcome: how many comparisons ran, and the first
/// divergence if any.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// The audited invariant.
    pub invariant: Invariant,
    /// Comparisons performed (up to the first divergence).
    pub checks: u64,
    /// The first divergence, or `None` when the invariant held.
    pub failure: Option<AuditFailure>,
}

/// The full audit: one verdict per [`Invariant`], in
/// [`Invariant::ALL`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-invariant verdicts.
    pub verdicts: Vec<AuditVerdict>,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(|v| v.failure.is_none())
    }

    /// The first failed verdict's failure, in audit order.
    pub fn first_failure(&self) -> Option<&AuditFailure> {
        self.verdicts.iter().find_map(|v| v.failure.as_ref())
    }

    /// The verdict of one invariant.
    pub fn verdict(&self, inv: Invariant) -> &AuditVerdict {
        self.verdicts
            .iter()
            .find(|v| v.invariant == inv)
            .expect("report carries every invariant")
    }

    /// Total comparisons across all oracles.
    pub fn total_checks(&self) -> u64 {
        self.verdicts.iter().map(|v| v.checks).sum()
    }

    /// Multi-line per-invariant table (one verdict per line), for
    /// human-facing reports; the [`Display`](std::fmt::Display) impl
    /// stays one line for log streams.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.verdicts {
            match &v.failure {
                None => {
                    let _ = writeln!(out, "{:<12} ok ({} checks)", v.invariant.label(), v.checks);
                }
                Some(fail) => {
                    let _ = writeln!(out, "{:<12} FAIL: {fail}", v.invariant.label());
                }
            }
        }
        out
    }
}

/// Stable one-line summary, suitable for embedding in JSONL streams:
/// `audit clean: 6 invariants, N checks` when every oracle held, or
/// `audit FAILED (k/6 invariants): <first failure>` otherwise.
impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.verdicts.len();
        if self.is_clean() {
            write!(
                f,
                "audit clean: {} invariants, {} checks",
                total,
                self.total_checks()
            )
        } else {
            let failed = self.verdicts.iter().filter(|v| v.failure.is_some()).count();
            let first = self.first_failure().expect("not clean implies a failure");
            write!(f, "audit FAILED ({failed}/{total} invariants): {first}")
        }
    }
}

/// Audits `result` against the public inputs it was produced from.
///
/// `circuit` and `placement` must be the *post-route* pair returned in
/// [`bgr_core::Routed`] — feed-cell insertion (§4.3) may have extended
/// them, and the result's geometry refers to the extended chip.
/// `constraints` are the originally requested path constraints and
/// `config` the configuration the route ran under (the auditor needs
/// its delay model, wire parameters and `use_constraints` switch).
pub fn audit(
    circuit: &Circuit,
    placement: &Placement,
    constraints: &[PathConstraint],
    config: &RouterConfig,
    result: &RoutingResult,
) -> AuditReport {
    let verdicts = vec![
        forest_oracle(circuit, placement, result),
        density_oracle(placement, result),
        timing_oracle(circuit, constraints, config, result),
        constraints_oracle(circuit, constraints, config, result),
        feedthrough_oracle(circuit, placement, result),
        diff_pair_oracle(circuit, result),
    ];
    AuditReport { verdicts }
}

/// [`audit`] with the six oracles fanned over `threads` workers via
/// `bgr_core::par::scoped_map`.
///
/// The oracles are independent by design (zero shared mutable state —
/// see the crate docs), so they parallelize trivially; `scoped_map`
/// returns results in input order, so the merged report is identical
/// to the sequential [`audit`]'s for any thread count — asserted by
/// this crate's determinism test and cheap enough to rely on.
pub fn audit_parallel(
    threads: usize,
    circuit: &Circuit,
    placement: &Placement,
    constraints: &[PathConstraint],
    config: &RouterConfig,
    result: &RoutingResult,
) -> AuditReport {
    let mut oracles: Vec<Invariant> = Invariant::ALL.to_vec();
    let verdicts = bgr_core::par::scoped_map(threads, &mut oracles, |inv| match inv {
        Invariant::Forest => forest_oracle(circuit, placement, result),
        Invariant::Density => density_oracle(placement, result),
        Invariant::Timing => timing_oracle(circuit, constraints, config, result),
        Invariant::Constraints => constraints_oracle(circuit, constraints, config, result),
        Invariant::Feedthrough => feedthrough_oracle(circuit, placement, result),
        Invariant::DiffPair => diff_pair_oracle(circuit, result),
    });
    AuditReport { verdicts }
}

fn fail(
    invariant: Invariant,
    net: Option<NetId>,
    channel: Option<ChannelId>,
    constraint: Option<String>,
    detail: String,
) -> Option<AuditFailure> {
    Some(AuditFailure {
        invariant,
        net,
        channel,
        constraint,
        detail,
    })
}

/// Tiny union-find for the per-net coordinate graphs.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Rebuilds each net's coordinate graph from its segments — nodes are
/// `(channel, x)` wiring points plus tapped terminals — and checks it
/// is a spanning tree (`connected && edges == nodes - 1`) tapping
/// exactly the net's terminals at their placed positions.
fn forest_oracle(circuit: &Circuit, placement: &Placement, result: &RoutingResult) -> AuditVerdict {
    use std::collections::{BTreeMap, BTreeSet};
    let inv = Invariant::Forest;
    let num_rows = placement.num_rows();
    let num_channels = placement.num_channels();
    let mut checks = 0u64;
    let mut failure = None;
    'nets: for (i, tree) in result.trees.iter().enumerate() {
        let net = NetId::new(i);
        let netdef = circuit.net(net);
        checks += 1;
        if tree.width_pitches != netdef.width_pitches() {
            failure = fail(
                inv,
                Some(net),
                None,
                None,
                format!(
                    "tree width {} != net width {}",
                    tree.width_pitches,
                    netdef.width_pitches()
                ),
            );
            break;
        }
        // Pass 1: collect wiring points and validate per-segment facts.
        let mut points: BTreeSet<(usize, i32)> = BTreeSet::new();
        let mut tapped: BTreeMap<u32, usize> = BTreeMap::new(); // term -> node (assigned later)
        for seg in &tree.segments {
            checks += 1;
            match *seg {
                Segment::Trunk { channel, x1, x2 } => {
                    if channel.index() >= num_channels || x1 > x2 {
                        failure = fail(
                            inv,
                            Some(net),
                            Some(channel),
                            None,
                            format!(
                                "malformed trunk [{x1}, {x2}] in channel {}",
                                channel.index()
                            ),
                        );
                        break 'nets;
                    }
                    points.insert((channel.index(), x1));
                    points.insert((channel.index(), x2));
                }
                Segment::Branch { channel, x, term } => {
                    let pos = placement.term_pos(circuit, term);
                    let ok = pos.x == x
                        && pos.channels(num_rows).contains(&channel)
                        && netdef.terms().any(|t| t == term);
                    if !ok {
                        failure = fail(
                            inv,
                            Some(net),
                            Some(channel),
                            None,
                            format!(
                                "branch at x={x} channel {} does not match terminal {} \
                                 (placed at x={}) or terminal is not on this net",
                                channel.index(),
                                term.index(),
                                pos.x
                            ),
                        );
                        break 'nets;
                    }
                    points.insert((channel.index(), x));
                    tapped.insert(term.index() as u32, usize::MAX);
                }
                Segment::Feed { row, x } => {
                    if row as usize >= num_rows {
                        failure = fail(
                            inv,
                            Some(net),
                            None,
                            None,
                            format!("feed at x={x} crosses nonexistent row {row}"),
                        );
                        break 'nets;
                    }
                    points.insert((row as usize, x));
                    points.insert((row as usize + 1, x));
                }
            }
        }
        // Terminal coverage: tapped set == the net's terminal set.
        checks += 1;
        let want: BTreeSet<u32> = netdef.terms().map(|t| t.index() as u32).collect();
        let got: BTreeSet<u32> = tapped.keys().copied().collect();
        if got != want {
            failure = fail(
                inv,
                Some(net),
                None,
                None,
                format!(
                    "taps {} of {} terminals (missing or foreign taps)",
                    got.len(),
                    want.len()
                ),
            );
            break;
        }
        // Node numbering: wiring points then terminals.
        let index_of: BTreeMap<(usize, i32), usize> = points
            .iter()
            .enumerate()
            .map(|(idx, &p)| (p, idx))
            .collect();
        for (idx, (_, node)) in tapped.iter_mut().enumerate() {
            *node = points.len() + idx;
        }
        let num_nodes = points.len() + tapped.len();
        let mut dsu = Dsu::new(num_nodes);
        // Per-channel sorted point list for trunk subdivision.
        let mut by_channel: BTreeMap<usize, Vec<i32>> = BTreeMap::new();
        for &(c, x) in &points {
            by_channel.entry(c).or_default().push(x);
        }
        // Pass 2: count edges (trunks subdivided at every covered
        // point, so collinear elementary segments chain correctly).
        let mut edges = 0usize;
        for seg in &tree.segments {
            match *seg {
                Segment::Trunk { channel, x1, x2 } => {
                    let xs = &by_channel[&channel.index()];
                    let lo = xs.partition_point(|&x| x < x1);
                    let hi = xs.partition_point(|&x| x <= x2);
                    for w in xs[lo..hi].windows(2) {
                        edges += 1;
                        dsu.union(
                            index_of[&(channel.index(), w[0])],
                            index_of[&(channel.index(), w[1])],
                        );
                    }
                }
                Segment::Branch { channel, x, term } => {
                    edges += 1;
                    dsu.union(
                        index_of[&(channel.index(), x)],
                        tapped[&(term.index() as u32)],
                    );
                }
                Segment::Feed { row, x } => {
                    edges += 1;
                    dsu.union(
                        index_of[&(row as usize, x)],
                        index_of[&(row as usize + 1, x)],
                    );
                }
            }
        }
        checks += 2;
        if edges + 1 != num_nodes {
            failure = fail(
                inv,
                Some(net),
                None,
                None,
                format!(
                    "{edges} edges over {num_nodes} nodes — not a tree (want edges = nodes - 1)"
                ),
            );
            break;
        }
        let root = dsu.find(0);
        if (1..num_nodes).any(|n| dsu.find(n) != root) {
            failure = fail(
                inv,
                Some(net),
                None,
                None,
                format!("segments split into multiple components over {num_nodes} nodes"),
            );
            break;
        }
    }
    AuditVerdict {
        invariant: inv,
        checks,
        failure,
    }
}

/// Naive density sweep: per channel, a fresh diff array over every
/// trunk span of every tree, compared against `channel_tracks`.
fn density_oracle(placement: &Placement, result: &RoutingResult) -> AuditVerdict {
    let inv = Invariant::Density;
    let num_channels = placement.num_channels();
    let width = placement.width_pitches().max(1) as usize;
    let mut checks = 1u64;
    if result.channel_tracks.len() != num_channels {
        return AuditVerdict {
            invariant: inv,
            checks,
            failure: fail(
                inv,
                None,
                None,
                None,
                format!(
                    "channel_tracks has {} entries for {num_channels} channels",
                    result.channel_tracks.len()
                ),
            ),
        };
    }
    // Spans are half-open [x1, x2) over pitch columns, clamped to the
    // chip — the same geometry the incremental map integrates.
    let mut diff = vec![vec![0i64; width + 1]; num_channels];
    for tree in &result.trees {
        let w = tree.width_pitches as i64;
        for seg in &tree.segments {
            if let Segment::Trunk { channel, x1, x2 } = *seg {
                let a = x1.clamp(0, width as i32) as usize;
                let b = x2.clamp(0, width as i32) as usize;
                if a < b {
                    diff[channel.index()][a] += w;
                    diff[channel.index()][b] -= w;
                }
            }
        }
    }
    let mut failure = None;
    for (c, d) in diff.iter().enumerate() {
        checks += 1;
        let mut run = 0i64;
        let mut max = 0i64;
        for &v in d {
            run += v;
            max = max.max(run);
        }
        let got = result.channel_tracks[c] as i64;
        if got != max {
            failure = fail(
                inv,
                None,
                Some(ChannelId::new(c)),
                None,
                format!("channel_tracks[{c}] = {got}, from-scratch sweep = {max}"),
            );
            break;
        }
    }
    AuditVerdict {
        invariant: inv,
        checks,
        failure,
    }
}

/// Fresh timing analysis over the reported lengths, compared against
/// the timing report and the violation report's quoted arrivals; plus
/// length consistency between `net_lengths_um` and the tree geometry.
fn timing_oracle(
    circuit: &Circuit,
    constraints: &[PathConstraint],
    config: &RouterConfig,
    result: &RoutingResult,
) -> AuditVerdict {
    let inv = Invariant::Timing;
    let mut checks = 0u64;
    for (i, tree) in result.trees.iter().enumerate() {
        checks += 1;
        let reported = result.net_lengths_um.get(i).copied().unwrap_or(f64::NAN);
        let d = (reported - tree.length_um).abs();
        if d > EPS || d.is_nan() {
            return AuditVerdict {
                invariant: inv,
                checks,
                failure: fail(
                    inv,
                    Some(NetId::new(i)),
                    None,
                    None,
                    format!(
                        "net_lengths_um[{i}] = {reported} um but tree geometry sums to {} um",
                        tree.length_um
                    ),
                ),
            };
        }
    }
    checks += 1;
    let sum: f64 = result.net_lengths_um.iter().sum();
    let d = (sum - result.total_length_um).abs();
    if d > EPS * (result.net_lengths_um.len() + 1) as f64 || d.is_nan() {
        return AuditVerdict {
            invariant: inv,
            checks,
            failure: fail(
                inv,
                None,
                None,
                None,
                format!(
                    "total_length_um = {} but per-net lengths sum to {sum}",
                    result.total_length_um
                ),
            ),
        };
    }
    let fresh = match TimingReport::evaluate(
        circuit,
        constraints,
        config.delay_model,
        config.wire,
        &result.net_lengths_um,
    ) {
        Ok(r) => r,
        Err(e) => {
            return AuditVerdict {
                invariant: inv,
                checks,
                failure: fail(
                    inv,
                    None,
                    None,
                    None,
                    format!("fresh timing analysis failed: {e:?}"),
                ),
            };
        }
    };
    checks += 1;
    if fresh.constraints.len() != result.timing.constraints.len() {
        return AuditVerdict {
            invariant: inv,
            checks,
            failure: fail(
                inv,
                None,
                None,
                None,
                format!(
                    "timing report covers {} constraints, fresh analysis {}",
                    result.timing.constraints.len(),
                    fresh.constraints.len()
                ),
            ),
        };
    }
    for (got, want) in result.timing.constraints.iter().zip(&fresh.constraints) {
        checks += 1;
        let ok = got.name == want.name
            && (got.limit_ps - want.limit_ps).abs() <= EPS
            && (got.arrival_ps - want.arrival_ps).abs() <= EPS
            && (got.margin_ps - want.margin_ps).abs() <= EPS;
        if !ok {
            return AuditVerdict {
                invariant: inv,
                checks,
                failure: fail(
                    inv,
                    None,
                    None,
                    Some(want.name.clone()),
                    format!(
                        "timing report says arrival {:.3} ps / margin {:.3} ps, \
                         fresh analysis {:.3} ps / {:.3} ps",
                        got.arrival_ps, got.margin_ps, want.arrival_ps, want.margin_ps
                    ),
                ),
            };
        }
    }
    // The violation report quotes arrivals from the engine's memoized
    // analyzer — the surface where a skewed length memo shows up.
    if let Some(report) = &result.violations {
        for entry in &report.entries {
            checks += 1;
            let Some(want) = fresh.constraints.iter().find(|c| c.name == entry.name) else {
                return AuditVerdict {
                    invariant: inv,
                    checks,
                    failure: fail(
                        inv,
                        None,
                        None,
                        Some(entry.name.clone()),
                        "violation entry names a constraint absent from the fresh analysis"
                            .to_string(),
                    ),
                };
            };
            let ok = (entry.arrival_ps - want.arrival_ps).abs() <= EPS
                && (entry.violation_ps - (-want.margin_ps)).abs() <= EPS;
            if !ok {
                return AuditVerdict {
                    invariant: inv,
                    checks,
                    failure: fail(
                        inv,
                        None,
                        None,
                        Some(entry.name.clone()),
                        format!(
                            "violation entry quotes arrival {:.3} ps / violation {:.3} ps, \
                             fresh analysis {:.3} ps / {:.3} ps",
                            entry.arrival_ps, entry.violation_ps, want.arrival_ps, -want.margin_ps
                        ),
                    ),
                };
            }
        }
    }
    AuditVerdict {
        invariant: inv,
        checks,
        failure: None,
    }
}

/// Completeness of the violation report: every freshly violated
/// constraint appears, no satisfied constraint does, and an
/// unconstrained route carries no report at all.
fn constraints_oracle(
    circuit: &Circuit,
    constraints: &[PathConstraint],
    config: &RouterConfig,
    result: &RoutingResult,
) -> AuditVerdict {
    let inv = Invariant::Constraints;
    let mut checks = 1u64;
    if !config.use_constraints {
        // Pure-area mode never emits a violation report.
        let failure = if result.violations.is_some() {
            fail(
                inv,
                None,
                None,
                None,
                "unconstrained route carries a violation report".to_string(),
            )
        } else {
            None
        };
        return AuditVerdict {
            invariant: inv,
            checks,
            failure,
        };
    }
    let fresh = match TimingReport::evaluate(
        circuit,
        constraints,
        config.delay_model,
        config.wire,
        &result.net_lengths_um,
    ) {
        Ok(r) => r,
        Err(e) => {
            return AuditVerdict {
                invariant: inv,
                checks,
                failure: fail(
                    inv,
                    None,
                    None,
                    None,
                    format!("fresh timing analysis failed: {e:?}"),
                ),
            };
        }
    };
    let mut failure = None;
    for c in &fresh.constraints {
        checks += 1;
        let reported = result
            .violations
            .as_ref()
            .is_some_and(|r| r.entries.iter().any(|e| e.name == c.name));
        if c.margin_ps < -EPS && !reported {
            failure = fail(
                inv,
                None,
                None,
                Some(c.name.clone()),
                format!(
                    "constraint misses its limit by {:.3} ps but the violation report is silent",
                    -c.margin_ps
                ),
            );
            break;
        }
        if c.margin_ps > EPS && reported {
            failure = fail(
                inv,
                None,
                None,
                Some(c.name.clone()),
                format!(
                    "constraint holds with {:.3} ps margin but is reported violated",
                    c.margin_ps
                ),
            );
            break;
        }
    }
    AuditVerdict {
        invariant: inv,
        checks,
        failure,
    }
}

/// Every `Feed` segment must cross an existing row at a feed-capable
/// column — a slot the §4.3 assignment could actually have granted.
fn feedthrough_oracle(
    circuit: &Circuit,
    placement: &Placement,
    result: &RoutingResult,
) -> AuditVerdict {
    use std::collections::BTreeSet;
    let inv = Invariant::Feedthrough;
    let slots = SlotStore::from_placement(circuit, placement);
    let num_rows = placement.num_rows();
    let mut columns: Vec<BTreeSet<i32>> = vec![BTreeSet::new(); num_rows];
    for (row, cols) in columns.iter_mut().enumerate() {
        for idx in 0..slots.slots_in_row(row) {
            cols.insert(slots.x_of(SlotId {
                row: row as u32,
                idx: idx as u32,
            }));
        }
    }
    let mut checks = 0u64;
    let mut failure = None;
    'nets: for (i, tree) in result.trees.iter().enumerate() {
        for seg in &tree.segments {
            if let Segment::Feed { row, x } = *seg {
                checks += 1;
                let ok = (row as usize) < num_rows && columns[row as usize].contains(&x);
                if !ok {
                    failure = fail(
                        inv,
                        Some(NetId::new(i)),
                        None,
                        None,
                        format!("feed at x={x} of row {row} is not a feed-capable column"),
                    );
                    break 'nets;
                }
            }
        }
    }
    AuditVerdict {
        invariant: inv,
        checks,
        failure,
    }
}

/// Whether two trees are geometrically parallel — the §4.1 lockstep
/// postcondition: same segment sequence with equal kinds, channels,
/// rows and trunk lengths (x positions may be offset by the pair
/// spacing, terminals differ by construction).
fn parallel_trees(a: &bgr_core::NetTree, b: &bgr_core::NetTree) -> bool {
    a.segments.len() == b.segments.len()
        && a.segments
            .iter()
            .zip(&b.segments)
            .all(|(sa, sb)| match (*sa, *sb) {
                (
                    Segment::Trunk {
                        channel: ca,
                        x1: a1,
                        x2: a2,
                    },
                    Segment::Trunk {
                        channel: cb,
                        x1: b1,
                        x2: b2,
                    },
                ) => ca == cb && (a2 - a1) == (b2 - b1),
                (Segment::Branch { channel: ca, .. }, Segment::Branch { channel: cb, .. }) => {
                    ca == cb
                }
                (Segment::Feed { row: ra, .. }, Segment::Feed { row: rb, .. }) => ra == rb,
                _ => false,
            })
}

/// Lockstep accounting: `diff_pairs_locked + diff_pairs_independent`
/// covers every declared pair, and at least `diff_pairs_locked` pairs
/// are geometrically parallel (a tampered lockstep tree breaks this).
fn diff_pair_oracle(circuit: &Circuit, result: &RoutingResult) -> AuditVerdict {
    let inv = Invariant::DiffPair;
    let pairs = circuit.diff_pairs();
    let stats = &result.stats;
    let mut checks = 1u64;
    if stats.diff_pairs_locked + stats.diff_pairs_independent != pairs.len() {
        return AuditVerdict {
            invariant: inv,
            checks,
            failure: fail(
                inv,
                None,
                None,
                None,
                format!(
                    "{} locked + {} independent pairs reported for {} declared",
                    stats.diff_pairs_locked,
                    stats.diff_pairs_independent,
                    pairs.len()
                ),
            ),
        };
    }
    let mut parallel = 0usize;
    let mut first_unparallel: Option<(NetId, NetId)> = None;
    for &(a, b) in pairs {
        checks += 1;
        if parallel_trees(&result.trees[a.index()], &result.trees[b.index()]) {
            parallel += 1;
        } else if first_unparallel.is_none() {
            first_unparallel = Some((a, b));
        }
    }
    checks += 1;
    let failure = if parallel < stats.diff_pairs_locked {
        let culprit = first_unparallel.map(|(a, _)| a);
        fail(
            inv,
            culprit,
            None,
            None,
            format!(
                "{} pairs reported locked but only {parallel} are geometrically parallel",
                stats.diff_pairs_locked
            ),
        )
    } else {
        None
    };
    AuditVerdict {
        invariant: inv,
        checks,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_core::{GlobalRouter, VerifyLevel};

    fn route_tiny() -> (
        Circuit,
        Placement,
        Vec<PathConstraint>,
        RouterConfig,
        RoutingResult,
    ) {
        let params = bgr_gen::GenParams::small(7);
        let design = bgr_gen::generate(&params);
        let placement = bgr_gen::place_design(&design, &params, bgr_gen::PlacementStyle::EvenFeed);
        let config = RouterConfig {
            verify: VerifyLevel::Off,
            ..RouterConfig::default()
        };
        let routed = GlobalRouter::new(config.clone())
            .route(design.circuit, placement, design.constraints.clone())
            .unwrap();
        (
            routed.circuit,
            routed.placement,
            design.constraints,
            config,
            routed.result,
        )
    }

    #[test]
    fn parallel_audit_is_deterministic_and_matches_sequential() {
        let (circuit, placement, cons, config, result) = route_tiny();
        let sequential = audit(&circuit, &placement, &cons, &config, &result);
        for threads in [1, 2, 8] {
            let parallel = audit_parallel(threads, &circuit, &placement, &cons, &config, &result);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_audit_localizes_failures_like_sequential() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        result.channel_tracks[0] += 1;
        let sequential = audit(&circuit, &placement, &cons, &config, &result);
        let parallel = audit_parallel(8, &circuit, &placement, &cons, &config, &result);
        assert_eq!(parallel, sequential);
        assert!(!parallel.is_clean());
        assert!(parallel.verdict(Invariant::Density).failure.is_some());
    }

    #[test]
    fn healthy_route_audits_clean() {
        let (circuit, placement, cons, config, result) = route_tiny();
        let report = audit(&circuit, &placement, &cons, &config, &result);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verdicts.len(), Invariant::ALL.len());
        assert!(report.total_checks() > 0);
        assert!(report.first_failure().is_none());
        let table = report.table();
        for inv in Invariant::ALL {
            assert!(table.contains(inv.label()), "{table}");
        }
    }

    #[test]
    fn display_is_one_stable_line() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        let clean = audit(&circuit, &placement, &cons, &config, &result);
        let line = clean.to_string();
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(
            line,
            format!(
                "audit clean: {} invariants, {} checks",
                Invariant::ALL.len(),
                clean.total_checks()
            )
        );

        result.channel_tracks[0] += 1;
        let failed = audit(&circuit, &placement, &cons, &config, &result);
        let line = failed.to_string();
        assert!(!line.contains('\n'), "{line:?}");
        assert!(line.starts_with("audit FAILED ("), "{line}");
        assert!(
            line.contains(&failed.first_failure().unwrap().to_string()),
            "{line}"
        );
    }

    #[test]
    fn dropped_trunk_segment_breaks_the_forest() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        // Remove the first trunk segment of the first net that has one.
        let (net, pos) = result
            .trees
            .iter()
            .enumerate()
            .find_map(|(i, t)| {
                t.segments
                    .iter()
                    .position(|s| matches!(s, Segment::Trunk { .. }))
                    .map(|p| (i, p))
            })
            .expect("routed instance has a trunk");
        result.trees[net].segments.remove(pos);
        let report = audit(&circuit, &placement, &cons, &config, &result);
        assert!(!report.is_clean());
        let forest = report.verdict(Invariant::Forest);
        let f = forest.failure.as_ref().expect("forest must fail");
        assert_eq!(f.net, Some(NetId::new(net)), "{f}");
    }

    #[test]
    fn inflated_channel_tracks_break_density() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        result.channel_tracks[0] += 1;
        let report = audit(&circuit, &placement, &cons, &config, &result);
        let f = report
            .verdict(Invariant::Density)
            .failure
            .as_ref()
            .expect("density must fail");
        assert_eq!(f.channel, Some(ChannelId::new(0)), "{f}");
        // The forest oracle is independent and still clean.
        assert!(report.verdict(Invariant::Forest).failure.is_none());
    }

    #[test]
    fn skewed_length_report_breaks_timing() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        result.net_lengths_um[0] += 500.0;
        let report = audit(&circuit, &placement, &cons, &config, &result);
        let f = report
            .verdict(Invariant::Timing)
            .failure
            .as_ref()
            .expect("timing must fail");
        assert_eq!(f.net, Some(NetId::new(0)), "{f}");
    }

    #[test]
    fn foreign_feed_column_breaks_feedthrough() {
        let (circuit, placement, cons, config, mut result) = route_tiny();
        result.trees[0]
            .segments
            .push(Segment::Feed { row: 0, x: -7 });
        let report = audit(&circuit, &placement, &cons, &config, &result);
        // Forest fails too (dangling feed), but feedthrough localizes
        // the illegal column independently.
        let f = report
            .verdict(Invariant::Feedthrough)
            .failure
            .as_ref()
            .expect("feedthrough must fail");
        assert_eq!(f.net, Some(NetId::new(0)), "{f}");
    }
}
