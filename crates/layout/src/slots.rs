//! Feedthrough slot bookkeeping.
//!
//! Bipolar standard cells have no internal feedthrough space, so vertical
//! crossings of a cell row must use 1-pitch slots provided by feed cells
//! (§4.3 of the paper). A `w`-pitch net (§4.2) occupies `w` *adjacent*
//! slots. Slots can carry a *width flag*: during the re-assignment pass
//! after feed-cell insertion, a flagged slot is reserved for nets of
//! exactly that width, which is what makes the second assignment always
//! succeed.

use bgr_netlist::{CellId, Circuit, NetId};

use crate::placement::Placement;

/// Identifies one slot: `(row, index-within-row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId {
    /// Row index.
    pub row: u32,
    /// Slot index within the row (slots sorted by x).
    pub idx: u32,
}

/// A run of `len` adjacent slots starting at `start` in `row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRange {
    /// Row index.
    pub row: u32,
    /// First slot index.
    pub start: u32,
    /// Number of slots.
    pub len: u32,
}

impl SlotRange {
    /// Iterates the slot ids of the range.
    pub fn iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        (self.start..self.start + self.len).map(|idx| SlotId { row: self.row, idx })
    }
}

/// Whether width flags restrict slot eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlagPolicy {
    /// First assignment pass: flags ignored.
    #[default]
    Ignore,
    /// Re-assignment after feed-cell insertion: a net of width `w > 1`
    /// may only use slots flagged `w`; a 1-pitch net may use unflagged or
    /// `1`-flagged slots.
    Respect,
}

#[derive(Debug, Clone, Default)]
struct RowSlots {
    /// Sorted x positions, one per slot.
    xs: Vec<i32>,
    occ: Vec<Option<NetId>>,
    flag: Vec<Option<u32>>,
    /// Feed cell providing the slot, if any (slots survive feed-cell
    /// insertion by cell identity even though x positions shift).
    owner: Vec<Option<CellId>>,
}

/// All feedthrough slots of a placement, with occupancy and width flags.
#[derive(Debug, Clone, Default)]
pub struct SlotStore {
    rows: Vec<RowSlots>,
}

impl SlotStore {
    /// Creates an empty store with `num_rows` rows.
    pub fn new(num_rows: usize) -> Self {
        Self {
            rows: vec![RowSlots::default(); num_rows],
        }
    }

    /// Builds the store from the feed cells of a placement: a feed cell of
    /// kind width `k` with `feed_slots() = k` at x contributes slots
    /// `x, x+1, …, x+k-1`.
    pub fn from_placement(circuit: &Circuit, placement: &Placement) -> Self {
        let mut store = Self::new(placement.num_rows());
        for (row_idx, row) in placement.rows().iter().enumerate() {
            for pc in row.cells() {
                let kind = circuit.library().kind(circuit.cell(pc.cell).kind());
                for s in 0..kind.feed_slots() {
                    store.add_owned_slot(row_idx, pc.x + s as i32, None, Some(pc.cell));
                }
            }
        }
        store
    }

    /// Adds a slot at x in the given row (keeps xs sorted).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn add_slot(&mut self, row: usize, x: i32, flag: Option<u32>) {
        self.add_owned_slot(row, x, flag, None);
    }

    /// Adds a slot with a known owning feed cell.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn add_owned_slot(&mut self, row: usize, x: i32, flag: Option<u32>, owner: Option<CellId>) {
        let r = &mut self.rows[row];
        let pos = r.xs.partition_point(|&v| v <= x);
        r.xs.insert(pos, x);
        r.occ.insert(pos, None);
        r.flag.insert(pos, flag);
        r.owner.insert(pos, owner);
    }

    /// The feed cell providing a slot, if known.
    pub fn owner(&self, slot: SlotId) -> Option<CellId> {
        self.rows[slot.row as usize].owner[slot.idx as usize]
    }

    /// Finds the slot provided by `cell` at relative offset `offset`
    /// within that cell (used to re-locate assignments after feed-cell
    /// insertion shifts x positions).
    pub fn slot_of_cell(
        &self,
        row: usize,
        cell: CellId,
        offset: i32,
        cell_x: i32,
    ) -> Option<SlotId> {
        let r = &self.rows[row];
        (0..r.xs.len())
            .find(|&i| r.owner[i] == Some(cell) && r.xs[i] == cell_x + offset)
            .map(|i| SlotId {
                row: row as u32,
                idx: i as u32,
            })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of slots in a row.
    pub fn slots_in_row(&self, row: usize) -> usize {
        self.rows[row].xs.len()
    }

    /// The x position of a slot.
    pub fn x_of(&self, slot: SlotId) -> i32 {
        self.rows[slot.row as usize].xs[slot.idx as usize]
    }

    /// The net occupying a slot, if any.
    pub fn occupant(&self, slot: SlotId) -> Option<NetId> {
        self.rows[slot.row as usize].occ[slot.idx as usize]
    }

    /// The width flag of a slot.
    pub fn flag(&self, slot: SlotId) -> Option<u32> {
        self.rows[slot.row as usize].flag[slot.idx as usize]
    }

    /// Sets the width flag on every slot of a range.
    pub fn set_flag(&mut self, range: SlotRange, width: u32) {
        for slot in range.iter().collect::<Vec<_>>() {
            self.rows[slot.row as usize].flag[slot.idx as usize] = Some(width);
        }
    }

    fn window_ok(&self, row: usize, start: usize, width: usize, policy: FlagPolicy) -> bool {
        let r = &self.rows[row];
        if start + width > r.xs.len() {
            return false;
        }
        for k in 0..width {
            if r.occ[start + k].is_some() {
                return false;
            }
            if k > 0 && r.xs[start + k] != r.xs[start + k - 1] + 1 {
                return false;
            }
            if policy == FlagPolicy::Respect {
                let flag = r.flag[start + k];
                if width > 1 {
                    // Wide nets only use windows reserved for their width.
                    if flag != Some(width as u32) {
                        return false;
                    }
                } else if flag.map(|f| f > 1).unwrap_or(false) {
                    // 1-pitch nets must not consume wide-reserved slots.
                    return false;
                }
            }
        }
        true
    }

    /// Finds `width` adjacent free slots in `row` whose center is nearest
    /// to `target_x` (the paper searches outward from the mean of the
    /// net's terminal x coordinates, §3.1).
    ///
    /// Returns `None` when no eligible window exists.
    pub fn find_adjacent_free(
        &self,
        row: usize,
        width: u32,
        target_x: i32,
        policy: FlagPolicy,
    ) -> Option<SlotRange> {
        let w = width as usize;
        let r = &self.rows[row];
        let mut best: Option<(i64, SlotRange)> = None;
        for start in 0..r.xs.len() {
            if !self.window_ok(row, start, w, policy) {
                continue;
            }
            let center2 = r.xs[start] as i64 + r.xs[start + w - 1] as i64;
            let dist = (center2 - 2 * target_x as i64).abs();
            if best.map(|(d, _)| dist < d).unwrap_or(true) {
                best = Some((
                    dist,
                    SlotRange {
                        row: row as u32,
                        start: start as u32,
                        len: width,
                    },
                ));
            }
        }
        best.map(|(_, r)| r)
    }

    /// Like [`SlotStore::find_adjacent_free`], but requires the window to
    /// start exactly at `x` (used to align multi-row assignments on one
    /// column).
    pub fn find_at_x(
        &self,
        row: usize,
        width: u32,
        x: i32,
        policy: FlagPolicy,
    ) -> Option<SlotRange> {
        let r = &self.rows[row];
        let start = r.xs.partition_point(|&v| v < x);
        if start < r.xs.len()
            && r.xs[start] == x
            && self.window_ok(row, start, width as usize, policy)
        {
            Some(SlotRange {
                row: row as u32,
                start: start as u32,
                len: width,
            })
        } else {
            None
        }
    }

    /// Marks a range as occupied by `net`.
    ///
    /// # Panics
    ///
    /// Panics if any slot of the range is already occupied.
    pub fn occupy(&mut self, range: SlotRange, net: NetId) {
        for slot in range.iter().collect::<Vec<_>>() {
            let occ = &mut self.rows[slot.row as usize].occ[slot.idx as usize];
            assert!(occ.is_none(), "slot {slot:?} already occupied");
            *occ = Some(net);
        }
    }

    /// Releases every slot occupied by `net`.
    pub fn release_net(&mut self, net: NetId) {
        for row in &mut self.rows {
            for occ in &mut row.occ {
                if *occ == Some(net) {
                    *occ = None;
                }
            }
        }
    }

    /// Releases all occupancy (flags are kept).
    pub fn release_all(&mut self) {
        for row in &mut self.rows {
            row.occ.iter_mut().for_each(|o| *o = None);
        }
    }

    /// Number of free slots in a row.
    pub fn free_in_row(&self, row: usize) -> usize {
        self.rows[row].occ.iter().filter(|o| o.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(xs: &[i32]) -> SlotStore {
        let mut s = SlotStore::new(1);
        for &x in xs {
            s.add_slot(0, x, None);
        }
        s
    }

    #[test]
    fn finds_nearest_window() {
        let s = store_with(&[0, 1, 2, 10, 11]);
        let r = s.find_adjacent_free(0, 1, 9, FlagPolicy::Ignore).unwrap();
        assert_eq!(
            s.x_of(SlotId {
                row: 0,
                idx: r.start
            }),
            10
        );
        let r = s.find_adjacent_free(0, 2, 0, FlagPolicy::Ignore).unwrap();
        assert_eq!(r.start, 0);
        assert_eq!(r.len, 2);
    }

    #[test]
    fn adjacency_requires_consecutive_x() {
        let s = store_with(&[0, 2, 3]);
        // Window [0,2] is not adjacent; [2,3] is.
        let r = s.find_adjacent_free(0, 2, 0, FlagPolicy::Ignore).unwrap();
        assert_eq!(
            s.x_of(SlotId {
                row: 0,
                idx: r.start
            }),
            2
        );
        // No 3-wide adjacent run exists.
        assert!(s.find_adjacent_free(0, 3, 0, FlagPolicy::Ignore).is_none());
    }

    #[test]
    fn occupancy_blocks_and_releases() {
        let mut s = store_with(&[0, 1]);
        let r = s.find_adjacent_free(0, 2, 0, FlagPolicy::Ignore).unwrap();
        s.occupy(r, NetId::new(7));
        assert!(s.find_adjacent_free(0, 1, 0, FlagPolicy::Ignore).is_none());
        assert_eq!(s.occupant(SlotId { row: 0, idx: 0 }), Some(NetId::new(7)));
        s.release_net(NetId::new(7));
        assert_eq!(s.free_in_row(0), 2);
    }

    #[test]
    fn flag_policy_respects_widths() {
        let mut s = store_with(&[0, 1, 2, 3]);
        s.set_flag(
            SlotRange {
                row: 0,
                start: 0,
                len: 2,
            },
            2,
        );
        // Under Respect, a 1-pitch net must avoid the 2-flagged slots.
        let r = s.find_adjacent_free(0, 1, 0, FlagPolicy::Respect).unwrap();
        assert_eq!(
            s.x_of(SlotId {
                row: 0,
                idx: r.start
            }),
            2
        );
        // A 2-pitch net must use exactly the 2-flagged window.
        let r = s.find_adjacent_free(0, 2, 3, FlagPolicy::Respect).unwrap();
        assert_eq!(r.start, 0);
        // Under Ignore, the 1-pitch net may take slot 0.
        let r = s.find_adjacent_free(0, 1, 0, FlagPolicy::Ignore).unwrap();
        assert_eq!(r.start, 0);
    }

    #[test]
    fn find_at_x_exact() {
        let s = store_with(&[4, 5, 6]);
        assert!(s.find_at_x(0, 2, 5, FlagPolicy::Ignore).is_some());
        assert!(s.find_at_x(0, 2, 6, FlagPolicy::Ignore).is_none());
        assert!(s.find_at_x(0, 1, 3, FlagPolicy::Ignore).is_none());
    }

    #[test]
    fn from_placement_collects_feed_cells() {
        use bgr_netlist::{CellLibrary, CircuitBuilder};
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed2 = lib.kind_by_name("FEED2").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let u = cb.add_cell("u", inv);
        let f = cb.add_cell("f", feed2);
        let y = cb.add_output_pad("y");
        cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
            .unwrap();
        cb.add_net("n2", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = crate::PlacementBuilder::new(crate::Geometry::default(), 1);
        pb.append_with_width(0, u, 3);
        pb.append_with_width(0, f, 2);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 4);
        let placement = pb.finish(&circuit).unwrap();
        let store = SlotStore::from_placement(&circuit, &placement);
        assert_eq!(store.slots_in_row(0), 2);
        assert_eq!(store.x_of(SlotId { row: 0, idx: 0 }), 3);
        assert_eq!(store.x_of(SlotId { row: 0, idx: 1 }), 4);
    }
}
