//! Error type for placement construction and validation.

use bgr_netlist::{CellId, PadId};

/// Errors produced while building or validating a [`crate::Placement`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// Two cells overlap in a row.
    Overlap(CellId, CellId),
    /// A circuit cell was never placed.
    Unplaced(CellId),
    /// A cell was placed twice.
    PlacedTwice(CellId),
    /// A row index out of range was referenced.
    BadRow(usize),
    /// A pad of the circuit was never positioned on the boundary.
    UnplacedPad(PadId),
    /// A pad was positioned twice.
    PadPlacedTwice(PadId),
    /// A cell has a negative x position.
    NegativeX(CellId),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overlap(a, b) => write!(f, "cells {a} and {b} overlap in their row"),
            Self::Unplaced(c) => write!(f, "cell {c} was never placed"),
            Self::PlacedTwice(c) => write!(f, "cell {c} placed more than once"),
            Self::BadRow(r) => write!(f, "row index {r} out of range"),
            Self::UnplacedPad(p) => write!(f, "pad {p} was never positioned"),
            Self::PadPlacedTwice(p) => write!(f, "pad {p} positioned more than once"),
            Self::NegativeX(c) => write!(f, "cell {c} has a negative x position"),
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<LayoutError>();
        assert!(LayoutError::BadRow(7).to_string().contains('7'));
    }
}
