//! Physical geometry parameters.

/// Chip geometry in micrometers, with the wiring *pitch* as the horizontal
/// unit used everywhere else in the workspace.
///
/// The default values follow early-1990s bipolar standard-cell processes:
/// wide, low-resistance wires on an 8 µm pitch and tall ECL cell rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Horizontal wiring pitch in µm (one feedthrough slot = one pitch).
    pub pitch_um: f64,
    /// Cell row height in µm.
    pub row_height_um: f64,
    /// Vertical distance between adjacent channel tracks in µm.
    pub track_pitch_um: f64,
}

impl Default for Geometry {
    fn default() -> Self {
        Self {
            pitch_um: 8.0,
            row_height_um: 160.0,
            track_pitch_um: 8.0,
        }
    }
}

impl Geometry {
    /// Converts a horizontal distance in pitches to µm.
    #[inline]
    pub fn pitches_to_um(&self, pitches: f64) -> f64 {
        pitches * self.pitch_um
    }

    /// Height in µm of a channel routed with `tracks` tracks.
    #[inline]
    pub fn channel_height_um(&self, tracks: usize) -> f64 {
        tracks as f64 * self.track_pitch_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let g = Geometry::default();
        assert!(g.pitch_um > 0.0 && g.row_height_um > 0.0 && g.track_pitch_um > 0.0);
    }

    #[test]
    fn conversions() {
        let g = Geometry {
            pitch_um: 10.0,
            row_height_um: 100.0,
            track_pitch_um: 5.0,
        };
        assert_eq!(g.pitches_to_um(3.0), 30.0);
        assert_eq!(g.channel_height_um(4), 20.0);
    }
}
