//! Cell rows, channels, pad positions and terminal localization.

use bgr_netlist::{define_id, AccessSide, CellId, Circuit, PadId, TermId, TermOwner};

use crate::error::LayoutError;
use crate::geometry::Geometry;

define_id!(
    /// Index of a routing channel.
    ///
    /// Channel `i` lies **below** cell row `i`; channel `num_rows` lies
    /// above the last row. A placement with `r` rows therefore has `r + 1`
    /// channels, and the chip's bottom/top boundaries (where external pads
    /// sit) are channels `0` and `r`.
    ChannelId
);

/// A cell with its x position (left edge) and width in pitch units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedCell {
    /// The placed cell instance.
    pub cell: CellId,
    /// Left edge in pitches.
    pub x: i32,
    /// Width in pitches.
    pub width: u32,
}

/// One horizontal cell row, cells ordered by x.
#[derive(Debug, Clone, Default)]
pub struct Row {
    cells: Vec<PlacedCell>,
}

impl Row {
    /// Cells in left-to-right order.
    pub fn cells(&self) -> &[PlacedCell] {
        &self.cells
    }
}

/// Which chip boundary a pad sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadSide {
    /// Below row 0 (channel 0).
    Bottom,
    /// Above the last row (channel `num_rows`).
    Top,
}

/// Location of a placed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLoc {
    /// Row index.
    pub row: usize,
    /// Left edge in pitches.
    pub x: i32,
}

/// Where a terminal physically sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermSite {
    /// A cell pin in `row`, reachable from the given side(s).
    Cell {
        /// Row of the owning cell.
        row: usize,
        /// Channel access of the pin.
        access: AccessSide,
    },
    /// An external pad on the given boundary.
    Pad(PadSide),
}

/// Physical position of a terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermPos {
    /// Horizontal position in pitches.
    pub x: i32,
    /// Row/boundary the terminal belongs to.
    pub site: TermSite,
}

impl TermPos {
    /// Channels from which this terminal can be tapped.
    pub fn channels(&self, num_rows: usize) -> Vec<ChannelId> {
        match self.site {
            TermSite::Cell { row, access } => match access {
                AccessSide::Top => vec![ChannelId::new(row + 1)],
                AccessSide::Bottom => vec![ChannelId::new(row)],
                AccessSide::Both => vec![ChannelId::new(row), ChannelId::new(row + 1)],
            },
            TermSite::Pad(PadSide::Bottom) => vec![ChannelId::new(0)],
            TermSite::Pad(PadSide::Top) => vec![ChannelId::new(num_rows)],
        }
    }
}

/// A validated standard-cell placement.
#[derive(Debug, Clone)]
pub struct Placement {
    geometry: Geometry,
    rows: Vec<Row>,
    /// Per-cell location, indexed by `CellId`.
    locs: Vec<Option<CellLoc>>,
    /// Per-pad boundary position, indexed by `PadId`.
    pads: Vec<Option<(PadSide, i32)>>,
    width_pitches: i32,
}

impl Placement {
    /// The geometry the placement was built with.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Number of cell rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of channels (`num_rows + 1`).
    pub fn num_channels(&self) -> usize {
        self.rows.len() + 1
    }

    /// The rows in bottom-to-top order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Chip width in pitches.
    pub fn width_pitches(&self) -> i32 {
        self.width_pitches
    }

    /// Location of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not placed (placements are validated, so this
    /// only happens for cells added to the circuit afterwards).
    pub fn cell_loc(&self, cell: CellId) -> CellLoc {
        self.locs[cell.index()].expect("cell not placed")
    }

    /// Boundary position of a pad.
    ///
    /// # Panics
    ///
    /// Panics if the pad is not positioned.
    pub fn pad_loc(&self, pad: PadId) -> (PadSide, i32) {
        self.pads[pad.index()].expect("pad not placed")
    }

    /// Channel below row `row`.
    pub fn channel_below(&self, row: usize) -> ChannelId {
        ChannelId::new(row)
    }

    /// Channel above row `row`.
    pub fn channel_above(&self, row: usize) -> ChannelId {
        ChannelId::new(row + 1)
    }

    /// Physical position of a terminal.
    pub fn term_pos(&self, circuit: &Circuit, term: TermId) -> TermPos {
        match circuit.term(term).owner() {
            TermOwner::Cell { cell, pin } => {
                let loc = self.cell_loc(cell);
                let kind = circuit.library().kind(circuit.cell(cell).kind());
                let spec = &kind.terms()[pin];
                TermPos {
                    x: loc.x + spec.offset_pitches as i32,
                    site: TermSite::Cell {
                        row: loc.row,
                        access: spec.access,
                    },
                }
            }
            TermOwner::Pad(pad) => {
                let (side, x) = self.pad_loc(pad);
                TermPos {
                    x,
                    site: TermSite::Pad(side),
                }
            }
        }
    }

    /// Inserts a (new) cell into `row` before gap index `gap`
    /// (`0..=row.cells.len()`), shifting every cell at or after the gap
    /// right by the cell's width. Used by feed-cell insertion (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `gap` is out of range.
    pub fn insert_cell_at_gap(&mut self, row: usize, gap: usize, cell: CellId, width: u32) {
        assert!(row < self.rows.len(), "row out of range");
        if self.locs.len() <= cell.index() {
            self.locs.resize(cell.index() + 1, None);
        }
        let row_end = self.row_end(row);
        let cells = &mut self.rows[row].cells;
        assert!(gap <= cells.len(), "gap out of range");
        let x = if gap == 0 {
            0
        } else {
            // Start at the left edge of the displaced cell (or row end).
            cells.get(gap).map(|c| c.x).unwrap_or(row_end)
        };
        for moved in &mut cells[gap..] {
            moved.x += width as i32;
            self.locs[moved.cell.index()] = Some(CellLoc { row, x: moved.x });
        }
        self.rows[row]
            .cells
            .insert(gap, PlacedCell { cell, x, width });
        self.locs[cell.index()] = Some(CellLoc { row, x });
        self.recompute_width();
    }

    /// Right edge (in pitches) of the rightmost cell in `row`, or 0 for an
    /// empty row.
    pub fn row_end(&self, row: usize) -> i32 {
        self.rows[row]
            .cells
            .last()
            .map(|c| c.x + c.width as i32)
            .unwrap_or(0)
    }

    /// Inserts a (new) cell at an explicit x in `row`, shifting every cell
    /// at or right of `x` further right by `width`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn insert_cell_at_x(&mut self, row: usize, cell: CellId, x: i32, width: u32) {
        assert!(row < self.rows.len(), "row out of range");
        if self.locs.len() <= cell.index() {
            self.locs.resize(cell.index() + 1, None);
        }
        let cells = &mut self.rows[row].cells;
        let gap = cells.partition_point(|c| c.x < x);
        for moved in &mut cells[gap..] {
            moved.x += width as i32;
            self.locs[moved.cell.index()] = Some(CellLoc { row, x: moved.x });
        }
        self.rows[row]
            .cells
            .insert(gap, PlacedCell { cell, x, width });
        self.locs[cell.index()] = Some(CellLoc { row, x });
        self.recompute_width();
    }

    /// Recomputes the chip width after insertions.
    pub fn recompute_width(&mut self) {
        let cell_max = self
            .rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .map(|c| c.x + c.width as i32)
            .max()
            .unwrap_or(0);
        let pad_max = self
            .pads
            .iter()
            .flatten()
            .map(|&(_, x)| x + 1)
            .max()
            .unwrap_or(0);
        self.width_pitches = self.width_pitches.max(cell_max).max(pad_max);
    }

    /// Widens the chip by `extra` pitches (feed-cell insertion widens every
    /// row by the same amount, per §4.3).
    pub fn widen(&mut self, extra: i32) {
        self.width_pitches += extra;
    }

    /// Chip core area in mm² given per-channel track counts.
    ///
    /// Area = width × (Σ row heights + Σ channel heights), the measure the
    /// paper reports in Table 2.
    pub fn area_mm2(&self, channel_tracks: &[usize]) -> f64 {
        assert_eq!(
            channel_tracks.len(),
            self.num_channels(),
            "one track count per channel"
        );
        let width_um = self.geometry.pitches_to_um(self.width_pitches as f64);
        let rows_um = self.rows.len() as f64 * self.geometry.row_height_um;
        let channels_um: f64 = channel_tracks
            .iter()
            .map(|&t| self.geometry.channel_height_um(t))
            .sum();
        width_um * (rows_um + channels_um) / 1.0e6
    }

    /// Validates the placement against a circuit: every cell placed once,
    /// no overlaps, non-negative coordinates, every pad positioned.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, circuit: &Circuit) -> Result<(), LayoutError> {
        for id in circuit.cell_ids() {
            if self.locs.get(id.index()).copied().flatten().is_none() {
                return Err(LayoutError::Unplaced(id));
            }
        }
        for (i, pad) in self.pads.iter().enumerate() {
            if pad.is_none() && i < circuit.pads().len() {
                return Err(LayoutError::UnplacedPad(PadId::new(i)));
            }
        }
        if self.pads.len() < circuit.pads().len() {
            return Err(LayoutError::UnplacedPad(PadId::new(self.pads.len())));
        }
        for row in &self.rows {
            let mut prev: Option<(CellId, i32)> = None;
            for pc in &row.cells {
                if pc.x < 0 {
                    return Err(LayoutError::NegativeX(pc.cell));
                }
                let width = circuit
                    .library()
                    .kind(circuit.cell(pc.cell).kind())
                    .width_pitches() as i32;
                if let Some((prev_cell, prev_end)) = prev {
                    if pc.x < prev_end {
                        return Err(LayoutError::Overlap(prev_cell, pc.cell));
                    }
                }
                prev = Some((pc.cell, pc.x + width));
            }
        }
        Ok(())
    }
}

/// Builder for [`Placement`].
#[derive(Debug, Clone)]
pub struct PlacementBuilder {
    geometry: Geometry,
    rows: Vec<Row>,
    cursors: Vec<i32>,
    locs: Vec<Option<CellLoc>>,
    pads: Vec<Option<(PadSide, i32)>>,
}

impl PlacementBuilder {
    /// Starts a placement with `num_rows` empty rows.
    pub fn new(geometry: Geometry, num_rows: usize) -> Self {
        Self {
            geometry,
            rows: vec![Row::default(); num_rows],
            cursors: vec![0; num_rows],
            locs: Vec::new(),
            pads: Vec::new(),
        }
    }

    fn record(&mut self, cell: CellId, loc: CellLoc) -> Result<(), LayoutError> {
        if self.locs.len() <= cell.index() {
            self.locs.resize(cell.index() + 1, None);
        }
        if self.locs[cell.index()].is_some() {
            return Err(LayoutError::PlacedTwice(cell));
        }
        self.locs[cell.index()] = Some(loc);
        Ok(())
    }

    /// Appends a cell at the current row cursor; the cursor advances by the
    /// cell width at [`PlacementBuilder::finish`] time, so use
    /// [`PlacementBuilder::append_with_width`] when interleaving appends
    /// and explicit placements.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn append(&mut self, row: usize, cell: CellId) -> i32 {
        // Without the circuit we cannot know the cell width; default to
        // advancing by a conservative 1 pitch. Generators use
        // `append_with_width`.
        self.append_with_width(row, cell, 1)
    }

    /// Appends a cell of known width at the row cursor.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or the cell was placed twice
    /// (placement generators control both, so this is a programming error).
    pub fn append_with_width(&mut self, row: usize, cell: CellId, width: u32) -> i32 {
        assert!(row < self.rows.len(), "row {row} out of range");
        let x = self.cursors[row];
        self.record(cell, CellLoc { row, x })
            .unwrap_or_else(|e| panic!("{e}"));
        self.rows[row].cells.push(PlacedCell { cell, x, width });
        self.cursors[row] += width as i32;
        x
    }

    /// Places a cell of width `width` at an explicit x.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadRow`] or [`LayoutError::PlacedTwice`].
    pub fn place_at(
        &mut self,
        row: usize,
        cell: CellId,
        x: i32,
        width: u32,
    ) -> Result<(), LayoutError> {
        if row >= self.rows.len() {
            return Err(LayoutError::BadRow(row));
        }
        self.record(cell, CellLoc { row, x })?;
        let cells = &mut self.rows[row].cells;
        let pos = cells.partition_point(|c| c.x <= x);
        cells.insert(pos, PlacedCell { cell, x, width });
        self.cursors[row] = self.cursors[row].max(x + width as i32);
        Ok(())
    }

    /// Positions a pad on the bottom boundary.
    pub fn place_pad_bottom(&mut self, pad: PadId, x: i32) {
        self.set_pad(pad, PadSide::Bottom, x);
    }

    /// Positions a pad on the top boundary.
    pub fn place_pad_top(&mut self, pad: PadId, x: i32) {
        self.set_pad(pad, PadSide::Top, x);
    }

    fn set_pad(&mut self, pad: PadId, side: PadSide, x: i32) {
        if self.pads.len() <= pad.index() {
            self.pads.resize(pad.index() + 1, None);
        }
        self.pads[pad.index()] = Some((side, x));
    }

    /// Finishes and validates the placement against the circuit.
    ///
    /// # Errors
    ///
    /// Propagates any invariant violation from [`Placement::validate`].
    pub fn finish(self, circuit: &Circuit) -> Result<Placement, LayoutError> {
        let mut width = 0;
        for row in &self.rows {
            for pc in &row.cells {
                width = width.max(pc.x + pc.width as i32);
            }
        }
        for &(_, x) in self.pads.iter().flatten() {
            width = width.max(x + 1);
        }
        let placement = Placement {
            geometry: self.geometry,
            rows: self.rows,
            locs: self.locs,
            pads: self.pads,
            width_pitches: width,
        };
        placement.validate(circuit)?;
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    fn small_circuit() -> (bgr_netlist::Circuit, Vec<CellId>, Vec<PadId>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let cells: Vec<CellId> = (0..4).map(|i| cb.add_cell(format!("u{i}"), inv)).collect();
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(cells[0], "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(cells[0], "Y").unwrap(),
            [
                cb.cell_term(cells[1], "A").unwrap(),
                cb.cell_term(cells[2], "A").unwrap(),
            ],
        )
        .unwrap();
        cb.add_net(
            "n2",
            cb.cell_term(cells[1], "Y").unwrap(),
            [cb.cell_term(cells[3], "A").unwrap()],
        )
        .unwrap();
        cb.add_net("n3", cb.cell_term(cells[3], "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        // u2/Y left dangling intentionally: unconnected outputs are legal.
        let circuit = cb.finish().unwrap();
        (circuit, cells, vec![a, y])
    }

    fn placed() -> (bgr_netlist::Circuit, Placement, Vec<CellId>) {
        let (circuit, cells, pads) = small_circuit();
        let mut pb = PlacementBuilder::new(Geometry::default(), 2);
        pb.append_with_width(0, cells[0], 3);
        pb.append_with_width(0, cells[1], 3);
        pb.append_with_width(1, cells[2], 3);
        pb.append_with_width(1, cells[3], 3);
        pb.place_pad_bottom(pads[0], 0);
        pb.place_pad_top(pads[1], 5);
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, cells)
    }

    #[test]
    fn builder_places_and_validates() {
        let (_, placement, cells) = placed();
        assert_eq!(placement.num_rows(), 2);
        assert_eq!(placement.num_channels(), 3);
        assert_eq!(placement.cell_loc(cells[0]), CellLoc { row: 0, x: 0 });
        assert_eq!(placement.cell_loc(cells[1]), CellLoc { row: 0, x: 3 });
        assert_eq!(placement.width_pitches(), 6);
    }

    #[test]
    fn term_positions_use_pin_offsets() {
        let (circuit, placement, cells) = placed();
        // INV output pin "Y" has offset 2; u1 is at x=3 in row 0.
        let y_term = circuit.cell(cells[1]).terms()[1];
        let pos = placement.term_pos(&circuit, y_term);
        assert_eq!(pos.x, 5);
        assert!(matches!(pos.site, TermSite::Cell { row: 0, .. }));
        // Both-side access yields the two adjacent channels.
        assert_eq!(
            pos.channels(placement.num_rows()),
            vec![ChannelId::new(0), ChannelId::new(1)]
        );
    }

    #[test]
    fn pad_positions() {
        let (circuit, placement, _) = placed();
        let a_term = circuit.pads()[0].term();
        let pos = placement.term_pos(&circuit, a_term);
        assert_eq!(pos.site, TermSite::Pad(PadSide::Bottom));
        assert_eq!(pos.channels(2), vec![ChannelId::new(0)]);
        let y_term = circuit.pads()[1].term();
        let pos = placement.term_pos(&circuit, y_term);
        assert_eq!(pos.channels(2), vec![ChannelId::new(2)]);
    }

    #[test]
    fn detects_overlap() {
        let (circuit, cells, pads) = small_circuit();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.place_at(0, cells[0], 0, 3).unwrap();
        pb.place_at(0, cells[1], 1, 3).unwrap(); // INV is 3 wide: overlap
        pb.place_at(0, cells[2], 10, 3).unwrap();
        pb.place_at(0, cells[3], 20, 3).unwrap();
        pb.place_pad_bottom(pads[0], 0);
        pb.place_pad_top(pads[1], 5);
        let err = pb.finish(&circuit).unwrap_err();
        assert!(matches!(err, LayoutError::Overlap(..)));
    }

    #[test]
    fn detects_unplaced_cell_and_pad() {
        let (circuit, cells, pads) = small_circuit();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        for &c in &cells[..3] {
            pb.append_with_width(0, c, 3);
        }
        pb.place_pad_bottom(pads[0], 0);
        pb.place_pad_top(pads[1], 5);
        assert!(matches!(
            pb.clone().finish(&circuit).unwrap_err(),
            LayoutError::Unplaced(_)
        ));
        pb.append_with_width(0, cells[3], 3);
        let mut pb2 = pb.clone();
        pb2.pads.pop();
        // Dropping the last pad triggers the unplaced-pad check.
        assert!(matches!(
            pb2.finish(&circuit).unwrap_err(),
            LayoutError::UnplacedPad(_)
        ));
        assert!(pb.finish(&circuit).is_ok());
    }

    #[test]
    fn insert_cell_shifts_right() {
        let (circuit, mut placement, cells) = placed();
        // Simulate a feed cell appended to the circuit's cell list.
        let new_cell = CellId::new(circuit.cells().len());
        placement.insert_cell_at_gap(0, 1, new_cell, 2);
        assert_eq!(placement.cell_loc(new_cell), CellLoc { row: 0, x: 3 });
        assert_eq!(placement.cell_loc(cells[1]), CellLoc { row: 0, x: 5 });
        // Row 1 untouched.
        assert_eq!(placement.cell_loc(cells[2]).x, 0);
    }

    #[test]
    fn area_accounts_rows_and_channels() {
        let (_, placement, _) = placed();
        let g = *placement.geometry();
        let area = placement.area_mm2(&[2, 3, 1]);
        let width_um = g.pitches_to_um(placement.width_pitches() as f64);
        let expect = width_um * (2.0 * g.row_height_um + g.channel_height_um(6)) / 1.0e6;
        assert!((area - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one track count per channel")]
    fn area_requires_matching_channel_count() {
        let (_, placement, _) = placed();
        let _ = placement.area_mm2(&[1, 2]);
    }
}
