//! Placement substrate for the `bgr` global router.
//!
//! Models the physical side of a bipolar standard-cell chip as the router
//! of Harada & Kitazawa (DAC 1994) sees it:
//!
//! * a [`Geometry`] (wiring pitch, row height, track pitch),
//! * a [`Placement`]: horizontal cell rows with x positions in *pitch*
//!   units, external pads on the top/bottom chip boundary, and the derived
//!   channel structure — channel `i` lies **below** row `i`, channel
//!   `num_rows` lies above the last row,
//! * a [`SlotStore`] of feedthrough positions. Bipolar standard cells have
//!   no built-in feedthrough space (§4.3 of the paper), so slots come from
//!   dedicated feed cells; a `w`-pitch net needs `w` *adjacent* slots.
//!
//! # Example
//!
//! ```
//! use bgr_layout::{Geometry, PlacementBuilder};
//! use bgr_netlist::{CellLibrary, CircuitBuilder};
//!
//! let lib = CellLibrary::ecl();
//! let inv = lib.kind_by_name("INV").unwrap();
//! let mut cb = CircuitBuilder::new(lib);
//! let a = cb.add_input_pad("a");
//! let u = cb.add_cell("u", inv);
//! let y = cb.add_output_pad("y");
//! cb.add_net("n1", cb.pad_term(a), [cb.cell_term(u, "A")?])?;
//! cb.add_net("n2", cb.cell_term(u, "Y")?, [cb.pad_term(y)])?;
//! let circuit = cb.finish()?;
//!
//! let mut pb = PlacementBuilder::new(Geometry::default(), 1);
//! pb.append(0, bgr_netlist::CellId::new(0));
//! pb.place_pad_bottom(a, 0);
//! pb.place_pad_top(y, 2);
//! let placement = pb.finish(&circuit)?;
//! assert_eq!(placement.num_rows(), 1);
//! assert_eq!(placement.num_channels(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod geometry;
pub mod placement;
pub mod slots;

pub use error::LayoutError;
pub use geometry::Geometry;
pub use placement::{
    CellLoc, ChannelId, PadSide, PlacedCell, Placement, PlacementBuilder, Row, TermPos, TermSite,
};
pub use slots::{FlagPolicy, SlotId, SlotRange, SlotStore};
