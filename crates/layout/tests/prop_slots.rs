//! Property tests for the feedthrough slot store: found windows are
//! always free, adjacent and flag-compatible, and occupancy round-trips.

use bgr_layout::{FlagPolicy, SlotId, SlotRange, SlotStore};
use bgr_netlist::NetId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn found_windows_are_free_adjacent_and_nearest(
        xs in proptest::collection::btree_set(0i32..60, 1..25),
        occupied_sel in proptest::collection::vec(any::<bool>(), 25),
        width in 1u32..4,
        target in 0i32..60,
    ) {
        let mut store = SlotStore::new(1);
        let xs: Vec<i32> = xs.into_iter().collect();
        for &x in &xs {
            store.add_slot(0, x, None);
        }
        // Occupy a random subset.
        for (i, &occ) in occupied_sel.iter().take(xs.len()).enumerate() {
            if occ {
                store.occupy(
                    SlotRange { row: 0, start: i as u32, len: 1 },
                    NetId::new(99),
                );
            }
        }
        if let Some(r) = store.find_adjacent_free(0, width, target, FlagPolicy::Ignore) {
            prop_assert_eq!(r.len, width);
            let slots: Vec<SlotId> = r.iter().collect();
            for pair in slots.windows(2) {
                prop_assert_eq!(store.x_of(pair[1]), store.x_of(pair[0]) + 1, "adjacent");
            }
            for s in &slots {
                prop_assert!(store.occupant(*s).is_none(), "free");
            }
            // No strictly nearer eligible window exists (oracle scan).
            let found_center2 =
                store.x_of(slots[0]) as i64 + store.x_of(slots[slots.len() - 1]) as i64;
            let found_dist = (found_center2 - 2 * target as i64).abs();
            for start in 0..xs.len() {
                let end = start + width as usize;
                if end > xs.len() { break; }
                let adjacent = (start..end - 1).all(|k| xs[k + 1] == xs[k] + 1);
                let free = (start..end).all(|k| {
                    store
                        .occupant(SlotId { row: 0, idx: k as u32 })
                        .is_none()
                });
                if adjacent && free {
                    let c2 = xs[start] as i64 + xs[end - 1] as i64;
                    prop_assert!(
                        (c2 - 2 * target as i64).abs() >= found_dist,
                        "nearest window returned"
                    );
                }
            }
        } else {
            // Oracle: no eligible window may exist.
            for start in 0..xs.len() {
                let end = start + width as usize;
                if end > xs.len() { break; }
                let adjacent = (start..end - 1).all(|k| xs[k + 1] == xs[k] + 1);
                let free = (start..end).all(|k| {
                    store
                        .occupant(SlotId { row: 0, idx: k as u32 })
                        .is_none()
                });
                prop_assert!(!(adjacent && free), "window missed by find");
            }
        }
    }

    #[test]
    fn release_net_frees_exactly_its_slots(
        count in 2usize..20,
        picks in proptest::collection::vec(0usize..20, 1..10),
    ) {
        let mut store = SlotStore::new(1);
        for x in 0..count as i32 {
            store.add_slot(0, x, None);
        }
        let mut owned = vec![None::<NetId>; count];
        for (turn, &p) in picks.iter().enumerate() {
            let idx = p % count;
            if owned[idx].is_none() {
                let net = NetId::new(turn % 3);
                store.occupy(
                    SlotRange { row: 0, start: idx as u32, len: 1 },
                    net,
                );
                owned[idx] = Some(net);
            }
        }
        store.release_net(NetId::new(0));
        for (i, o) in owned.iter().enumerate() {
            let slot = SlotId { row: 0, idx: i as u32 };
            match o {
                Some(n) if *n != NetId::new(0) => {
                    prop_assert_eq!(store.occupant(slot), Some(*n))
                }
                _ => prop_assert!(store.occupant(slot).is_none()),
            }
        }
    }
}
