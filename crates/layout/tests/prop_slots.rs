//! Randomized tests for the feedthrough slot store: found windows are
//! always free, adjacent and flag-compatible, and occupancy round-trips.

use bgr_layout::{FlagPolicy, SlotId, SlotRange, SlotStore};
use bgr_netlist::{NetId, SplitMix64};
use std::collections::BTreeSet;

#[test]
fn found_windows_are_free_adjacent_and_nearest() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(0x510 ^ (seed << 5));
        let mut set = BTreeSet::new();
        let n = rng.range_usize(1, 25);
        while set.len() < n {
            set.insert(rng.range_i32(0, 60));
        }
        let xs: Vec<i32> = set.into_iter().collect();
        let width = rng.range_i32(1, 4) as u32;
        let target = rng.range_i32(0, 60);

        let mut store = SlotStore::new(1);
        for &x in &xs {
            store.add_slot(0, x, None);
        }
        // Occupy a random subset.
        for i in 0..xs.len() {
            if rng.next_bool(0.5) {
                store.occupy(
                    SlotRange {
                        row: 0,
                        start: i as u32,
                        len: 1,
                    },
                    NetId::new(99),
                );
            }
        }
        if let Some(r) = store.find_adjacent_free(0, width, target, FlagPolicy::Ignore) {
            assert_eq!(r.len, width);
            let slots: Vec<SlotId> = r.iter().collect();
            for pair in slots.windows(2) {
                assert_eq!(store.x_of(pair[1]), store.x_of(pair[0]) + 1, "adjacent");
            }
            for s in &slots {
                assert!(store.occupant(*s).is_none(), "free");
            }
            // No strictly nearer eligible window exists (oracle scan).
            let found_center2 =
                store.x_of(slots[0]) as i64 + store.x_of(slots[slots.len() - 1]) as i64;
            let found_dist = (found_center2 - 2 * target as i64).abs();
            for start in 0..xs.len() {
                let end = start + width as usize;
                if end > xs.len() {
                    break;
                }
                let adjacent = (start..end - 1).all(|k| xs[k + 1] == xs[k] + 1);
                let free = (start..end).all(|k| {
                    store
                        .occupant(SlotId {
                            row: 0,
                            idx: k as u32,
                        })
                        .is_none()
                });
                if adjacent && free {
                    let c2 = xs[start] as i64 + xs[end - 1] as i64;
                    assert!(
                        (c2 - 2 * target as i64).abs() >= found_dist,
                        "nearest window returned"
                    );
                }
            }
        } else {
            // Oracle: no eligible window may exist.
            for start in 0..xs.len() {
                let end = start + width as usize;
                if end > xs.len() {
                    break;
                }
                let adjacent = (start..end - 1).all(|k| xs[k + 1] == xs[k] + 1);
                let free = (start..end).all(|k| {
                    store
                        .occupant(SlotId {
                            row: 0,
                            idx: k as u32,
                        })
                        .is_none()
                });
                assert!(!(adjacent && free), "window missed by find");
            }
        }
    }
}

#[test]
fn release_net_frees_exactly_its_slots() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(0xF4EE ^ (seed << 3));
        let count = rng.range_usize(2, 20);
        let mut store = SlotStore::new(1);
        for x in 0..count as i32 {
            store.add_slot(0, x, None);
        }
        let mut owned = vec![None::<NetId>; count];
        let picks = rng.range_usize(1, 10);
        for turn in 0..picks {
            let idx = rng.range_usize(0, count);
            if owned[idx].is_none() {
                let net = NetId::new(turn % 3);
                store.occupy(
                    SlotRange {
                        row: 0,
                        start: idx as u32,
                        len: 1,
                    },
                    net,
                );
                owned[idx] = Some(net);
            }
        }
        store.release_net(NetId::new(0));
        for (i, o) in owned.iter().enumerate() {
            let slot = SlotId {
                row: 0,
                idx: i as u32,
            };
            match o {
                Some(n) if *n != NetId::new(0) => {
                    assert_eq!(store.occupant(slot), Some(*n))
                }
                _ => assert!(store.occupant(slot).is_none()),
            }
        }
    }
}
