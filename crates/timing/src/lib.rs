//! Static-timing substrate for the `bgr` global router.
//!
//! Implements §2 of Harada & Kitazawa (DAC 1994):
//!
//! * the **capacitance delay model** of Eq. (1) — and the RC (Elmore)
//!   extension the paper notes is a drop-in replacement ([`DelayModel`]),
//! * the **global delay graph** `G_D` ([`DelayGraph`]): one vertex per
//!   terminal, cell timing arcs whose delay is
//!   `T0(t_i,t_o) + (Σ F_in)·T_f(t_o) + CL(n)·T_d(t_o)`, and zero-delay
//!   net arcs from drivers to sinks,
//! * **critical path constraints** `P = (S_P, T_P, τ_P)`
//!   ([`PathConstraint`]) with their **delay constraint graphs** `G_d(P)`
//!   ([`ConstraintGraph`]) — the subgraph of `G_D` spanned by all paths
//!   from `S_P` to `T_P`,
//! * an incremental analyzer ([`Sta`]) that keeps longest-path values
//!   `lp(v)` and margins `M(P)` up to date as the router re-estimates net
//!   wire lengths, and
//! * the zero-wire-capacitance **slack analysis** used for net ordering in
//!   feedthrough assignment (§3.1) ([`net_ordering_slack`]).

pub mod constraint;
pub mod error;
pub mod graph;
pub mod model;
pub mod slack;
pub mod sta;

pub use constraint::{ConstraintGraph, PathConstraint};
pub use error::TimingError;
pub use graph::{ArcKind, DelayGraph};
pub use model::{rc_skew_ps, DelayModel, WireParams};
pub use slack::{net_ordering_slack, nets_by_ascending_slack};
pub use sta::{NetLengths, Sta};
