//! Critical path constraints and their delay constraint graphs `G_d(P)`
//! (§2.2).

use std::collections::HashMap;

use bgr_netlist::{NetId, TermId};

use crate::error::TimingError;
use crate::graph::DelayGraph;

/// A critical path constraint `P = (S_P, T_P, τ_P)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConstraint {
    /// Human-readable name.
    pub name: String,
    /// Signal source terminal `S_P`.
    pub source: TermId,
    /// Signal sink terminal `T_P`.
    pub sink: TermId,
    /// Delay limit `τ_P` in ps.
    pub limit_ps: f64,
}

impl PathConstraint {
    /// Creates a constraint.
    pub fn new(name: impl Into<String>, source: TermId, sink: TermId, limit_ps: f64) -> Self {
        Self {
            name: name.into(),
            source,
            sink,
            limit_ps,
        }
    }
}

/// The delay constraint graph `G_d(P)`: the subgraph of `G_D` induced by
/// all vertices on some `S_P → T_P` path, in topological order.
#[derive(Debug, Clone)]
pub struct ConstraintGraph {
    constraint: PathConstraint,
    /// Member terminals in topological order.
    topo: Vec<TermId>,
    /// Dense index of each member terminal (`usize::MAX` if absent),
    /// indexed by `TermId`.
    dense: Vec<u32>,
    /// `G_D` arc indices with both endpoints in the member set, ordered by
    /// the topological position of their source.
    arcs: Vec<u32>,
    /// Arc indices grouped by loading net: `net → arcs of this graph whose
    /// delay depends on that net's wire length`.
    arcs_by_net: HashMap<NetId, Vec<u32>>,
}

const ABSENT: u32 = u32::MAX;

impl ConstraintGraph {
    /// Builds `G_d(P)` over the global delay graph.
    ///
    /// # Errors
    ///
    /// [`TimingError::Unreachable`] if no `S_P → T_P` path exists;
    /// [`TimingError::CyclicConstraint`] if the member subgraph is cyclic.
    pub fn build(dg: &DelayGraph, constraint: PathConstraint) -> Result<Self, TimingError> {
        let n = dg.num_terms();
        if constraint.source.index() >= n {
            return Err(TimingError::UnknownTerm(constraint.source));
        }
        if constraint.sink.index() >= n {
            return Err(TimingError::UnknownTerm(constraint.sink));
        }
        // Forward reachability from S.
        let mut fwd = vec![false; n];
        let mut stack = vec![constraint.source];
        fwd[constraint.source.index()] = true;
        while let Some(v) = stack.pop() {
            for &e in dg.out_arcs(v) {
                let w = dg.arcs()[e as usize].to;
                if !fwd[w.index()] {
                    fwd[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        if !fwd[constraint.sink.index()] {
            return Err(TimingError::Unreachable {
                source: constraint.source,
                sink: constraint.sink,
            });
        }
        // Backward reachability from T.
        let mut bwd = vec![false; n];
        stack.push(constraint.sink);
        bwd[constraint.sink.index()] = true;
        while let Some(v) = stack.pop() {
            for &e in dg.in_arcs(v) {
                let w = dg.arcs()[e as usize].from;
                if !bwd[w.index()] {
                    bwd[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        let member = |t: TermId| fwd[t.index()] && bwd[t.index()];

        // Kahn topological sort of the member subgraph.
        let mut dense = vec![ABSENT; n];
        let members: Vec<TermId> = (0..n).map(TermId::new).filter(|&t| member(t)).collect();
        let mut indeg = vec![0u32; members.len()];
        for (i, &t) in members.iter().enumerate() {
            dense[t.index()] = i as u32;
        }
        for &t in &members {
            for &e in dg.out_arcs(t) {
                let to = dg.arcs()[e as usize].to;
                if member(to) {
                    indeg[dense[to.index()] as usize] += 1;
                }
            }
        }
        let mut queue: Vec<TermId> = members
            .iter()
            .copied()
            .filter(|&t| indeg[dense[t.index()] as usize] == 0)
            .collect();
        let mut topo = Vec::with_capacity(members.len());
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &e in dg.out_arcs(v) {
                let w = dg.arcs()[e as usize].to;
                if member(w) {
                    let d = &mut indeg[dense[w.index()] as usize];
                    *d -= 1;
                    if *d == 0 {
                        queue.push(w);
                    }
                }
            }
        }
        if topo.len() != members.len() {
            return Err(TimingError::CyclicConstraint {
                source: constraint.source,
                sink: constraint.sink,
            });
        }
        // Re-densify in topological order so evaluation is a single sweep.
        for (i, &t) in topo.iter().enumerate() {
            dense[t.index()] = i as u32;
        }
        let mut arcs = Vec::new();
        let mut arcs_by_net: HashMap<NetId, Vec<u32>> = HashMap::new();
        for &t in &topo {
            for &e in dg.out_arcs(t) {
                let arc = &dg.arcs()[e as usize];
                if member(arc.to) {
                    arcs.push(e);
                    if let Some(net) = arc.loading_net() {
                        arcs_by_net.entry(net).or_default().push(e);
                    }
                }
            }
        }
        Ok(Self {
            constraint,
            topo,
            dense,
            arcs,
            arcs_by_net,
        })
    }

    /// The constraint this graph was built for.
    pub fn constraint(&self) -> &PathConstraint {
        &self.constraint
    }

    /// Member terminals in topological order.
    pub fn topo(&self) -> &[TermId] {
        &self.topo
    }

    /// Whether a terminal belongs to this constraint graph.
    pub fn contains(&self, term: TermId) -> bool {
        self.dense
            .get(term.index())
            .map(|&d| d != ABSENT)
            .unwrap_or(false)
    }

    /// Dense index of a member terminal.
    pub fn dense_index(&self, term: TermId) -> Option<usize> {
        match self.dense.get(term.index()) {
            Some(&d) if d != ABSENT => Some(d as usize),
            _ => None,
        }
    }

    /// `G_D` arc indices of this graph (topological source order).
    pub fn arcs(&self) -> &[u32] {
        &self.arcs
    }

    /// Arcs of this graph whose delay depends on `net`'s wire length.
    pub fn arcs_for_net(&self, net: NetId) -> &[u32] {
        self.arcs_by_net.get(&net).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nets with at least one loading arc in this graph.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.arcs_by_net.keys().copied()
    }

    /// Forward longest-path sweep: returns `lp(v)` per dense index (ps
    /// from `S_P`) given the current wire state.
    ///
    /// Vertices that precede `S_P` in the member set cannot exist (the
    /// member set is exactly the S→T path union), so `lp(S_P) = 0` and
    /// every member is reachable.
    pub fn longest_paths(&self, dg: &DelayGraph, cl_ff: &[f64], rc_ps: &[f64]) -> Vec<f64> {
        let mut lp = vec![f64::NEG_INFINITY; self.topo.len()];
        lp[self
            .dense_index(self.constraint.source)
            .expect("source is a member")] = 0.0;
        for &e in &self.arcs {
            let arc = &dg.arcs()[e as usize];
            let from = self.dense[arc.from.index()] as usize;
            let to = self.dense[arc.to.index()] as usize;
            let cand = lp[from] + dg.arc_delay_ps(e, cl_ff, rc_ps);
            if cand > lp[to] {
                lp[to] = cand;
            }
        }
        lp
    }

    /// Backward longest-path sweep: `bp(v)` = longest delay from `v` to
    /// `T_P`.
    pub fn longest_paths_to_sink(&self, dg: &DelayGraph, cl_ff: &[f64], rc_ps: &[f64]) -> Vec<f64> {
        let mut bp = vec![f64::NEG_INFINITY; self.topo.len()];
        bp[self
            .dense_index(self.constraint.sink)
            .expect("sink is a member")] = 0.0;
        for &e in self.arcs.iter().rev() {
            let arc = &dg.arcs()[e as usize];
            let from = self.dense[arc.from.index()] as usize;
            let to = self.dense[arc.to.index()] as usize;
            let cand = bp[to] + dg.arc_delay_ps(e, cl_ff, rc_ps);
            if cand > bp[from] {
                bp[from] = cand;
            }
        }
        bp
    }

    /// Critical path arrival at the sink: `lp(T_P)`.
    pub fn arrival_ps(&self, lp: &[f64]) -> f64 {
        lp[self
            .dense_index(self.constraint.sink)
            .expect("sink is a member")]
    }

    /// Margin `M(P) = τ_P − lp(T_P)`.
    pub fn margin_ps(&self, lp: &[f64]) -> f64 {
        self.constraint.limit_ps - self.arrival_ps(lp)
    }

    /// Nets on the critical path, in sink-to-source discovery order.
    ///
    /// Walks back from `T_P` choosing, at each vertex, a predecessor arc
    /// that achieves its `lp` value; collects the loading net of every
    /// cell arc and the traversed net of every net arc on the way.
    pub fn critical_nets(&self, dg: &DelayGraph, cl_ff: &[f64], rc_ps: &[f64]) -> Vec<NetId> {
        let lp = self.longest_paths(dg, cl_ff, rc_ps);
        let mut nets = Vec::new();
        let mut cur = self.constraint.sink;
        const EPS: f64 = 1e-9;
        while cur != self.constraint.source {
            let cur_lp = lp[self.dense[cur.index()] as usize];
            let mut step = None;
            for &e in dg.in_arcs(cur) {
                let arc = &dg.arcs()[e as usize];
                if !self.contains(arc.from) {
                    continue;
                }
                let from_lp = lp[self.dense[arc.from.index()] as usize];
                if (from_lp + dg.arc_delay_ps(e, cl_ff, rc_ps) - cur_lp).abs() <= EPS {
                    step = Some(e);
                    break;
                }
            }
            let e = step.expect("lp-consistent predecessor exists");
            let arc = &dg.arcs()[e as usize];
            match arc.kind {
                crate::graph::ArcKind::Cell { net } => {
                    if let Some(net) = net {
                        if nets.last() != Some(&net) {
                            nets.push(net);
                        }
                    }
                }
                crate::graph::ArcKind::Net { net } => {
                    if nets.last() != Some(&net) {
                        nets.push(net);
                    }
                }
            }
            cur = arc.from;
        }
        nets.dedup();
        nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, Circuit, CircuitBuilder};

    /// a -> u1 -> {u2, u3} -> y (reconvergent through u2/u3? No: u2 -> y,
    /// u3 dangles into z). Gives a diamond-free graph with a side branch.
    fn fanout_circuit() -> (Circuit, TermId, TermId, TermId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let nor2 = lib.kind_by_name("NOR2").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let b = cb.add_input_pad("b");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let u3 = cb.add_cell("u3", nor2);
        // a -> u1.A; u1.Y -> u2.A and u3.A; b -> u3.B; u3.Y -> y.
        cb.add_net("na", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        cb.add_net(
            "n1",
            cb.cell_term(u1, "Y").unwrap(),
            [
                cb.cell_term(u2, "A").unwrap(),
                cb.cell_term(u3, "A").unwrap(),
            ],
        )
        .unwrap();
        cb.add_net("nb", cb.pad_term(b), [cb.cell_term(u3, "B").unwrap()])
            .unwrap();
        cb.add_net("ny", cb.cell_term(u3, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let src = cb.pad_term(a);
        let src_b = cb.pad_term(b);
        let snk = cb.pad_term(y);
        (cb.finish().unwrap(), src, src_b, snk)
    }

    fn zeros(dg: &DelayGraph) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; dg.num_nets()], vec![0.0; dg.num_nets()])
    }

    #[test]
    fn membership_excludes_side_branches() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        // u2 (the dangling inverter) is not on any a->y path.
        let u2_a = circuit.cell(bgr_netlist::CellId::new(1)).terms()[0];
        assert!(!cg.contains(u2_a));
        assert!(cg.contains(src));
        assert!(cg.contains(snk));
    }

    #[test]
    fn longest_path_accumulates_arc_delays() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        let (cl, rc) = zeros(&dg);
        let lp = cg.longest_paths(&dg, &cl, &rc);
        // Path: INV arc (60 + (5+6)*2.5 = 87.5 for fanout u2.A+u3.A)
        //     + NOR2 A->Y arc (95 + 0 fanout to pad).
        let arrival = cg.arrival_ps(&lp);
        assert!((arrival - (60.0 + 11.0 * 2.5 + 95.0)).abs() < 1e-9);
        assert!((cg.margin_ps(&lp) - (1000.0 - arrival)).abs() < 1e-9);
    }

    #[test]
    fn wire_length_increases_arrival() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        let (mut cl, rc) = zeros(&dg);
        let lp0 = cg.arrival_ps(&cg.longest_paths(&dg, &cl, &rc));
        cl[1] = 20.0; // n1 loads u1's INV arc (Td = 0.45)
        let lp1 = cg.arrival_ps(&cg.longest_paths(&dg, &cl, &rc));
        assert!((lp1 - lp0 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn arcs_for_net_selects_loading_arcs() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        // Net n1 (index 1) loads exactly u1's cell arc inside this graph.
        let arcs = cg.arcs_for_net(bgr_netlist::NetId::new(1));
        assert_eq!(arcs.len(), 1);
        assert!(matches!(
            dg.arcs()[arcs[0] as usize].kind,
            crate::graph::ArcKind::Cell { .. }
        ));
    }

    #[test]
    fn unreachable_is_an_error() {
        let (circuit, _, src_b, _) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        // b -> a's pad is impossible.
        let a_term = circuit.pads()[0].term();
        let err =
            ConstraintGraph::build(&dg, PathConstraint::new("p", src_b, a_term, 1.0)).unwrap_err();
        assert!(matches!(err, TimingError::Unreachable { .. }));
    }

    #[test]
    fn critical_nets_walk_the_longest_path() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        let (cl, rc) = zeros(&dg);
        let mut nets = cg.critical_nets(&dg, &cl, &rc);
        nets.sort();
        // na (0), n1 (1), ny (3) are on the a->y path; nb (2) is not,
        // because the b->u3.B arc has no cell delay behind it greater than
        // the a-side path.
        assert_eq!(nets, vec![NetId::new(0), NetId::new(1), NetId::new(3)]);
    }

    #[test]
    fn backward_sweep_mirrors_forward() {
        let (circuit, src, _, snk) = fanout_circuit();
        let dg = DelayGraph::build(&circuit);
        let cg = ConstraintGraph::build(&dg, PathConstraint::new("p", src, snk, 1000.0)).unwrap();
        let (cl, rc) = zeros(&dg);
        let lp = cg.longest_paths(&dg, &cl, &rc);
        let bp = cg.longest_paths_to_sink(&dg, &cl, &rc);
        let src_i = cg.dense_index(src).unwrap();
        assert!((bp[src_i] - cg.arrival_ps(&lp)).abs() < 1e-9);
    }
}
