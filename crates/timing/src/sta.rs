//! Incremental static timing over a set of path constraints.

use bgr_netlist::{Circuit, NetId};

use crate::constraint::{ConstraintGraph, PathConstraint};
use crate::error::TimingError;
use crate::graph::DelayGraph;
use crate::model::{DelayModel, WireParams};

/// Per-net wire state: routed length estimates and the derived capacitance
/// / RC contributions consumed by [`DelayGraph::arc_delay_ps`].
#[derive(Debug, Clone)]
pub struct NetLengths {
    model: DelayModel,
    wire: WireParams,
    length_um: Vec<f64>,
    cl_ff: Vec<f64>,
    rc_ps: Vec<f64>,
    width: Vec<u32>,
    fanout_ff: Vec<f64>,
}

impl NetLengths {
    /// Creates the state with all lengths zero.
    pub fn new(circuit: &Circuit, model: DelayModel, wire: WireParams) -> Self {
        let n = circuit.nets().len();
        Self {
            model,
            wire,
            length_um: vec![0.0; n],
            cl_ff: vec![0.0; n],
            rc_ps: vec![0.0; n],
            width: circuit.nets().iter().map(|n| n.width_pitches()).collect(),
            fanout_ff: circuit
                .net_ids()
                .map(|n| circuit.net_fanout_ff(n))
                .collect(),
        }
    }

    /// The delay model in use.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The wire parasitics in use.
    pub fn wire(&self) -> &WireParams {
        &self.wire
    }

    /// Sets a net's estimated routed length in µm.
    pub fn set_length_um(&mut self, net: NetId, length_um: f64) {
        let i = net.index();
        self.length_um[i] = length_um;
        self.cl_ff[i] = self.model.wire_cap_ff(&self.wire, length_um, self.width[i]);
        self.rc_ps[i] =
            self.model
                .wire_rc_ps(&self.wire, length_um, self.width[i], self.fanout_ff[i]);
    }

    /// Current length of a net in µm.
    pub fn length_um(&self, net: NetId) -> f64 {
        self.length_um[net.index()]
    }

    /// Total length over all nets in µm.
    pub fn total_length_um(&self) -> f64 {
        self.length_um.iter().sum()
    }

    /// Wiring capacitance per net (fF), for [`DelayGraph::arc_delay_ps`].
    pub fn cl_ff(&self) -> &[f64] {
        &self.cl_ff
    }

    /// Model-dependent RC term per net (ps).
    pub fn rc_ps(&self) -> &[f64] {
        &self.rc_ps
    }

    /// What `(cl_ff, rc_ps)` a net *would* have at the given length —
    /// used by the router's local-margin estimation without committing.
    pub fn wire_terms_at(&self, net: NetId, length_um: f64) -> (f64, f64) {
        let i = net.index();
        (
            self.model.wire_cap_ff(&self.wire, length_um, self.width[i]),
            self.model
                .wire_rc_ps(&self.wire, length_um, self.width[i], self.fanout_ff[i]),
        )
    }
}

/// Static timing analyzer: constraint graphs plus cached longest-path
/// values and margins, refreshed incrementally as nets change length.
#[derive(Debug, Clone)]
pub struct Sta {
    graph: DelayGraph,
    lengths: NetLengths,
    cons: Vec<ConstraintGraph>,
    lp: Vec<Vec<f64>>,
    margin: Vec<f64>,
    /// Per net: constraint indices whose graph contains the net.
    net_to_cons: Vec<Vec<u32>>,
    /// Per constraint: member nets (inverse of `net_to_cons`).
    cons_nets: Vec<Vec<NetId>>,
    /// Bumped whenever any cached `lp` / margin changes.
    generation: u64,
    /// Per constraint: bumped whenever its `lp` / margin is refreshed.
    cons_generation: Vec<u64>,
}

impl Sta {
    /// Builds the analyzer.
    ///
    /// # Errors
    ///
    /// Propagates [`ConstraintGraph::build`] failures (unreachable or
    /// cyclic constraints).
    pub fn new(
        circuit: &Circuit,
        constraints: Vec<PathConstraint>,
        model: DelayModel,
        wire: WireParams,
    ) -> Result<Self, TimingError> {
        let graph = DelayGraph::build(circuit);
        let lengths = NetLengths::new(circuit, model, wire);
        let mut cons = Vec::with_capacity(constraints.len());
        for c in constraints {
            cons.push(ConstraintGraph::build(&graph, c)?);
        }
        let mut net_to_cons = vec![Vec::new(); circuit.nets().len()];
        let mut cons_nets = vec![Vec::new(); cons.len()];
        for (i, cg) in cons.iter().enumerate() {
            for net in cg.nets() {
                net_to_cons[net.index()].push(i as u32);
                cons_nets[i].push(net);
            }
        }
        let num_cons = cons.len();
        let mut sta = Self {
            graph,
            lengths,
            cons,
            lp: Vec::new(),
            margin: Vec::new(),
            net_to_cons,
            cons_nets,
            generation: 0,
            cons_generation: vec![0; num_cons],
        };
        sta.refresh_all();
        Ok(sta)
    }

    fn refresh_all(&mut self) {
        self.lp = self
            .cons
            .iter()
            .map(|cg| cg.longest_paths(&self.graph, self.lengths.cl_ff(), self.lengths.rc_ps()))
            .collect();
        self.margin = self
            .cons
            .iter()
            .zip(&self.lp)
            .map(|(cg, lp)| cg.margin_ps(lp))
            .collect();
        self.generation += 1;
        self.cons_generation.iter_mut().for_each(|g| *g += 1);
    }

    fn refresh_one(&mut self, cid: usize) {
        self.lp[cid] =
            self.cons[cid].longest_paths(&self.graph, self.lengths.cl_ff(), self.lengths.rc_ps());
        self.margin[cid] = self.cons[cid].margin_ps(&self.lp[cid]);
        self.generation += 1;
        self.cons_generation[cid] += 1;
    }

    /// The global delay graph.
    pub fn graph(&self) -> &DelayGraph {
        &self.graph
    }

    /// Current wire-length state.
    pub fn lengths(&self) -> &NetLengths {
        &self.lengths
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Constraint graph `cid`.
    pub fn constraint(&self, cid: usize) -> &ConstraintGraph {
        &self.cons[cid]
    }

    /// Current margin `M(P)` of constraint `cid` in ps.
    pub fn margin_ps(&self, cid: usize) -> f64 {
        self.margin[cid]
    }

    /// Current arrival `lp(T_P)` of constraint `cid` in ps.
    pub fn arrival_ps(&self, cid: usize) -> f64 {
        self.cons[cid].arrival_ps(&self.lp[cid])
    }

    /// Worst (minimum) margin over all constraints, or `+∞` if there are
    /// none.
    pub fn worst_margin_ps(&self) -> f64 {
        self.margin.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest critical-path arrival over all constraints, or 0.
    pub fn max_arrival_ps(&self) -> f64 {
        (0..self.cons.len())
            .map(|c| self.arrival_ps(c))
            .fold(0.0, f64::max)
    }

    /// Indices of constraints whose graph contains `net`.
    pub fn constraints_of_net(&self, net: NetId) -> &[u32] {
        &self.net_to_cons[net.index()]
    }

    /// Member nets of constraint `cid` (inverse of
    /// [`Sta::constraints_of_net`]). A net's length change perturbs the
    /// longest paths — and hence local margins — of *every* member net of
    /// each affected constraint; incremental consumers must re-evaluate
    /// all of them.
    pub fn nets_of_constraint(&self, cid: usize) -> &[NetId] {
        &self.cons_nets[cid]
    }

    /// Global invalidation stamp: changes whenever any cached longest
    /// path or margin changes. Equal stamps guarantee identical
    /// `margin_ps` / `lp` / `lm_excess_ps` answers.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-constraint invalidation stamp (see [`Sta::generation`]).
    pub fn constraint_generation(&self, cid: usize) -> u64 {
        self.cons_generation[cid]
    }

    /// Sets a net's estimated length and refreshes affected constraints.
    ///
    /// Returns `true` when the length actually changed (and margins were
    /// refreshed); an unchanged length leaves every cache and generation
    /// stamp untouched.
    pub fn set_net_length(&mut self, net: NetId, length_um: f64) -> bool {
        if (self.lengths.length_um(net) - length_um).abs() < 1e-12 {
            return false;
        }
        self.lengths.set_length_um(net, length_um);
        let affected: Vec<u32> = self.net_to_cons[net.index()].clone();
        for cid in affected {
            self.refresh_one(cid as usize);
        }
        true
    }

    /// `lp(v)` of a member terminal of constraint `cid`.
    pub fn lp(&self, cid: usize, term: bgr_netlist::TermId) -> Option<f64> {
        self.cons[cid].dense_index(term).map(|d| self.lp[cid][d])
    }

    /// The paper's local-margin core: the worst `lp(v) + d' − lp(w)`
    /// excess over the constraint-graph arcs loaded by `net`, if the net's
    /// wire terms were `(cl_ff, rc_ps)`. Non-negative; 0 means no arc gets
    /// ahead of its current longest-path slacklessness.
    ///
    /// `LM(e, P) = M(P) − lm_excess_ps(...)` (Eq. 2).
    pub fn lm_excess_ps(&self, cid: usize, net: NetId, cl_ff: f64, rc_ps: f64) -> f64 {
        let cg = &self.cons[cid];
        let lp = &self.lp[cid];
        let mut worst = 0.0f64;
        for &e in cg.arcs_for_net(net) {
            let arc = &self.graph.arcs()[e as usize];
            let d_new = arc.static_ps + cl_ff * arc.td_ps_per_ff + rc_ps;
            let v = cg.dense_index(arc.from).expect("arc source is a member");
            let w = cg.dense_index(arc.to).expect("arc target is a member");
            worst = worst.max(lp[v] + d_new - lp[w]);
        }
        worst
    }

    /// Sum of per-arc delay increases over the constraint-graph arcs
    /// loaded by `net` at the hypothetical wire terms — the `LD(e)`
    /// ingredient.
    pub fn delay_increase_sum_ps(&self, cid: usize, net: NetId, cl_ff: f64, rc_ps: f64) -> f64 {
        let cg = &self.cons[cid];
        let mut sum = 0.0;
        for &e in cg.arcs_for_net(net) {
            let arc = &self.graph.arcs()[e as usize];
            let d_new = arc.static_ps + cl_ff * arc.td_ps_per_ff + rc_ps;
            let d_old = self
                .graph
                .arc_delay_ps(e, self.lengths.cl_ff(), self.lengths.rc_ps());
            sum += (d_new - d_old).max(0.0);
        }
        sum
    }

    /// Nets on the current critical path of constraint `cid`.
    pub fn critical_nets(&self, cid: usize) -> Vec<NetId> {
        self.cons[cid].critical_nets(&self.graph, self.lengths.cl_ff(), self.lengths.rc_ps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, Circuit, CircuitBuilder, TermId};

    fn chain3() -> (Circuit, TermId, TermId) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let cells: Vec<_> = (0..3).map(|i| cb.add_cell(format!("u{i}"), inv)).collect();
        let mut prev = cb.pad_term(a);
        for &c in &cells {
            cb.add_net(format!("n{c:?}"), prev, [cb.cell_term(c, "A").unwrap()])
                .unwrap();
            prev = cb.cell_term(c, "Y").unwrap();
        }
        cb.add_net("ny", prev, [cb.pad_term(y)]).unwrap();
        let (s, t) = (cb.pad_term(a), cb.pad_term(y));
        (cb.finish().unwrap(), s, t)
    }

    fn sta_for(limit: f64) -> (Sta, TermId, TermId) {
        let (circuit, s, t) = chain3();
        let sta = Sta::new(
            &circuit,
            vec![PathConstraint::new("p", s, t, limit)],
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        (sta, s, t)
    }

    #[test]
    fn zero_length_arrival_is_static_path() {
        let (sta, _, _) = sta_for(1000.0);
        // Three INV arcs: first two drive an INV input (5 fF × 2.5 ps/fF),
        // last drives the pad. 72.5 + 72.5 + 60.
        assert!((sta.arrival_ps(0) - 205.0).abs() < 1e-9);
        assert!((sta.margin_ps(0) - 795.0).abs() < 1e-9);
    }

    #[test]
    fn set_net_length_updates_margin() {
        let (mut sta, _, _) = sta_for(1000.0);
        let before = sta.margin_ps(0);
        // Net 1 (u0.Y -> u1.A) gets 500 µm: CL = 100 fF, Td = 0.45.
        sta.set_net_length(bgr_netlist::NetId::new(1), 500.0);
        let after = sta.margin_ps(0);
        assert!((before - after - 45.0).abs() < 1e-9);
        assert!((sta.lengths().total_length_um() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn lm_excess_matches_direct_recompute() {
        let (mut sta, _, _) = sta_for(1000.0);
        let net = bgr_netlist::NetId::new(1);
        sta.set_net_length(net, 100.0);
        let m0 = sta.margin_ps(0);
        // Hypothetically grow the net to 600 µm.
        let (cl, rc) = sta.lengths().wire_terms_at(net, 600.0);
        let excess = sta.lm_excess_ps(0, net, cl, rc);
        // LM = M - excess should equal the margin after actually setting
        // the length (single-path circuit: the pessimism is exact).
        sta.set_net_length(net, 600.0);
        assert!((sta.margin_ps(0) - (m0 - excess)).abs() < 1e-9);
    }

    #[test]
    fn delay_increase_sum_is_positive_for_growth_only() {
        let (mut sta, _, _) = sta_for(1000.0);
        let net = bgr_netlist::NetId::new(1);
        sta.set_net_length(net, 400.0);
        let (cl, rc) = sta.lengths().wire_terms_at(net, 100.0);
        // Shrinking yields zero (increases are clamped at 0).
        assert_eq!(sta.delay_increase_sum_ps(0, net, cl, rc), 0.0);
        let (cl, rc) = sta.lengths().wire_terms_at(net, 800.0);
        assert!(sta.delay_increase_sum_ps(0, net, cl, rc) > 0.0);
    }

    #[test]
    fn constraints_of_net_maps_membership() {
        let (sta, _, _) = sta_for(1000.0);
        // The pad-driven first net loads no cell arc, so it is not a
        // member; the three cell-driven nets are.
        assert!(sta
            .constraints_of_net(bgr_netlist::NetId::new(0))
            .is_empty());
        for n in 1..4 {
            assert_eq!(sta.constraints_of_net(bgr_netlist::NetId::new(n)), &[0]);
        }
    }

    #[test]
    fn generations_stamp_every_margin_change() {
        let (mut sta, _, _) = sta_for(1000.0);
        let g0 = sta.generation();
        let c0 = sta.constraint_generation(0);
        // A no-op length update must not bump anything.
        assert!(!sta.set_net_length(bgr_netlist::NetId::new(1), 0.0));
        assert_eq!(sta.generation(), g0);
        assert_eq!(sta.constraint_generation(0), c0);
        // A real update bumps both the global and the constraint stamp.
        assert!(sta.set_net_length(bgr_netlist::NetId::new(1), 250.0));
        assert!(sta.generation() > g0);
        assert!(sta.constraint_generation(0) > c0);
        // Net 0 is not a member, so its update touches no constraint.
        let g1 = sta.generation();
        assert!(sta.set_net_length(bgr_netlist::NetId::new(0), 100.0));
        assert_eq!(sta.generation(), g1);
    }

    #[test]
    fn nets_of_constraint_inverts_membership() {
        let (sta, _, _) = sta_for(1000.0);
        let members = sta.nets_of_constraint(0);
        for n in 0..4 {
            let net = bgr_netlist::NetId::new(n);
            assert_eq!(
                members.contains(&net),
                sta.constraints_of_net(net).contains(&0)
            );
        }
    }

    #[test]
    fn elmore_model_adds_delay() {
        let (circuit, s, t) = chain3();
        let mut cap = Sta::new(
            &circuit,
            vec![PathConstraint::new("p", s, t, 1000.0)],
            DelayModel::Capacitance,
            WireParams::default(),
        )
        .unwrap();
        let mut elm = Sta::new(
            &circuit,
            vec![PathConstraint::new("p", s, t, 1000.0)],
            DelayModel::Elmore,
            WireParams::default(),
        )
        .unwrap();
        cap.set_net_length(bgr_netlist::NetId::new(1), 2000.0);
        elm.set_net_length(bgr_netlist::NetId::new(1), 2000.0);
        assert!(elm.arrival_ps(0) > cap.arrival_ps(0));
    }
}
