//! Zero-wire-capacitance slack analysis for net ordering (§3.1).
//!
//! The paper orders nets for feedthrough assignment "according to a static
//! delay analysis. By the forward and backward search of `G_d(P)` with
//! zero interconnection capacitance, slack values are obtained for each
//! vertex"; nets are then processed in ascending slack order.

use bgr_netlist::{Circuit, NetId};

use crate::constraint::{ConstraintGraph, PathConstraint};
use crate::graph::DelayGraph;

/// Per-net static slack in ps: the minimum, over all constraints and all
/// constraint-graph arcs loaded by the net, of
/// `τ_P − (lp(v) + d(e) + bp(w))` at zero wire capacitance.
///
/// Nets outside every constraint graph get `+∞` (routed last).
///
/// # Errors
///
/// Propagates [`ConstraintGraph::build`] failures.
pub fn net_ordering_slack(
    circuit: &Circuit,
    constraints: &[PathConstraint],
) -> Result<Vec<f64>, crate::TimingError> {
    let dg = DelayGraph::build(circuit);
    let cl = vec![0.0; dg.num_nets()];
    let rc = vec![0.0; dg.num_nets()];
    let mut slack = vec![f64::INFINITY; circuit.nets().len()];
    for c in constraints {
        let cg = ConstraintGraph::build(&dg, c.clone())?;
        let lp = cg.longest_paths(&dg, &cl, &rc);
        let bp = cg.longest_paths_to_sink(&dg, &cl, &rc);
        for net in cg.nets().collect::<Vec<NetId>>() {
            for &e in cg.arcs_for_net(net) {
                let arc = &dg.arcs()[e as usize];
                let v = cg.dense_index(arc.from).expect("member");
                let w = cg.dense_index(arc.to).expect("member");
                let d = dg.arc_delay_ps(e, &cl, &rc);
                let s = c.limit_ps - (lp[v] + d + bp[w]);
                if s < slack[net.index()] {
                    slack[net.index()] = s;
                }
            }
        }
    }
    Ok(slack)
}

/// Net ids sorted by ascending static slack (ties by id for determinism).
///
/// # Errors
///
/// Propagates [`net_ordering_slack`] failures.
pub fn nets_by_ascending_slack(
    circuit: &Circuit,
    constraints: &[PathConstraint],
) -> Result<Vec<NetId>, crate::TimingError> {
    let slack = net_ordering_slack(circuit, constraints)?;
    let mut ids: Vec<NetId> = circuit.net_ids().collect();
    ids.sort_by(|&a, &b| {
        slack[a.index()]
            .partial_cmp(&slack[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    /// Two parallel chains a→…→y (3 INVs) and b→…→z (1 INV) with separate
    /// constraints: the longer chain has less slack.
    fn two_chains() -> (bgr_netlist::Circuit, Vec<PathConstraint>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let b = cb.add_input_pad("b");
        let y = cb.add_output_pad("y");
        let z = cb.add_output_pad("z");
        let mut prev = cb.pad_term(a);
        for i in 0..3 {
            let c = cb.add_cell(format!("ua{i}"), inv);
            cb.add_net(format!("na{i}"), prev, [cb.cell_term(c, "A").unwrap()])
                .unwrap();
            prev = cb.cell_term(c, "Y").unwrap();
        }
        cb.add_net("nay", prev, [cb.pad_term(y)]).unwrap();
        let c = cb.add_cell("ub0", inv);
        cb.add_net("nb0", cb.pad_term(b), [cb.cell_term(c, "A").unwrap()])
            .unwrap();
        cb.add_net("nbz", cb.cell_term(c, "Y").unwrap(), [cb.pad_term(z)])
            .unwrap();
        let cons = vec![
            PathConstraint::new("pa", cb.pad_term(a), cb.pad_term(y), 500.0),
            PathConstraint::new("pb", cb.pad_term(b), cb.pad_term(z), 500.0),
        ];
        (cb.finish().unwrap(), cons)
    }

    #[test]
    fn longer_chain_has_smaller_slack() {
        let (circuit, cons) = two_chains();
        let slack = net_ordering_slack(&circuit, &cons).unwrap();
        // Pad-driven nets (0 and 4) load no cell arc: infinite slack.
        assert!(slack[0].is_infinite() && slack[4].is_infinite());
        // Chain-a nets (1..=3) all share the a-path slack; the chain-b
        // net (5) has the larger b-path slack.
        assert!(slack[1] < slack[5]);
        assert!((slack[1] - slack[3]).abs() < 1e-9);
    }

    #[test]
    fn ordering_puts_tight_nets_first() {
        let (circuit, cons) = two_chains();
        let order = nets_by_ascending_slack(&circuit, &cons).unwrap();
        let pos = |n: usize| {
            order
                .iter()
                .position(|&id| id == bgr_netlist::NetId::new(n))
                .unwrap()
        };
        assert!(pos(1) < pos(5));
        assert!(pos(3) < pos(5));
    }

    #[test]
    fn unconstrained_nets_have_infinite_slack() {
        let (circuit, cons) = two_chains();
        let slack = net_ordering_slack(&circuit, &cons[..1]).unwrap();
        assert!(slack[4].is_infinite());
        assert!(slack[5].is_infinite());
    }

    #[test]
    fn slack_is_limit_minus_path_delay_for_single_path() {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u = cb.add_cell("u", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
            .unwrap();
        cb.add_net("n1", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            100.0,
        )];
        let circuit = cb.finish().unwrap();
        let slack = net_ordering_slack(&circuit, &cons).unwrap();
        // Single INV driving a pad: path delay 60 ps, slack 40 on both
        // nets (TermId arcs: only the cell arc is "loaded", tied to n1;
        // n0 feeds the arc source).
        assert!((slack[1] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn net_zero_of_single_path_gets_no_loading_slack() {
        // n0 loads no cell arc (its only sink is the INV input; the arc it
        // influences is the *pad-to-input* hop, which has no cell arc), so
        // its slack is infinite — consistent with the paper, where only
        // nets appearing in G_d(P) via cell loading matter.
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u = cb.add_cell("u", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
            .unwrap();
        cb.add_net("n1", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        let cons = vec![PathConstraint::new(
            "p",
            cb.pad_term(a),
            cb.pad_term(y),
            100.0,
        )];
        let circuit = cb.finish().unwrap();
        let slack = net_ordering_slack(&circuit, &cons).unwrap();
        assert!(slack[0].is_infinite());
    }
}
