//! Wire parasitics and the delay models of §2.1.

/// Per-unit-length wire parasitics.
///
/// Bipolar wires are made wide to limit current density, so resistance is
/// small — the reason the paper adopts a capacitance-only model. The
/// defaults model a 1-pitch bipolar metal wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Capacitance per µm of a 1-pitch wire, in fF.
    pub cap_ff_per_um: f64,
    /// Resistance per µm of a 1-pitch wire, in Ω.
    pub res_ohm_per_um: f64,
}

impl Default for WireParams {
    fn default() -> Self {
        Self {
            cap_ff_per_um: 0.20,
            res_ohm_per_um: 0.03,
        }
    }
}

/// Interconnect delay model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayModel {
    /// The paper's model (Eq. 1): wire delay is `CL(n) · T_d(t_o)` with
    /// `CL(n)` the total wiring capacitance.
    #[default]
    Capacitance,
    /// The RC extension the paper mentions in §2.1: adds a lumped Elmore
    /// term `R_wire · (CL/2 + C_fanout)`. A `w`-pitch wire has `w×` the
    /// capacitance and `1/w` the resistance.
    Elmore,
}

impl DelayModel {
    /// Total wiring capacitance `CL(n)` in fF for a net of the given
    /// routed `length_um` and width in pitches.
    #[inline]
    pub fn wire_cap_ff(self, wire: &WireParams, length_um: f64, width_pitches: u32) -> f64 {
        wire.cap_ff_per_um * length_um * width_pitches as f64
    }

    /// Model-dependent *extra* wire delay in ps beyond the `CL·T_d` term
    /// (zero for [`DelayModel::Capacitance`]).
    ///
    /// For [`DelayModel::Elmore`] this is the lumped
    /// `R_wire · (CL/2 + C_fanout)` term; Ω·fF = 10⁻³ ps.
    #[inline]
    pub fn wire_rc_ps(
        self,
        wire: &WireParams,
        length_um: f64,
        width_pitches: u32,
        fanout_ff: f64,
    ) -> f64 {
        match self {
            Self::Capacitance => 0.0,
            Self::Elmore => {
                let w = width_pitches as f64;
                let r = wire.res_ohm_per_um * length_um / w;
                let c = self.wire_cap_ff(wire, length_um, width_pitches);
                r * (c / 2.0 + fanout_ff) * 1.0e-3
            }
        }
    }
}

/// Per-sink RC skew of a routed net: the spread of distributed-RC wire
/// delays `R(dist)·(C(dist)/2 + C_sink)` over sinks at the given wire
/// distances from the driver.
///
/// This is the §4.2 story in numbers: a `w`-pitch wire has `1/w` the
/// resistance, so the *differences* between sink delays — the skew —
/// shrink by `1/w` even though each sink's capacitance grows.
///
/// Returns 0 for fewer than two sinks.
pub fn rc_skew_ps(
    wire: &WireParams,
    sink_dists_um: &[f64],
    width_pitches: u32,
    sink_cap_ff: f64,
) -> f64 {
    if sink_dists_um.len() < 2 {
        return 0.0;
    }
    let w = width_pitches as f64;
    let delays = sink_dists_um.iter().map(|&d| {
        let r = wire.res_ohm_per_um * d / w;
        let c = wire.cap_ff_per_um * d * w;
        r * (c / 2.0 + sink_cap_ff) * 1.0e-3
    });
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for d in delays {
        min = min.min(d);
        max = max.max(d);
    }
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_scales_with_width_and_length() {
        let w = WireParams::default();
        let c1 = DelayModel::Capacitance.wire_cap_ff(&w, 100.0, 1);
        let c2 = DelayModel::Capacitance.wire_cap_ff(&w, 100.0, 2);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
        assert!((c1 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn capacitance_model_has_no_rc_term() {
        let w = WireParams::default();
        assert_eq!(DelayModel::Capacitance.wire_rc_ps(&w, 1000.0, 1, 10.0), 0.0);
    }

    #[test]
    fn elmore_term_positive_and_width_reduces_resistance() {
        let w = WireParams::default();
        let d1 = DelayModel::Elmore.wire_rc_ps(&w, 1000.0, 1, 10.0);
        assert!(d1 > 0.0);
        // Doubling the width halves R but doubles C: the C/2 part is
        // unchanged while the fan-out part halves, so total decreases.
        let d2 = DelayModel::Elmore.wire_rc_ps(&w, 1000.0, 2, 10.0);
        assert!(d2 < d1);
    }

    #[test]
    fn wider_clock_wire_shrinks_skew() {
        let wire = WireParams::default();
        let dists = [500.0, 1500.0, 3000.0];
        let s1 = rc_skew_ps(&wire, &dists, 1, 9.0);
        let s2 = rc_skew_ps(&wire, &dists, 2, 9.0);
        assert!(s1 > 0.0);
        assert!(s2 < s1, "2-pitch wire has less skew: {s2} vs {s1}");
    }

    #[test]
    fn skew_zero_for_single_sink() {
        let wire = WireParams::default();
        assert_eq!(rc_skew_ps(&wire, &[1000.0], 1, 5.0), 0.0);
        assert_eq!(rc_skew_ps(&wire, &[], 1, 5.0), 0.0);
    }

    #[test]
    fn elmore_units_are_ps() {
        // 1000 µm at 0.03 Ω/µm = 30 Ω; CL = 200 fF; fanout 0.
        // 30 Ω · 100 fF = 3000 Ω·fF = 3 ps.
        let w = WireParams::default();
        let d = DelayModel::Elmore.wire_rc_ps(&w, 1000.0, 1, 0.0);
        assert!((d - 3.0).abs() < 1e-9);
    }
}
