//! The global delay graph `G_D` (§2.1, Fig. 1).
//!
//! One vertex per circuit terminal. Two edge kinds:
//!
//! * **cell arcs** `t_i → t_o` with delay
//!   `T0(t_i,t_o) + (Σ F_in)·T_f(t_o) + CL(n)·T_d(t_o)`, where `n` is the
//!   net driven by `t_o`. The first two terms are static once the netlist
//!   is fixed; only `CL(n)` changes as the router re-estimates wire
//!   lengths, so each arc caches its static part and its `T_d`;
//! * **net arcs** `t_o → t_sink` with zero delay (the whole net delay is
//!   charged to the driving cell arc, as in the paper's Fig. 1).

use bgr_netlist::{Circuit, NetId, TermId};

/// What kind of `G_D` edge this is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArcKind {
    /// A cell timing arc; `net` is the net loading the output (if driven).
    Cell {
        /// Net driven by the arc's output terminal, if connected.
        net: Option<NetId>,
    },
    /// A driver-to-sink net hop (zero delay).
    Net {
        /// The net being traversed.
        net: NetId,
    },
}

/// One directed edge of `G_D`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayArc {
    /// Source terminal.
    pub from: TermId,
    /// Target terminal.
    pub to: TermId,
    /// Edge kind.
    pub kind: ArcKind,
    /// Static delay part in ps (`T0 + Σ F_in · T_f` for cell arcs, 0 for
    /// net arcs).
    pub static_ps: f64,
    /// Sensitivity to wiring capacitance `T_d` in ps/fF (0 for net arcs).
    pub td_ps_per_ff: f64,
}

impl DelayArc {
    /// The net whose wire delay contributes to this arc, if any.
    #[inline]
    pub fn loading_net(&self) -> Option<NetId> {
        match self.kind {
            ArcKind::Cell { net } => net,
            ArcKind::Net { .. } => None,
        }
    }
}

/// The global delay graph `G_D`.
#[derive(Debug, Clone)]
pub struct DelayGraph {
    arcs: Vec<DelayArc>,
    /// Out-edge indices per terminal.
    out: Vec<Vec<u32>>,
    /// In-edge indices per terminal.
    rev: Vec<Vec<u32>>,
    num_nets: usize,
}

impl DelayGraph {
    /// Builds `G_D` from a circuit.
    pub fn build(circuit: &Circuit) -> Self {
        let num_terms = circuit.terms().len();
        let mut arcs = Vec::new();
        let mut out = vec![Vec::new(); num_terms];
        let mut rev = vec![Vec::new(); num_terms];
        let push = |arcs: &mut Vec<DelayArc>,
                    out: &mut Vec<Vec<u32>>,
                    rev: &mut Vec<Vec<u32>>,
                    arc: DelayArc| {
            let idx = arcs.len() as u32;
            out[arc.from.index()].push(idx);
            rev[arc.to.index()].push(idx);
            arcs.push(arc);
        };
        for cell in circuit.cells() {
            let kind = circuit.library().kind(cell.kind());
            for arc in kind.arcs() {
                let from = cell.terms()[arc.from];
                let to = cell.terms()[arc.to];
                let net = circuit.term(to).net();
                let fanout_ff = net.map(|n| circuit.net_fanout_ff(n)).unwrap_or(0.0);
                push(
                    &mut arcs,
                    &mut out,
                    &mut rev,
                    DelayArc {
                        from,
                        to,
                        kind: ArcKind::Cell { net },
                        static_ps: arc.intrinsic_ps + fanout_ff * kind.fanin_delay_ps_per_ff(),
                        td_ps_per_ff: kind.load_delay_ps_per_ff(),
                    },
                );
            }
        }
        for (i, net) in circuit.nets().iter().enumerate() {
            let id = NetId::new(i);
            for &sink in net.sinks() {
                push(
                    &mut arcs,
                    &mut out,
                    &mut rev,
                    DelayArc {
                        from: net.driver(),
                        to: sink,
                        kind: ArcKind::Net { net: id },
                        static_ps: 0.0,
                        td_ps_per_ff: 0.0,
                    },
                );
            }
        }
        Self {
            arcs,
            out,
            rev,
            num_nets: circuit.nets().len(),
        }
    }

    /// All arcs.
    pub fn arcs(&self) -> &[DelayArc] {
        &self.arcs
    }

    /// Number of terminals (vertices).
    pub fn num_terms(&self) -> usize {
        self.out.len()
    }

    /// Number of nets in the underlying circuit.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Out-edge indices of a terminal.
    pub fn out_arcs(&self, term: TermId) -> &[u32] {
        &self.out[term.index()]
    }

    /// In-edge indices of a terminal.
    pub fn in_arcs(&self, term: TermId) -> &[u32] {
        &self.rev[term.index()]
    }

    /// Delay of arc `idx` in ps given the current per-net wire state.
    ///
    /// `cl_ff[net]` is the routed wiring capacitance estimate; `rc_ps[net]`
    /// is the model-dependent extra term (see
    /// [`crate::DelayModel::wire_rc_ps`]).
    #[inline]
    pub fn arc_delay_ps(&self, idx: u32, cl_ff: &[f64], rc_ps: &[f64]) -> f64 {
        let arc = &self.arcs[idx as usize];
        match arc.loading_net() {
            Some(net) => arc.static_ps + cl_ff[net.index()] * arc.td_ps_per_ff + rc_ps[net.index()],
            None => arc.static_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    fn chain() -> (Circuit, Vec<TermId>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let terms = vec![
            cb.pad_term(a),
            cb.cell_term(u1, "A").unwrap(),
            cb.cell_term(u1, "Y").unwrap(),
            cb.cell_term(u2, "A").unwrap(),
            cb.cell_term(u2, "Y").unwrap(),
            cb.pad_term(y),
        ];
        cb.add_net("n1", terms[0], [terms[1]]).unwrap();
        cb.add_net("n2", terms[2], [terms[3]]).unwrap();
        cb.add_net("n3", terms[4], [terms[5]]).unwrap();
        (cb.finish().unwrap(), terms)
    }

    #[test]
    fn builds_cell_and_net_arcs() {
        let (circuit, terms) = chain();
        let dg = DelayGraph::build(&circuit);
        // 2 cell arcs + 3 net arcs.
        assert_eq!(dg.arcs().len(), 5);
        assert_eq!(dg.out_arcs(terms[0]).len(), 1);
        assert_eq!(dg.in_arcs(terms[5]).len(), 1);
    }

    #[test]
    fn static_part_includes_fanout_load() {
        let (circuit, terms) = chain();
        let dg = DelayGraph::build(&circuit);
        // u1's arc A->Y: T0 = 60, fanout = u2/A = 5 fF, Tf = 2.5.
        let arc_idx = dg.out_arcs(terms[1])[0];
        let arc = &dg.arcs()[arc_idx as usize];
        assert!((arc.static_ps - (60.0 + 5.0 * 2.5)).abs() < 1e-12);
        // u2's arc drives the pad: zero fanout capacitance.
        let arc_idx = dg.out_arcs(terms[3])[0];
        assert!((dg.arcs()[arc_idx as usize].static_ps - 60.0).abs() < 1e-12);
    }

    #[test]
    fn arc_delay_adds_wire_terms() {
        let (circuit, terms) = chain();
        let dg = DelayGraph::build(&circuit);
        let mut cl = vec![0.0; dg.num_nets()];
        let rc = vec![0.0; dg.num_nets()];
        let arc_idx = dg.out_arcs(terms[1])[0];
        let base = dg.arc_delay_ps(arc_idx, &cl, &rc);
        cl[1] = 10.0; // n2 is the net loading u1's output
        let loaded = dg.arc_delay_ps(arc_idx, &cl, &rc);
        // INV Td = 0.45 ps/fF.
        assert!((loaded - base - 4.5).abs() < 1e-12);
    }

    #[test]
    fn net_arcs_are_zero_delay() {
        let (circuit, _) = chain();
        let dg = DelayGraph::build(&circuit);
        let cl = vec![99.0; dg.num_nets()];
        let rc = vec![99.0; dg.num_nets()];
        for (i, arc) in dg.arcs().iter().enumerate() {
            if matches!(arc.kind, ArcKind::Net { .. }) {
                assert_eq!(dg.arc_delay_ps(i as u32, &cl, &rc), 0.0);
            }
        }
    }
}
