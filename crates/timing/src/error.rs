//! Error type for timing analysis.

use bgr_netlist::TermId;

/// Errors produced while building constraint graphs or analyzing timing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimingError {
    /// The constraint's sink is not reachable from its source in `G_D`.
    Unreachable {
        /// Constraint source terminal.
        source: TermId,
        /// Constraint sink terminal.
        sink: TermId,
    },
    /// The constraint subgraph contains a cycle (e.g. a gated-clock loop).
    CyclicConstraint {
        /// Constraint source terminal.
        source: TermId,
        /// Constraint sink terminal.
        sink: TermId,
    },
    /// A terminal id out of range for the circuit.
    UnknownTerm(TermId),
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unreachable { source, sink } => {
                write!(f, "constraint sink {sink} unreachable from source {source}")
            }
            Self::CyclicConstraint { source, sink } => {
                write!(f, "constraint graph {source} -> {sink} contains a cycle")
            }
            Self::UnknownTerm(t) => write!(f, "unknown terminal {t}"),
        }
    }
}

impl std::error::Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TimingError>();
        let err = TimingError::UnknownTerm(TermId::new(3));
        assert!(err.to_string().contains("TermId(3)"));
    }
}
