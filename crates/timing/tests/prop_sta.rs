//! Randomized test: the incremental analyzer's margins always equal a
//! from-scratch recomputation, regardless of the net-length update
//! sequence.

use bgr_netlist::{CellLibrary, CircuitBuilder, NetId, SplitMix64};
use bgr_timing::{DelayModel, PathConstraint, Sta, WireParams};

/// A reconvergent 3-level circuit with two constraints.
fn circuit() -> (bgr_netlist::Circuit, Vec<PathConstraint>) {
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let nor2 = lib.kind_by_name("NOR2").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let a = cb.add_input_pad("a");
    let b = cb.add_input_pad("b");
    let y = cb.add_output_pad("y");
    let z = cb.add_output_pad("z");
    let u0 = cb.add_cell("u0", inv);
    let u1 = cb.add_cell("u1", inv);
    let u2 = cb.add_cell("u2", nor2);
    let u3 = cb.add_cell("u3", inv);
    cb.add_net("na", cb.pad_term(a), [cb.cell_term(u0, "A").unwrap()])
        .unwrap();
    cb.add_net("nb", cb.pad_term(b), [cb.cell_term(u1, "A").unwrap()])
        .unwrap();
    cb.add_net(
        "n0",
        cb.cell_term(u0, "Y").unwrap(),
        [
            cb.cell_term(u2, "A").unwrap(),
            cb.cell_term(u3, "A").unwrap(),
        ],
    )
    .unwrap();
    cb.add_net(
        "n1",
        cb.cell_term(u1, "Y").unwrap(),
        [cb.cell_term(u2, "B").unwrap()],
    )
    .unwrap();
    cb.add_net("ny", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
        .unwrap();
    cb.add_net("nz", cb.cell_term(u3, "Y").unwrap(), [cb.pad_term(z)])
        .unwrap();
    let cons = vec![
        PathConstraint::new("ay", cb.pad_term(a), cb.pad_term(y), 800.0),
        PathConstraint::new("bz", cb.pad_term(b), cb.pad_term(y), 700.0),
    ];
    (cb.finish().unwrap(), cons)
}

#[test]
fn incremental_margins_match_fresh_analyzer() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(0x57A ^ (seed << 6));
        let (circuit, cons) = circuit();
        let model = if rng.next_bool(0.5) {
            DelayModel::Elmore
        } else {
            DelayModel::Capacitance
        };
        let mut sta = Sta::new(&circuit, cons.clone(), model, WireParams::default()).unwrap();
        let mut lengths = vec![0.0; circuit.nets().len()];
        let updates = rng.range_usize(1, 30);
        for _ in 0..updates {
            let net = rng.range_usize(0, 6);
            let len = rng.range_f64(0.0, 5000.0);
            sta.set_net_length(NetId::new(net), len);
            lengths[net] = len;
        }
        // Fresh analyzer fed the same final lengths.
        let mut fresh = Sta::new(&circuit, cons, model, WireParams::default()).unwrap();
        for (i, &len) in lengths.iter().enumerate() {
            fresh.set_net_length(NetId::new(i), len);
        }
        for c in 0..sta.num_constraints() {
            assert!((sta.margin_ps(c) - fresh.margin_ps(c)).abs() < 1e-9);
            assert!((sta.arrival_ps(c) - fresh.arrival_ps(c)).abs() < 1e-9);
        }
    }
}
