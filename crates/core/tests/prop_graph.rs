//! Randomized tests: any sequence of non-bridge deletions keeps the
//! routing graph's terminals connected, and the process always ends in a
//! spanning tree.

use bgr_core::RoutingGraph;
use bgr_layout::{Geometry, PlacementBuilder};
use bgr_netlist::{CellId, CellLibrary, CircuitBuilder, NetId, SplitMix64};

/// Builds a multi-fanout net across `rows` rows with `sinks` sinks.
fn build_graph(rows: usize, sinks: usize, xs: &[i32]) -> RoutingGraph {
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let drv = cb.add_cell("drv", inv);
    let sink_cells: Vec<CellId> = (0..sinks)
        .map(|i| cb.add_cell(format!("s{i}"), inv))
        .collect();
    let net = cb
        .add_net(
            "n",
            cb.cell_term(drv, "Y").unwrap(),
            sink_cells
                .iter()
                .map(|&c| cb.cell_term(c, "A").unwrap())
                .collect::<Vec<_>>(),
        )
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), rows);
    pb.place_at(0, drv, xs[0].max(0), 3).unwrap();
    for (i, &c) in sink_cells.iter().enumerate() {
        let row = (i + 1) % rows;
        // Spread sinks; collisions avoided by striding.
        pb.place_at(row, c, 10 + 10 * i as i32 + xs[i + 1].max(0) % 5, 3)
            .unwrap();
    }
    let placement = pb.finish(&circuit).unwrap();
    // One feedthrough per row strictly between min and max rows used.
    let feeds: Vec<(usize, i32)> = (1..rows.saturating_sub(1))
        .map(|r| (r, 5 + r as i32))
        .collect();
    let _ = net;
    RoutingGraph::build(&circuit, &placement, NetId::new(0), &feeds, 30.0)
}

#[test]
fn random_deletion_order_always_yields_a_tree() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0x6A7 ^ (seed << 8));
        let rows = rng.range_usize(1, 4);
        let sinks = rng.range_usize(1, 5);
        let xs: Vec<i32> = (0..6).map(|_| rng.range_i32(0, 8)).collect();
        let mut g = build_graph(rows, sinks, &xs);
        if !g.terminals_connected() {
            continue;
        }
        g.prune_dangling();
        g.recompute_bridges();
        loop {
            let candidates: Vec<u32> = g.non_bridge_edges().collect();
            if candidates.is_empty() {
                break;
            }
            let pick = rng.range_usize(0, candidates.len());
            g.delete_edge(candidates[pick]);
            g.prune_dangling();
            g.recompute_bridges();
            assert!(g.terminals_connected(), "terminals stay connected");
        }
        assert!(g.is_tree());
        // A tree over k alive vertices has exactly k-1 alive edges.
        let alive_verts: std::collections::HashSet<u32> = g
            .alive_edges()
            .flat_map(|e| [g.edges()[e as usize].a, g.edges()[e as usize].b])
            .collect();
        if !alive_verts.is_empty() {
            assert_eq!(g.alive_count(), alive_verts.len() - 1);
        }
    }
}
