//! Randomized differential tests: the incremental (segment-tree) density
//! map must agree with a naive per-column recomputation oracle under any
//! sequence of add/remove/promote operations — on every aggregate
//! (`C_M`, `NC_M`, `C_m`, `NC_m`), every interval query (`edge_density`),
//! and the hottest-column scan.

use bgr_core::density::DensityMap;
use bgr_layout::ChannelId;
use bgr_netlist::SplitMix64;

const CHANNELS: usize = 3;
const W: usize = 30;

/// Naive oracle: a flat span list, recomputed per column on demand.
#[derive(Default)]
struct Oracle {
    /// `(channel, x1, x2, w, bridge)` for every live span.
    spans: Vec<(usize, i32, i32, i32, bool)>,
}

impl Oracle {
    fn columns(&self, c: usize) -> ([i32; W], [i32; W]) {
        let mut d_max = [0i32; W];
        let mut d_min = [0i32; W];
        for &(oc, x1, x2, w, bridge) in &self.spans {
            if oc != c {
                continue;
            }
            for x in x1.max(0)..x2.min(W as i32) {
                d_max[x as usize] += w;
                if bridge {
                    d_min[x as usize] += w;
                }
            }
        }
        (d_max, d_min)
    }
}

/// `(max, count-of-max)` with the 0-density convention: an all-zero
/// region reports count 0.
fn agg(cols: &[i32]) -> (i32, i32) {
    let m = cols.iter().copied().max().unwrap_or(0);
    if m == 0 {
        (0, 0)
    } else {
        (m, cols.iter().filter(|&&d| d == m).count() as i32)
    }
}

fn check_all(map: &DensityMap, oracle: &Oracle, rng: &mut SplitMix64) {
    for c in 0..CHANNELS {
        let ch = ChannelId::new(c);
        let (d_max, d_min) = oracle.columns(c);
        let (cm, ncm) = agg(&d_max);
        let (cn, ncn) = agg(&d_min);
        assert_eq!(map.c_max(ch), cm, "C_M channel {c}");
        assert_eq!(map.nc_max(ch), ncm, "NC_M channel {c}");
        assert_eq!(map.c_min(ch), cn, "C_m channel {c}");
        assert_eq!(map.nc_min(ch), ncn, "NC_m channel {c}");
        // A few random interval queries per channel, including clamps.
        for _ in 0..4 {
            let a = rng.range_i32(-5, W as i32 + 5);
            let b = rng.range_i32(-5, W as i32 + 5);
            let (x1, x2) = (a.min(b), a.max(b));
            let ed = map.edge_density(ch, x1, x2);
            let lo = x1.clamp(0, W as i32) as usize;
            let hi = x2.clamp(0, W as i32) as usize;
            if lo >= hi {
                assert_eq!((ed.d_max, ed.nd_max, ed.d_min, ed.nd_min), (0, 0, 0, 0));
                continue;
            }
            // `edge_density` counts columns attaining the window max even
            // when that max is 0 (the window genuinely has that many
            // zero-density columns); only the *channel* aggregates use
            // the count-0 convention.
            let wmax = *d_max[lo..hi].iter().max().unwrap();
            let wcnt = d_max[lo..hi].iter().filter(|&&d| d == wmax).count() as i32;
            assert_eq!((ed.d_max, ed.nd_max), (wmax, wcnt), "D_M over [{x1},{x2})");
            let nmax = *d_min[lo..hi].iter().max().unwrap();
            let ncnt = d_min[lo..hi].iter().filter(|&&d| d == nmax).count() as i32;
            assert_eq!((ed.d_min, ed.nd_min), (nmax, ncnt), "D_m over [{x1},{x2})");
        }
    }
    // Hottest column agrees with a full scan of the oracle.
    let mut best: Option<(usize, usize, i32)> = None;
    for c in 0..CHANNELS {
        let (d_max, _) = oracle.columns(c);
        let (cm, _) = agg(&d_max);
        if cm == 0 {
            continue;
        }
        if best.map(|(_, _, d)| cm > d).unwrap_or(true) {
            let x = d_max.iter().position(|&d| d == cm).unwrap();
            best = Some((c, x, cm));
        }
    }
    let got = map.hottest_column();
    assert_eq!(
        got.map(|(c, x, d)| (c.index(), x, d)),
        best,
        "hottest column"
    );
    // snapshot_max reproduces the exact column vectors.
    let snap = map.snapshot_max();
    for (c, cols) in snap.iter().enumerate() {
        let (d_max, _) = oracle.columns(c);
        assert_eq!(*cols, d_max.to_vec(), "snapshot channel {c}");
    }
}

#[test]
fn matches_naive_oracle_on_random_op_sequences() {
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(0xD1FF ^ seed);
        let mut map = DensityMap::new(CHANNELS, W);
        let mut oracle = Oracle::default();
        let ops = rng.range_usize(1, 60);
        for _ in 0..ops {
            match rng.range_usize(0, 3) {
                0 => {
                    let c = rng.range_usize(0, CHANNELS);
                    let a = rng.range_i32(0, W as i32);
                    let b = rng.range_i32(0, W as i32);
                    let (x1, x2) = (a.min(b), a.max(b));
                    let w = rng.range_i32(1, 3);
                    let bridge = rng.next_bool(0.5);
                    map.add_span(ChannelId::new(c), x1, x2, w, bridge);
                    oracle.spans.push((c, x1, x2, w, bridge));
                }
                1 => {
                    // Promote a random live non-bridge span.
                    let nb: Vec<usize> = (0..oracle.spans.len())
                        .filter(|&i| !oracle.spans[i].4)
                        .collect();
                    if nb.is_empty() {
                        continue;
                    }
                    let i = nb[rng.range_usize(0, nb.len())];
                    let (c, x1, x2, w, _) = oracle.spans[i];
                    map.promote_span(ChannelId::new(c), x1, x2, w);
                    oracle.spans[i].4 = true;
                }
                _ => {
                    if oracle.spans.is_empty() {
                        continue;
                    }
                    let i = rng.range_usize(0, oracle.spans.len());
                    let (c, x1, x2, w, bridge) = oracle.spans.remove(i);
                    map.remove_span(ChannelId::new(c), x1, x2, w, bridge);
                }
            }
            check_all(&map, &oracle, &mut rng);
        }
    }
}

#[test]
fn spans_clamped_outside_chip_match_oracle() {
    let mut map = DensityMap::new(1, W);
    let mut oracle = Oracle::default();
    map.add_span(ChannelId::new(0), -10, W as i32 + 10, 2, true);
    oracle.spans.push((0, -10, W as i32 + 10, 2, true));
    map.add_span(ChannelId::new(0), 5, 9, 1, false);
    oracle.spans.push((0, 5, 9, 1, false));
    let ch = ChannelId::new(0);
    let (d_max, d_min) = oracle.columns(0);
    assert_eq!(map.c_max(ch), *d_max.iter().max().unwrap());
    assert_eq!(map.c_min(ch), *d_min.iter().max().unwrap());
    map.remove_span(ChannelId::new(0), -10, W as i32 + 10, 2, true);
    map.remove_span(ChannelId::new(0), 5, 9, 1, false);
    assert_eq!(map.c_max(ch), 0);
    assert_eq!(map.nc_max(ch), 0, "empty channel reports count 0");
}
