//! Property tests: the incremental density map must agree with a naive
//! recomputation oracle under any sequence of add/remove/promote ops.

use bgr_core::density::DensityMap;
use bgr_layout::ChannelId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Add { c: usize, x1: i32, x2: i32, w: i32, bridge: bool },
    Promote(usize),
    Remove(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<(usize, i32, i32, i32, bool, u8)>> {
    proptest::collection::vec(
        (0usize..3, 0i32..30, 0i32..30, 1i32..3, any::<bool>(), 0u8..3),
        1..40,
    )
}

proptest! {
    #[test]
    fn matches_naive_oracle(raw in arb_ops()) {
        const W: usize = 30;
        let mut map = DensityMap::new(3, W);
        // Track live spans so removals are valid.
        let mut live: Vec<(usize, i32, i32, i32, bool)> = Vec::new();
        let mut ops: Vec<Op> = Vec::new();
        for (c, a, b, w, bridge, kind) in raw {
            let (x1, x2) = (a.min(b), a.max(b));
            match kind {
                0 => {
                    live.push((c, x1, x2, w, bridge));
                    ops.push(Op::Add { c, x1, x2, w, bridge });
                }
                1 => {
                    // Promote a random live non-bridge span.
                    if let Some(i) = live.iter().position(|s| !s.4) {
                        live[i].4 = true;
                        ops.push(Op::Promote(i));
                    }
                }
                _ => {
                    if !live.is_empty() {
                        ops.push(Op::Remove(live.len() - 1));
                        live.pop();
                    }
                }
            }
        }
        // Replay ops on the map; keep an oracle span list.
        let mut oracle: Vec<(usize, i32, i32, i32, bool)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Add { c, x1, x2, w, bridge } => {
                    map.add_span(ChannelId::new(c), x1, x2, w, bridge);
                    oracle.push((c, x1, x2, w, bridge));
                }
                Op::Promote(i) => {
                    let (c, x1, x2, w, _) = oracle[i];
                    map.promote_span(ChannelId::new(c), x1, x2, w);
                    oracle[i].4 = true;
                }
                Op::Remove(i) => {
                    let (c, x1, x2, w, bridge) = oracle[i];
                    map.remove_span(ChannelId::new(c), x1, x2, w, bridge);
                    oracle.remove(i);
                }
            }
        }
        // Compare aggregates per channel against the oracle.
        for c in 0..3 {
            let mut d_max = [0i32; W];
            let mut d_min = [0i32; W];
            for &(oc, x1, x2, w, bridge) in &oracle {
                if oc != c { continue; }
                for x in x1.max(0)..x2.min(W as i32) {
                    d_max[x as usize] += w;
                    if bridge { d_min[x as usize] += w; }
                }
            }
            let cm = *d_max.iter().max().unwrap();
            let ncm = if cm == 0 { 0 } else { d_max.iter().filter(|&&d| d == cm).count() as i32 };
            let cn = *d_min.iter().max().unwrap();
            let ncn = if cn == 0 { 0 } else { d_min.iter().filter(|&&d| d == cn).count() as i32 };
            prop_assert_eq!(map.c_max(ChannelId::new(c)), cm);
            prop_assert_eq!(map.nc_max(ChannelId::new(c)), ncm);
            prop_assert_eq!(map.c_min(ChannelId::new(c)), cn);
            prop_assert_eq!(map.nc_min(ChannelId::new(c)), ncn);
            // Edge density over a window agrees with the oracle too.
            let ed = map.edge_density(ChannelId::new(c), 5, 15);
            let window = &d_max[5..15];
            let wmax = *window.iter().max().unwrap();
            if wmax > 0 {
                prop_assert_eq!(ed.d_max, wmax);
                prop_assert_eq!(ed.nd_max, window.iter().filter(|&&d| d == wmax).count() as i32);
            }
        }
    }
}
