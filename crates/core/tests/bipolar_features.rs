//! Integration tests for the §4 bipolar-specific features at router
//! level: lockstep differential pairs, multi-pitch wires in density and
//! slot assignment, wide-net feed-cell insertion with width flags.

use bgr_core::{GlobalRouter, RouterConfig, Segment};
use bgr_layout::{Geometry, PlacementBuilder};
use bgr_netlist::{CellLibrary, CircuitBuilder, NetId};

/// A DBUF pair crossing one row: homogeneity must survive feedthroughs.
#[test]
fn diff_pair_lockstep_across_rows() {
    let lib = CellLibrary::ecl();
    let dbuf = lib.kind_by_name("DBUF").unwrap();
    let feed = lib.kind_by_name("FEED1").unwrap();
    let inv = lib.kind_by_name("INV").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let tx = cb.add_cell("tx", dbuf);
    let rx = cb.add_cell("rx", dbuf);
    let mid = cb.add_cell("mid", inv);
    let f0 = cb.add_cell("f0", feed);
    let f1 = cb.add_cell("f1", feed);
    let f2 = cb.add_cell("f2", feed);
    let f3 = cb.add_cell("f3", feed);
    let p = cb
        .add_net(
            "p",
            cb.cell_term(tx, "Y").unwrap(),
            [cb.cell_term(rx, "A").unwrap()],
        )
        .unwrap();
    let n = cb
        .add_net(
            "n",
            cb.cell_term(tx, "YN").unwrap(),
            [cb.cell_term(rx, "AN").unwrap()],
        )
        .unwrap();
    cb.mark_diff_pair(p, n).unwrap();
    // Keep `mid` connected so the circuit has another net.
    cb.add_net(
        "m",
        cb.cell_term(mid, "Y").unwrap(),
        [cb.cell_term(tx, "A").unwrap()],
    )
    .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 3);
    pb.append_with_width(0, tx, 5);
    pb.place_at(1, mid, 0, 3).unwrap();
    pb.place_at(1, f0, 6, 1).unwrap();
    pb.place_at(1, f1, 7, 1).unwrap();
    pb.place_at(1, f2, 8, 1).unwrap();
    pb.place_at(1, f3, 9, 1).unwrap();
    pb.append_with_width(2, rx, 5);
    let placement = pb.finish(&circuit).unwrap();
    let routed = GlobalRouter::new(RouterConfig::default())
        .route(circuit, placement, vec![])
        .unwrap();
    assert_eq!(routed.result.stats.diff_pairs_locked, 1);
    let tp = &routed.result.trees[p.index()];
    let tn = &routed.result.trees[n.index()];
    // Congruent trees: same number of segments, feeds one pitch apart.
    assert_eq!(tp.segments.len(), tn.segments.len());
    let feed_x = |t: &bgr_core::NetTree| {
        t.segments
            .iter()
            .find_map(|s| match s {
                Segment::Feed { x, .. } => Some(*x),
                _ => None,
            })
            .expect("pair crosses row 1 via a feedthrough")
    };
    assert_eq!(feed_x(tn), feed_x(tp) + 1, "adjacent feed columns");
    assert!((tp.length_um - tn.length_um).abs() < 1e-9);
}

/// A 2-pitch net must occupy a 2-wide slot window and count double in
/// density.
#[test]
fn multi_pitch_net_gets_adjacent_slots_and_double_density() {
    let lib = CellLibrary::ecl();
    let drv = lib.kind_by_name("CLKDRV").unwrap();
    let inv = lib.kind_by_name("INV").unwrap();
    let feed = lib.kind_by_name("FEED2").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let u1 = cb.add_cell("u1", drv);
    let u2 = cb.add_cell("u2", inv);
    let f = cb.add_cell("f", feed);
    let wide = cb
        .add_wide_net(
            "w",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
            2,
        )
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 3);
    pb.append_with_width(0, u1, 10);
    pb.place_at(1, f, 4, 2).unwrap();
    pb.append_with_width(2, u2, 3);
    let placement = pb.finish(&circuit).unwrap();
    let routed = GlobalRouter::new(RouterConfig::unconstrained())
        .route(circuit, placement, vec![])
        .unwrap();
    let tree = &routed.result.trees[wide.index()];
    assert_eq!(tree.width_pitches, 2);
    // The feedthrough sits on the FEED2 cell (both its slots).
    let feed_seg = tree
        .segments
        .iter()
        .find_map(|s| match s {
            Segment::Feed { row, x } => Some((*row, *x)),
            _ => None,
        })
        .expect("wide net crosses row 1");
    assert_eq!(feed_seg, (1, 4));
    // Density counts the width: some channel must reach 2.
    assert!(routed.result.channel_tracks.iter().any(|&t| t >= 2));
}

/// Wide-net shortfall: no 2-adjacent window exists, so insertion must
/// create a flagged group and re-assignment must claim it.
#[test]
fn wide_net_shortfall_inserts_flagged_group() {
    let lib = CellLibrary::ecl();
    let drv = lib.kind_by_name("CLKDRV").unwrap();
    let inv = lib.kind_by_name("INV").unwrap();
    let feed1 = lib.kind_by_name("FEED1").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let u1 = cb.add_cell("u1", drv);
    let u2 = cb.add_cell("u2", inv);
    let blockl = cb.add_cell("bl", inv);
    let f_lone = cb.add_cell("fl", feed1); // a single slot: not enough for w=2
    let wide = cb
        .add_wide_net(
            "w",
            cb.cell_term(u1, "Y").unwrap(),
            [cb.cell_term(u2, "A").unwrap()],
            2,
        )
        .unwrap();
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 3);
    pb.append_with_width(0, u1, 10);
    pb.place_at(1, blockl, 0, 3).unwrap();
    pb.place_at(1, f_lone, 5, 1).unwrap();
    pb.append_with_width(2, u2, 3);
    let placement = pb.finish(&circuit).unwrap();
    let routed = GlobalRouter::new(RouterConfig::unconstrained())
        .route(circuit, placement, vec![])
        .unwrap();
    assert!(
        routed.result.stats.feed_cells_inserted >= 2,
        "a 2-wide group must be inserted"
    );
    let tree = &routed.result.trees[wide.index()];
    assert!(tree
        .segments
        .iter()
        .any(|s| matches!(s, Segment::Feed { row: 1, .. })));
    routed.placement.validate(&routed.circuit).unwrap();
}

/// Elmore model routes successfully and reports sane timing.
#[test]
fn elmore_model_routes() {
    use bgr_timing::{DelayModel, PathConstraint};
    let lib = CellLibrary::ecl();
    let inv = lib.kind_by_name("INV").unwrap();
    let mut cb = CircuitBuilder::new(lib);
    let a = cb.add_input_pad("a");
    let y = cb.add_output_pad("y");
    let u = cb.add_cell("u", inv);
    cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u, "A").unwrap()])
        .unwrap();
    cb.add_net("n1", cb.cell_term(u, "Y").unwrap(), [cb.pad_term(y)])
        .unwrap();
    let cons = vec![PathConstraint::new(
        "p",
        cb.pad_term(a),
        cb.pad_term(y),
        400.0,
    )];
    let circuit = cb.finish().unwrap();
    let mut pb = PlacementBuilder::new(Geometry::default(), 1);
    pb.append_with_width(0, bgr_netlist::CellId::new(0), 3);
    pb.place_pad_bottom(a, 0);
    pb.place_pad_top(y, 2);
    let placement = pb.finish(&circuit).unwrap();
    let cfg = RouterConfig {
        delay_model: DelayModel::Elmore,
        ..RouterConfig::default()
    };
    let routed = GlobalRouter::new(cfg)
        .route(circuit, placement, cons)
        .unwrap();
    assert_eq!(routed.result.timing.constraints.len(), 1);
    assert!(routed.result.timing.max_arrival_ps() > 60.0);
    let _ = NetId::new(0);
}
