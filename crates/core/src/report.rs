//! Human-readable congestion and trace reporting.
//!
//! The paper's heuristics are all about "keeping track of ... channel
//! densities"; this module renders the final density profile the way a
//! routing engineer would want to eyeball it: one histogram bar per
//! channel plus the hot columns. [`TraceSummary`] does the same for a
//! [`RouteTrace`]: which criterion tier decided the deletions, and where
//! the route spent its time and work.

use crate::probe::{Counter, Hist, PhaseSpan, RouteTrace, TraceEvent, HIST_BUCKETS};
use crate::result::{RoutingResult, Segment};
use crate::select::DecidingTier;

/// Per-channel congestion summary derived from a routing result.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionReport {
    /// Per channel: `(track estimate, hottest column, columns at max)`.
    pub channels: Vec<ChannelCongestion>,
}

/// Congestion of one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelCongestion {
    /// Channel index.
    pub channel: usize,
    /// Density maximum (`C_M`, the track estimate).
    pub tracks: i32,
    /// Leftmost column attaining the maximum.
    pub hottest_x: Option<i32>,
    /// Number of columns attaining the maximum.
    pub width_at_max: usize,
    /// Total trunk wirelength in the channel, in pitch·spans.
    pub trunk_pitches: i64,
}

impl CongestionReport {
    /// Builds the report from a routing result and the chip width in
    /// pitches.
    pub fn from_result(result: &RoutingResult, width_pitches: usize) -> Self {
        let num_channels = result.channel_tracks.len();
        let mut density = vec![vec![0i32; width_pitches]; num_channels];
        let mut trunk_pitches = vec![0i64; num_channels];
        for tree in &result.trees {
            for seg in &tree.segments {
                if let Segment::Trunk { channel, x1, x2 } = *seg {
                    let c = channel.index();
                    trunk_pitches[c] += (x2 - x1) as i64 * tree.width_pitches as i64;
                    for x in x1.max(0)..x2.min(width_pitches as i32) {
                        density[c][x as usize] += tree.width_pitches as i32;
                    }
                }
            }
        }
        let channels = density
            .into_iter()
            .enumerate()
            .map(|(c, d)| {
                let max = d.iter().copied().max().unwrap_or(0);
                ChannelCongestion {
                    channel: c,
                    tracks: max,
                    hottest_x: if max > 0 {
                        d.iter().position(|&v| v == max).map(|x| x as i32)
                    } else {
                        None
                    },
                    width_at_max: if max > 0 {
                        d.iter().filter(|&&v| v == max).count()
                    } else {
                        0
                    },
                    trunk_pitches: trunk_pitches[c],
                }
            })
            .collect();
        Self { channels }
    }

    /// Renders an ASCII histogram, one bar per channel.
    pub fn to_ascii(&self) -> String {
        let max = self.channels.iter().map(|c| c.tracks).max().unwrap_or(0);
        let mut out = String::new();
        for ch in &self.channels {
            let bar_len = if max > 0 {
                (ch.tracks as usize * 50) / max as usize
            } else {
                0
            };
            out.push_str(&format!(
                "channel {:>3} |{:<50}| {:>4} tracks",
                ch.channel,
                "#".repeat(bar_len),
                ch.tracks
            ));
            if let Some(x) = ch.hottest_x {
                out.push_str(&format!("  (peak at x={x}, {} cols)", ch.width_at_max));
            }
            out.push('\n');
        }
        out
    }
}

/// Human-readable digest of a [`RouteTrace`]: the criterion-decision
/// breakdown and the per-phase time/work profile.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Deletion-loop selections.
    pub selections: usize,
    /// Total edges deleted (selections + cascades + prunes).
    pub deletions: usize,
    /// Nets whose graph reached tree state.
    pub nets_completed: usize,
    /// Improvement reroutes kept.
    pub reroutes_accepted: usize,
    /// Improvement reroutes reverted.
    pub reroutes_rejected: usize,
    /// Feed-cell groups inserted (§4.3).
    pub feed_groups: usize,
    /// Selections per deciding tier, in [`DecidingTier::ALL`] order.
    pub tier_breakdown: Vec<(DecidingTier, usize)>,
    /// Completed phase spans, in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Final counter totals, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Histograms, indexed by [`Hist::index`] then bucket.
    pub hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
}

impl TraceSummary {
    /// Digests a trace.
    pub fn from_trace(trace: &RouteTrace) -> Self {
        let mut nets_completed = 0;
        let mut reroutes_accepted = 0;
        let mut reroutes_rejected = 0;
        let mut feed_groups = 0;
        for ev in &trace.events {
            match ev {
                TraceEvent::NetBecameTree { .. } => nets_completed += 1,
                TraceEvent::RerouteAccepted { .. } => reroutes_accepted += 1,
                TraceEvent::RerouteRejected { .. } => reroutes_rejected += 1,
                TraceEvent::FeedCellsInserted { .. } => feed_groups += 1,
                _ => {}
            }
        }
        Self {
            selections: trace.selections(),
            deletions: trace.deletions(),
            nets_completed,
            reroutes_accepted,
            reroutes_rejected,
            feed_groups,
            tier_breakdown: trace.tier_breakdown(),
            phases: trace.spans.clone(),
            counters: trace.counters,
            hists: trace.hists,
        }
    }

    /// Renders the summary as ASCII tables.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deletion loop: {} selections, {} edges deleted, {} nets completed\n",
            self.selections, self.deletions, self.nets_completed
        ));
        out.push_str(&format!(
            "improvement:   {} reroutes kept, {} reverted; {} feed-cell groups inserted\n\n",
            self.reroutes_accepted, self.reroutes_rejected, self.feed_groups
        ));

        out.push_str("deciding criterion tier      selections\n");
        let total = self.selections.max(1);
        for &(tier, n) in &self.tier_breakdown {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat((n * 30).div_ceil(total));
            out.push_str(&format!("{:<24} {:>8}  {}\n", tier.label(), n, bar));
        }
        out.push('\n');

        out.push_str("phase              wall        events  key evals\n");
        for span in &self.phases {
            out.push_str(&format!(
                "{:<16} {:>9.3?} {:>9} {:>10}\n",
                span.phase.label(),
                span.wall,
                span.events_len,
                span.counters[Counter::KeyEval.index()],
            ));
        }
        out.push('\n');

        out.push_str("counters\n");
        for c in Counter::ALL {
            out.push_str(&format!(
                "  {:<26} {:>12}\n",
                c.label(),
                self.counters[c.index()]
            ));
        }
        out.push('\n');

        for h in Hist::ALL {
            out.push_str(&format!("{}\n", h.label()));
            let buckets = &self.hists[h.index()];
            let max = buckets.iter().copied().max().unwrap_or(0).max(1);
            for (i, &n) in buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let bar = "#".repeat(((n * 30).div_ceil(max)) as usize);
                out.push_str(&format!(
                    "  {:>6} {:>10}  {}\n",
                    Hist::bucket_label(i),
                    n,
                    bar
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::NetTree;
    use bgr_layout::ChannelId;

    fn result_with(trees: Vec<NetTree>, channels: usize) -> RoutingResult {
        RoutingResult {
            channel_tracks: vec![0; channels],
            net_lengths_um: vec![0.0; trees.len()],
            total_length_um: 0.0,
            timing: Default::default(),
            violations: None,
            stats: Default::default(),
            trees,
        }
    }

    fn tree(segs: Vec<Segment>, width: u32) -> NetTree {
        NetTree {
            segments: segs,
            length_um: 0.0,
            width_pitches: width,
            terminal_dists_um: Vec::new(),
        }
    }

    #[test]
    fn densities_and_peaks() {
        let trees = vec![
            tree(
                vec![Segment::Trunk {
                    channel: ChannelId::new(0),
                    x1: 0,
                    x2: 4,
                }],
                1,
            ),
            tree(
                vec![Segment::Trunk {
                    channel: ChannelId::new(0),
                    x1: 2,
                    x2: 6,
                }],
                2,
            ),
        ];
        let report = CongestionReport::from_result(&result_with(trees, 1), 10);
        let ch = &report.channels[0];
        // Columns: 1 1 3 3 2 2 0...
        assert_eq!(ch.tracks, 3);
        assert_eq!(ch.hottest_x, Some(2));
        assert_eq!(ch.width_at_max, 2);
        assert_eq!(ch.trunk_pitches, 4 + 8);
    }

    #[test]
    fn empty_channel_reports_zero() {
        let report = CongestionReport::from_result(&result_with(vec![], 2), 10);
        assert_eq!(report.channels.len(), 2);
        assert_eq!(report.channels[1].tracks, 0);
        assert_eq!(report.channels[1].hottest_x, None);
    }

    #[test]
    fn trace_summary_digests_a_trace() {
        use crate::probe::{CollectingProbe, Phase, Probe};
        use bgr_netlist::NetId;
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::DeletionSelected {
            net: NetId::new(0),
            edge: 1,
            tier: DecidingTier::Cd,
        });
        p.event(TraceEvent::Pruned {
            net: NetId::new(0),
            count: 2,
        });
        p.event(TraceEvent::NetBecameTree { net: NetId::new(0) });
        p.count(Counter::KeyEval, 7);
        p.sample(Hist::DirtySetSize, 3);
        p.phase_exit(Phase::InitialRouting);
        let summary = TraceSummary::from_trace(&p.finish());
        assert_eq!(summary.selections, 1);
        assert_eq!(summary.deletions, 3); // selection + 2 pruned
        assert_eq!(summary.nets_completed, 1);
        assert_eq!(summary.phases.len(), 1);
        let text = summary.to_ascii();
        assert!(text.contains("cd"));
        assert!(text.contains("initial_routing"));
        assert!(text.contains("key_evals"));
        assert!(text.contains("dirty_set_size"));
    }

    #[test]
    fn ascii_bars_scale() {
        let trees = vec![tree(
            vec![Segment::Trunk {
                channel: ChannelId::new(1),
                x1: 0,
                x2: 3,
            }],
            4,
        )];
        let report = CongestionReport::from_result(&result_with(trees, 2), 5);
        let text = report.to_ascii();
        assert!(text.contains("channel   0"));
        assert!(text.contains("channel   1"));
        assert!(text.contains("4 tracks"));
        // Channel 1 has the 50-char full bar, channel 0 an empty one.
        assert!(text.contains(&"#".repeat(50)));
    }
}
