//! Structured observability for the deletion engine.
//!
//! The router is a long sequence of heuristic decisions — ranked
//! criterion comparisons (§3.3–§3.4), three rip-up phases (§4.2),
//! feed-cell insertion (§4.3) — and every performance hypothesis about
//! it (parallel re-keying, sharded scoreboards, tighter density
//! invalidation) is an argument about *which* of those decisions
//! dominate. This module defines the instrumentation contract that
//! makes them measurable without giving up the engine's two core
//! properties:
//!
//! * **Zero cost when off.** [`Probe`] is statically dispatched and the
//!   default [`NoopProbe`] has empty inline bodies plus
//!   [`Probe::ENABLED`]` == false`, so instrumented call sites (and any
//!   extra work done *only* to feed the probe, like runner-up tracking
//!   for decision provenance) compile away entirely.
//! * **Determinism.** The [`TraceEvent`] stream is a pure function of
//!   the inputs and the configuration: it contains no wall-clock, no
//!   allocation addresses, and nothing strategy-dependent — the
//!   [`crate::SelectionStrategy::FullRescan`] oracle and the default
//!   scoreboard emit **identical** event streams (proven by
//!   `tests/trace_determinism.rs`). Wall-clock lives only in
//!   [`PhaseSpan`]s, and strategy-dependent diagnostics (re-keys, heap
//!   pops, cache hits) live only in [`Counter`]s / [`Hist`]ograms.
//!
//! [`CollectingProbe`] records everything into a [`RouteTrace`];
//! `bgr_io::write_trace_jsonl` serializes it and
//! [`crate::report::TraceSummary`] renders it for humans.

use std::time::{Duration, Instant};

use bgr_netlist::NetId;

use crate::select::DecidingTier;

/// The router's instrumented phases (Fig. 2 lines 01, 02, 04–07, 08,
/// 09, 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Feedthrough assignment with §4.3 feed-cell insertion (line 01).
    FeedAssign,
    /// Routing-graph construction, density probe pass and STA build
    /// (lines 02–03).
    GraphBuild,
    /// The main deletion loop (lines 04–07).
    InitialRouting,
    /// Constraint-violation recovery (§3.5 phase 1, line 08).
    RecoverViolate,
    /// Delay improvement (§3.5 phase 2, line 09).
    ImproveDelay,
    /// Area improvement (§3.5 phase 3, line 10).
    ImproveArea,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::FeedAssign,
        Phase::GraphBuild,
        Phase::InitialRouting,
        Phase::RecoverViolate,
        Phase::ImproveDelay,
        Phase::ImproveArea,
    ];

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Phase::FeedAssign => "feed_assign",
            Phase::GraphBuild => "graph_build",
            Phase::InitialRouting => "initial_routing",
            Phase::RecoverViolate => "recover_violate",
            Phase::ImproveDelay => "improve_delay",
            Phase::ImproveArea => "improve_area",
        }
    }
}

/// Why the scoreboard re-keyed a net after a deletion (the dirty-set
/// clauses of the invalidation contract — see `Engine::run_deletion`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RekeyCause {
    /// The net's own graph changed (deleted net or cascaded partner).
    Graph,
    /// A touched channel's aggregates (`C_M/NC_M/C_m/NC_m`) moved, so
    /// every key referencing the channel changed.
    AggregateMoved,
    /// Aggregates held but the net's trunk interval overlaps a touched
    /// span (its window query reads the mutated profile).
    SpanOverlap,
    /// The net belongs to a constraint whose margins were refreshed.
    Constraint,
}

impl RekeyCause {
    /// Every cause, in dirty-set derivation order.
    pub const ALL: [RekeyCause; 4] = [
        RekeyCause::Graph,
        RekeyCause::AggregateMoved,
        RekeyCause::SpanOverlap,
        RekeyCause::Constraint,
    ];

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            RekeyCause::Graph => "graph",
            RekeyCause::AggregateMoved => "aggregate_moved",
            RekeyCause::SpanOverlap => "span_overlap",
            RekeyCause::Constraint => "constraint",
        }
    }

    fn index(self) -> usize {
        match self {
            RekeyCause::Graph => 0,
            RekeyCause::AggregateMoved => 1,
            RekeyCause::SpanOverlap => 2,
            RekeyCause::Constraint => 3,
        }
    }

    /// The aggregated counter this cause feeds.
    pub fn counter(self) -> Counter {
        match self {
            RekeyCause::Graph => Counter::RekeyGraph,
            RekeyCause::AggregateMoved => Counter::RekeyAggregate,
            RekeyCause::SpanOverlap => Counter::RekeySpan,
            RekeyCause::Constraint => Counter::RekeyConstraint,
        }
    }
}

/// Per-cause re-key totals, indexed by [`RekeyCause`] (replaces the
/// former magic-index `[usize; 4]` of `RouteStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RekeyCauses {
    counts: [usize; 4],
}

impl RekeyCauses {
    /// Records one re-key attributed to `cause`.
    pub fn record(&mut self, cause: RekeyCause) {
        self.counts[cause.index()] += 1;
    }

    /// Re-keys attributed to `cause`.
    pub fn of(&self, cause: RekeyCause) -> usize {
        self.counts[cause.index()]
    }

    /// Total re-keys across all causes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Raw counts in [`RekeyCause::ALL`] order (the checkpoint codec's
    /// wire form).
    pub fn counts(&self) -> [usize; 4] {
        self.counts
    }

    /// Rebuilds the table from raw counts in [`RekeyCause::ALL`] order
    /// (checkpoint restore).
    pub fn from_counts(counts: [usize; 4]) -> Self {
        Self { counts }
    }

    /// Element-wise sum — merges a resumed slice's counts into the
    /// totals carried by a checkpoint.
    pub fn merged(&self, other: &Self) -> Self {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(other.counts) {
            *c += o;
        }
        Self { counts }
    }

    /// `(cause, count)` pairs in [`RekeyCause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (RekeyCause, usize)> + '_ {
        RekeyCause::ALL.iter().map(|&c| (c, self.of(c)))
    }
}

/// One deterministic, strategy-independent decision of the router.
///
/// Net/edge ids, counts and [`DecidingTier`]s only — never wall-clock,
/// never anything the selection strategy is free to vary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A phase began (marker; the clock reading stays in the probe).
    PhaseEnter {
        /// The phase.
        phase: Phase,
    },
    /// A phase ended.
    PhaseExit {
        /// The phase.
        phase: Phase,
    },
    /// The deletion loop selected `(net, edge)`; `tier` is the decision
    /// provenance — the criterion that separated the winner from the
    /// runner-up champion (see [`crate::select::deciding_tier`]).
    DeletionSelected {
        /// Winning net.
        net: NetId,
        /// Winning edge index within the net.
        edge: u32,
        /// Which comparison tier decided the selection.
        tier: DecidingTier,
    },
    /// A selection cascaded to the differential partner (§4.1).
    CascadeDeleted {
        /// Partner net.
        net: NetId,
        /// Mirrored edge index.
        edge: u32,
    },
    /// Dangling-chain pruning removed `count` further edges of `net`.
    Pruned {
        /// Pruned net.
        net: NetId,
        /// Edges removed by the prune.
        count: u32,
    },
    /// A deletion left `net`'s routing graph a spanning tree.
    NetBecameTree {
        /// The finished net.
        net: NetId,
    },
    /// An improvement-phase reroute of `net` was kept.
    RerouteAccepted {
        /// Rerouted net.
        net: NetId,
    },
    /// An improvement-phase reroute of `net` regressed and was reverted.
    RerouteRejected {
        /// Reverted net.
        net: NetId,
    },
    /// Feed-cell insertion (§4.3) placed a group of `width` single-pitch
    /// feed cells at column `x` of `row`.
    FeedCellsInserted {
        /// Target row.
        row: u32,
        /// Insertion column in pitches.
        x: i32,
        /// Cells in the group (the flagged width).
        width: u32,
    },
    /// A deterministic step budget ([`crate::config::Budgets`]) ran out
    /// in `phase` after `steps` steps. Step counts are pure functions of
    /// the input, so this event fires at the same stream position in
    /// every run — unlike the wall-clock deadline, whose firings stay on
    /// the diagnostics side ([`Counter::DeadlineStop`]).
    BudgetExhausted {
        /// The phase whose budget ran out.
        phase: Phase,
        /// Steps spent when the ceiling was hit.
        steps: u64,
    },
    /// The post-budget fallback completion path deleted `(net, edge)` —
    /// the cheapest deterministic deletion (first alive non-bridge edge
    /// per net) that still drives every graph to a spanning tree.
    FallbackDeleted {
        /// Net being force-completed.
        net: NetId,
        /// Deleted edge index within the net.
        edge: u32,
    },
    /// An engine self-audit at a phase boundary
    /// ([`crate::config::VerifyLevel::Phases`] and up) recomputed the
    /// density profile and net lengths from scratch and found them
    /// consistent with the incremental state. Emitted only when
    /// verification is enabled, so [`crate::config::VerifyLevel::Off`]
    /// traces are byte-identical to pre-verifier ones.
    AuditPassed {
        /// The phase that just ended.
        phase: Phase,
        /// Individual comparisons performed (channels × aggregates +
        /// nets).
        checks: u64,
    },
    /// A mid-loop engine self-audit
    /// ([`crate::config::VerifyLevel::Steps`]) passed after `step`
    /// deletion selections.
    AuditStep {
        /// Deletion selections completed when the audit ran.
        step: u64,
        /// Individual comparisons performed.
        checks: u64,
    },
}

/// Monotonic work counters. Unlike [`TraceEvent`]s these are
/// *diagnostics*: they may legitimately differ between selection
/// strategies (the full rescan pushes no heap entries at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Candidate keys evaluated (`Engine::edge_key` calls).
    KeyEval,
    /// Scoreboard heap pushes.
    HeapPush,
    /// Scoreboard heap pops, valid and stale.
    HeapPop,
    /// Of the pops, generation-stale entries discarded.
    StaleHeapPop,
    /// Re-keys caused by a changed graph (deleted net / partner).
    RekeyGraph,
    /// Re-keys caused by moved channel aggregates.
    RekeyAggregate,
    /// Re-keys caused by span overlap with held aggregates.
    RekeySpan,
    /// Re-keys caused by refreshed timing constraints.
    RekeyConstraint,
    /// Density window queries (`edge_density` over a trunk interval).
    DensityWindowQuery,
    /// Density aggregate reads (`C_M/NC_M/C_m/NC_m` of a channel).
    DensityAggregateQuery,
    /// Hypothetical-wire cache hits.
    HypCacheHit,
    /// Hypothetical-wire cache misses (tentative-tree recomputations).
    HypCacheMiss,
    /// Delay-prefix memo hits: key evaluations that reused a memoized
    /// `C_d/Gl/LD` prefix and skipped the hypothetical-wire path
    /// entirely.
    DelayMemoHit,
    /// Delay-prefix memo misses (full delay-criteria evaluations). Every
    /// miss performs exactly one hypothetical-wire lookup, so
    /// `delay_memo_misses == hyp_cache_hits + hyp_cache_misses`.
    DelayMemoMiss,
    /// Champion-scan tasks handed to the parallel executor (one per net
    /// in a fanned-out batch).
    ParTask,
    /// Fan-out batches dispatched by the parallel executor.
    ParBatch,
    /// Scoreboard shards that received at least one fresh champion
    /// during a re-key batch (the shards a deletion actually rebuilt).
    ShardRebuild,
    /// Improvement-phase stops forced by the wall-clock deadline
    /// (`RouterConfig::deadline`). Inherently machine-dependent, which
    /// is exactly why deadline firings are a counter and not a
    /// [`TraceEvent`].
    DeadlineStop,
}

impl Counter {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 18;

    /// Every counter, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::KeyEval,
        Counter::HeapPush,
        Counter::HeapPop,
        Counter::StaleHeapPop,
        Counter::RekeyGraph,
        Counter::RekeyAggregate,
        Counter::RekeySpan,
        Counter::RekeyConstraint,
        Counter::DensityWindowQuery,
        Counter::DensityAggregateQuery,
        Counter::HypCacheHit,
        Counter::HypCacheMiss,
        Counter::DelayMemoHit,
        Counter::DelayMemoMiss,
        Counter::ParTask,
        Counter::ParBatch,
        Counter::ShardRebuild,
        Counter::DeadlineStop,
    ];

    /// Dense index into counter arrays.
    pub fn index(self) -> usize {
        match self {
            Counter::KeyEval => 0,
            Counter::HeapPush => 1,
            Counter::HeapPop => 2,
            Counter::StaleHeapPop => 3,
            Counter::RekeyGraph => 4,
            Counter::RekeyAggregate => 5,
            Counter::RekeySpan => 6,
            Counter::RekeyConstraint => 7,
            Counter::DensityWindowQuery => 8,
            Counter::DensityAggregateQuery => 9,
            Counter::HypCacheHit => 10,
            Counter::HypCacheMiss => 11,
            Counter::DelayMemoHit => 12,
            Counter::DelayMemoMiss => 13,
            Counter::ParTask => 14,
            Counter::ParBatch => 15,
            Counter::ShardRebuild => 16,
            Counter::DeadlineStop => 17,
        }
    }

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Counter::KeyEval => "key_evals",
            Counter::HeapPush => "heap_pushes",
            Counter::HeapPop => "heap_pops",
            Counter::StaleHeapPop => "stale_heap_pops",
            Counter::RekeyGraph => "rekeys_graph",
            Counter::RekeyAggregate => "rekeys_aggregate_moved",
            Counter::RekeySpan => "rekeys_span_overlap",
            Counter::RekeyConstraint => "rekeys_constraint",
            Counter::DensityWindowQuery => "density_window_queries",
            Counter::DensityAggregateQuery => "density_aggregate_queries",
            Counter::HypCacheHit => "hyp_cache_hits",
            Counter::HypCacheMiss => "hyp_cache_misses",
            Counter::DelayMemoHit => "delay_memo_hits",
            Counter::DelayMemoMiss => "delay_memo_misses",
            Counter::ParTask => "par_tasks",
            Counter::ParBatch => "par_batches",
            Counter::ShardRebuild => "shard_rebuilds",
            Counter::DeadlineStop => "deadline_stops",
        }
    }
}

/// Fixed-bucket histograms (diagnostics, like [`Counter`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Nets re-keyed per deletion (dirty-set size).
    DirtySetSize,
    /// Stale entries discarded per scoreboard selection pop.
    StalePopsPerSelection,
    /// Fresh champions merged back into the scoreboard per re-key batch
    /// (the fan-in width of one deletion's parallel scan).
    MergeBatchSize,
}

/// Bucket count of every [`Hist`]: powers of two —
/// `0, 1, 2–3, 4–7, 8–15, 16–31, 32–63, ≥64`.
pub const HIST_BUCKETS: usize = 8;

impl Hist {
    /// Number of histograms (array dimension).
    pub const COUNT: usize = 3;

    /// Every histogram, in declaration order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::DirtySetSize,
        Hist::StalePopsPerSelection,
        Hist::MergeBatchSize,
    ];

    /// Dense index into histogram arrays.
    pub fn index(self) -> usize {
        match self {
            Hist::DirtySetSize => 0,
            Hist::StalePopsPerSelection => 1,
            Hist::MergeBatchSize => 2,
        }
    }

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Hist::DirtySetSize => "dirty_set_size",
            Hist::StalePopsPerSelection => "stale_pops_per_selection",
            Hist::MergeBatchSize => "merge_batch_size",
        }
    }

    /// The bucket a value falls into.
    pub fn bucket(value: u64) -> usize {
        match value {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            16..=31 => 5,
            32..=63 => 6,
            _ => 7,
        }
    }

    /// Human-readable range label of bucket `i`.
    pub fn bucket_label(i: usize) -> &'static str {
        ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", ">=64"][i]
    }
}

/// The instrumentation sink threaded through the router.
///
/// All methods have empty default bodies so implementations opt into
/// what they care about and future hooks don't break them. Statically
/// dispatched: routing with [`NoopProbe`] (the default) compiles every
/// call site away.
///
/// # Contract
///
/// * [`Probe::event`] receives only deterministic, strategy-independent
///   facts; implementations must not feed timing back into routing.
/// * [`Probe::count`] / [`Probe::sample`] / [`Probe::rekey`] receive
///   diagnostics that may differ between selection strategies.
/// * [`Probe::phase_enter`] / [`Probe::phase_exit`] are where an
///   implementation may read the wall clock; the engine itself never
///   does on the probe's behalf.
pub trait Probe {
    /// Whether this probe observes anything. Call sites use this to
    /// skip work performed *only* to feed the probe (runner-up
    /// tracking for provenance, tree checks, …); with the default
    /// `false` of [`NoopProbe`] those branches constant-fold away.
    const ENABLED: bool = true;

    /// A deterministic decision event.
    fn event(&mut self, _ev: TraceEvent) {}

    /// Adds `by` to a work counter.
    fn count(&mut self, _c: Counter, _by: u64) {}

    /// Records one histogram observation.
    fn sample(&mut self, _h: Hist, _value: u64) {}

    /// A scoreboard re-key of `net`, attributed to `cause`. The default
    /// forwards to the per-cause counter.
    fn rekey(&mut self, _net: NetId, cause: RekeyCause) {
        self.count(cause.counter(), 1);
    }

    /// A router phase began (the one place a probe should read a clock).
    fn phase_enter(&mut self, _phase: Phase) {}

    /// A router phase ended.
    fn phase_exit(&mut self, _phase: Phase) {}

    /// Deterministic events recorded so far (phase markers included).
    /// Non-recording probes report 0. Checkpointing reads this to carry
    /// the global event-sequence position across suspensions, so a
    /// resumed session's trace lines continue at the right `seq`.
    fn events_len(&self) -> usize {
        0
    }

    /// A silent state corruption the engine should apply *now*, or
    /// `None`. Polled at deletion-loop hook points; only
    /// [`FaultProbe`] ever returns `Some`. One-shot corruptions
    /// ([`Corruption::FlipDensitySpan`]) are returned once; persistent
    /// ones ([`Corruption::StaleChampion`], [`Corruption::SkewDelay`])
    /// are returned every poll so restores can't wash them out.
    fn corruption(&mut self) -> Option<Corruption> {
        None
    }

    /// Whether this probe injects state corruption — engine
    /// self-consistency `debug_assert!`s are relaxed under it, so the
    /// corruption survives to the verifier it is meant to exercise.
    fn corrupting(&self) -> bool {
        false
    }
}

/// The zero-cost default probe: observes nothing, enables nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// Wall-clock and work profile of one completed phase.
///
/// The only place wall-clock appears in a trace; never part of the
/// deterministic event stream.
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// The phase.
    pub phase: Phase,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Index into [`RouteTrace::events`] of the span's first interior
    /// event (after its `PhaseEnter` marker).
    pub events_start: usize,
    /// Interior events emitted during the span (markers excluded).
    pub events_len: usize,
    /// Counter deltas accumulated during the span.
    pub counters: [u64; Counter::COUNT],
}

/// Everything a [`CollectingProbe`] observed over one route.
#[derive(Debug, Clone)]
pub struct RouteTrace {
    /// The deterministic decision stream, in emission order.
    pub events: Vec<TraceEvent>,
    /// Final counter totals, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Histograms, indexed by [`Hist::index`] then bucket.
    pub hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
    /// Completed phase spans, in completion order.
    pub spans: Vec<PhaseSpan>,
}

impl RouteTrace {
    /// Final value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Buckets of one histogram.
    pub fn hist(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hists[h.index()]
    }

    /// Number of `DeletionSelected` events (loop selections).
    pub fn selections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DeletionSelected { .. }))
            .count()
    }

    /// Total edges deleted according to the event stream: selections
    /// plus cascades, fallback deletions and pruned counts. Equals
    /// `RouteStats::deletions`.
    pub fn deletions(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::DeletionSelected { .. }
                | TraceEvent::CascadeDeleted { .. }
                | TraceEvent::FallbackDeleted { .. } => 1,
                TraceEvent::Pruned { count, .. } => *count as usize,
                _ => 0,
            })
            .sum()
    }

    /// Selections attributed to each deciding tier, in
    /// [`DecidingTier::ALL`] order. Sums to [`RouteTrace::selections`].
    pub fn tier_breakdown(&self) -> Vec<(DecidingTier, usize)> {
        DecidingTier::ALL
            .iter()
            .map(|&t| {
                let n = self
                    .events
                    .iter()
                    .filter(
                        |e| matches!(e, TraceEvent::DeletionSelected { tier, .. } if *tier == t),
                    )
                    .count();
                (t, n)
            })
            .collect()
    }
}

struct OpenSpan {
    phase: Phase,
    started: Instant,
    counters_at_enter: [u64; Counter::COUNT],
    events_at_enter: usize,
}

/// A [`Probe`] that records everything into a [`RouteTrace`].
pub struct CollectingProbe {
    events: Vec<TraceEvent>,
    counters: [u64; Counter::COUNT],
    hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
    spans: Vec<PhaseSpan>,
    open: Vec<OpenSpan>,
}

impl CollectingProbe {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            counters: [0; Counter::COUNT],
            hists: [[0; HIST_BUCKETS]; Hist::COUNT],
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Consumes the collector into its trace. Unbalanced `phase_enter`s
    /// (a route that errored mid-phase) are dropped.
    pub fn finish(self) -> RouteTrace {
        RouteTrace {
            events: self.events,
            counters: self.counters,
            hists: self.hists,
            spans: self.spans,
        }
    }
}

impl Default for CollectingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CollectingProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectingProbe")
            .field("events", &self.events.len())
            .field("spans", &self.spans.len())
            .field("open", &self.open.len())
            .finish()
    }
}

impl Probe for CollectingProbe {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn events_len(&self) -> usize {
        self.events.len()
    }

    fn count(&mut self, c: Counter, by: u64) {
        self.counters[c.index()] += by;
    }

    fn sample(&mut self, h: Hist, value: u64) {
        self.hists[h.index()][Hist::bucket(value)] += 1;
    }

    fn phase_enter(&mut self, phase: Phase) {
        self.events.push(TraceEvent::PhaseEnter { phase });
        self.open.push(OpenSpan {
            phase,
            started: Instant::now(),
            counters_at_enter: self.counters,
            events_at_enter: self.events.len(),
        });
    }

    fn phase_exit(&mut self, phase: Phase) {
        if let Some(open) = self.open.pop() {
            debug_assert_eq!(open.phase, phase, "unbalanced phase markers");
            let mut counters = [0u64; Counter::COUNT];
            for (i, d) in counters.iter_mut().enumerate() {
                *d = self.counters[i] - open.counters_at_enter[i];
            }
            self.spans.push(PhaseSpan {
                phase: open.phase,
                wall: open.started.elapsed(),
                events_start: open.events_at_enter,
                events_len: self.events.len() - open.events_at_enter,
                counters,
            });
        }
        self.events.push(TraceEvent::PhaseExit { phase });
    }
}

/// A *silent* state corruption a [`FaultProbe`] can ask the engine to
/// apply to its incremental structures, for proving the independent
/// verifier (`bgr_verify`) has teeth.
///
/// Unlike a [`Fault`], a corruption does not panic: it leaves the
/// engine running on subtly wrong state — exactly the failure class no
/// panic-isolation boundary can catch and the from-scratch oracles
/// exist to localize. Each variant targets one incremental structure,
/// so a sensitivity test can assert the audit blames the *right*
/// invariant (see `tests/verifier_sensitivity.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Silently add a phantom `width`-track span over `[x1, x2]` of
    /// `channel` to the incremental density map (one-shot, without the
    /// touch-tracking a real mutation performs). Drifts
    /// `channel_tracks` away from what the alive trees imply → the
    /// **density** oracle must flag `channel`.
    FlipDensitySpan {
        /// Corrupted channel.
        channel: u32,
        /// Span start (pitches).
        x1: i32,
        /// Span end (pitches).
        x2: i32,
        /// Phantom track count added.
        width: i32,
    },
    /// Freeze `net` in the scoreboard: invalidations drop its
    /// candidates but re-keying never pushes fresh ones, so the loop
    /// believes the net is finished while its graph still carries
    /// deletable edges (a stale champion left behind) → the **forest**
    /// oracle must flag `net`.
    StaleChampion {
        /// Frozen net.
        net: NetId,
    },
    /// Skew the memoized length of `net` by `extra_um` on every
    /// refresh, so the engine's incremental STA believes the net is
    /// shorter/longer than its tree → the **timing** oracle (full
    /// recompute from reported geometry) must flag the divergence.
    SkewDelay {
        /// Skewed net.
        net: NetId,
        /// Length bias in micrometres.
        extra_um: f64,
    },
}

/// A failure to inject through a [`FaultProbe`] hook point.
///
/// Each variant panics at a different layer of the engine, simulating
/// the internal-invariant failures the
/// [`crate::GlobalRouter::route_checked`] isolation boundary exists to
/// contain: a poisoned density read (the shared map returned garbage and
/// a consistency check tripped), a corrupted decision stream, a
/// mid-dirty-set scoreboard failure, and a phase that dies on entry.
/// Recovery *stalls* need no injection hook — the adversarial generator
/// (`bgr_gen::adversarial`) forces them with infeasible delay limits.
/// [`Fault::Corrupt`] is the exception: it panics nowhere and instead
/// silently corrupts engine state (see [`Corruption`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Panic when the `n`-th deterministic [`TraceEvent`] is observed
    /// (0-based), anywhere in the pipeline.
    PanicAtEvent(u64),
    /// Panic when the `n`-th scoreboard re-key is recorded — lands in
    /// the middle of a deletion's dirty-set processing, after density
    /// was mutated but before every champion is re-pushed.
    PanicAtRekey(u64),
    /// Panic when the `n`-th density read (window or aggregate query)
    /// is counted — models a poisoned density access detected by the
    /// reader.
    PanicAtDensityRead(u64),
    /// Panic on entering `phase`.
    PanicAtPhaseEnter(Phase),
    /// Silently corrupt incremental engine state instead of panicking.
    Corrupt(Corruption),
}

/// Marker every injected panic message carries, so tests can tell an
/// injected fault from a genuine invariant failure.
pub const FAULT_MARKER: &str = "injected fault";

/// A [`Probe`] that injects one [`Fault`] at its hook point, for the
/// fault-injection harness (`tests/fuzz_route.rs`).
///
/// `ENABLED` is `true`, so the engine performs all probe-feeding work
/// (provenance tracking, counter flushes) and every hook point is live.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    fault: Fault,
    events: u64,
    rekeys: u64,
    density_reads: u64,
    corrupted: bool,
}

impl FaultProbe {
    /// Arms `fault`.
    pub fn new(fault: Fault) -> Self {
        Self {
            fault,
            events: 0,
            rekeys: 0,
            density_reads: 0,
            corrupted: false,
        }
    }

    /// The armed fault.
    pub fn fault(&self) -> Fault {
        self.fault
    }

    fn trip(&self, what: &str) -> ! {
        panic!("{FAULT_MARKER}: {what} ({:?})", self.fault);
    }
}

impl Probe for FaultProbe {
    fn event(&mut self, _ev: TraceEvent) {
        if let Fault::PanicAtEvent(n) = self.fault {
            if self.events == n {
                self.trip("event threshold reached");
            }
        }
        self.events += 1;
    }

    fn count(&mut self, c: Counter, by: u64) {
        if let Fault::PanicAtDensityRead(n) = self.fault {
            if matches!(
                c,
                Counter::DensityWindowQuery | Counter::DensityAggregateQuery
            ) {
                self.density_reads += by;
                if self.density_reads > n {
                    self.trip("poisoned density read");
                }
            }
        }
    }

    fn rekey(&mut self, _net: NetId, cause: RekeyCause) {
        if let Fault::PanicAtRekey(n) = self.fault {
            if self.rekeys == n {
                self.trip("re-key threshold reached");
            }
        }
        self.rekeys += 1;
        self.count(cause.counter(), 1);
    }

    fn phase_enter(&mut self, phase: Phase) {
        if self.fault == Fault::PanicAtPhaseEnter(phase) {
            self.trip("phase entered");
        }
    }

    fn corruption(&mut self) -> Option<Corruption> {
        let Fault::Corrupt(c) = self.fault else {
            return None;
        };
        match c {
            // One-shot: a second phantom span would double the drift
            // and muddy the "first divergence" the test asserts on.
            Corruption::FlipDensitySpan { .. } => {
                if self.corrupted {
                    return None;
                }
                self.corrupted = true;
                Some(c)
            }
            // Persistent: re-applied every poll so snapshots/restores
            // and re-keys cannot silently heal the corruption.
            Corruption::StaleChampion { .. } | Corruption::SkewDelay { .. } => Some(c),
        }
    }

    fn corrupting(&self) -> bool {
        matches!(self.fault, Fault::Corrupt(_))
    }
}

/// Probe adapter recording the most recently entered [`Phase`] into a
/// shared cell, so [`crate::GlobalRouter::route_checked`] can attribute
/// a caught panic to the phase that was active when it unwound. The
/// cell is read *after* `catch_unwind`, hence the `Arc`/atomic rather
/// than a plain field.
pub(crate) struct PhaseTracked<P> {
    inner: P,
    current: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl<P: Probe> PhaseTracked<P> {
    /// Sentinel for "no phase entered yet".
    const SETUP: usize = usize::MAX;

    pub(crate) fn new(inner: P) -> Self {
        Self {
            inner,
            current: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(Self::SETUP)),
        }
    }

    /// Handle that survives the probe moving into (and unwinding out
    /// of) the engine.
    pub(crate) fn handle(&self) -> std::sync::Arc<std::sync::atomic::AtomicUsize> {
        self.current.clone()
    }

    /// Label of the phase index stored in a handle.
    pub(crate) fn label_of(raw: usize) -> &'static str {
        Phase::ALL.get(raw).map(|p| p.label()).unwrap_or("setup")
    }

    pub(crate) fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Probe> Probe for PhaseTracked<P> {
    const ENABLED: bool = P::ENABLED;

    fn event(&mut self, ev: TraceEvent) {
        self.inner.event(ev);
    }

    fn count(&mut self, c: Counter, by: u64) {
        self.inner.count(c, by);
    }

    fn sample(&mut self, h: Hist, value: u64) {
        self.inner.sample(h, value);
    }

    fn rekey(&mut self, net: NetId, cause: RekeyCause) {
        self.inner.rekey(net, cause);
    }

    fn phase_enter(&mut self, phase: Phase) {
        let idx = Phase::ALL
            .iter()
            .position(|&p| p == phase)
            .unwrap_or(Self::SETUP);
        self.current
            .store(idx, std::sync::atomic::Ordering::Relaxed);
        self.inner.phase_enter(phase);
    }

    fn phase_exit(&mut self, phase: Phase) {
        self.inner.phase_exit(phase);
    }

    fn events_len(&self) -> usize {
        self.inner.events_len()
    }

    fn corruption(&mut self) -> Option<Corruption> {
        self.inner.corruption()
    }

    fn corrupting(&self) -> bool {
        self.inner.corrupting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, r) in RekeyCause::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        // Labels are unique (the JSONL schema depends on it).
        let mut labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Counter::COUNT);
    }

    #[test]
    fn hist_buckets_cover_the_line() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(15), 4);
        assert_eq!(Hist::bucket(31), 5);
        assert_eq!(Hist::bucket(63), 6);
        assert_eq!(Hist::bucket(64), 7);
        assert_eq!(Hist::bucket(u64::MAX), 7);
    }

    #[test]
    fn rekey_causes_replace_magic_indices() {
        let mut rc = RekeyCauses::default();
        rc.record(RekeyCause::Graph);
        rc.record(RekeyCause::AggregateMoved);
        rc.record(RekeyCause::AggregateMoved);
        assert_eq!(rc.of(RekeyCause::Graph), 1);
        assert_eq!(rc.of(RekeyCause::AggregateMoved), 2);
        assert_eq!(rc.of(RekeyCause::SpanOverlap), 0);
        assert_eq!(rc.total(), 3);
        let pairs: Vec<_> = rc.iter().collect();
        assert_eq!(pairs[1], (RekeyCause::AggregateMoved, 2));
    }

    #[test]
    fn collecting_probe_separates_events_counters_and_spans() {
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::NetBecameTree { net: NetId::new(3) });
        p.count(Counter::HeapPop, 2);
        p.sample(Hist::DirtySetSize, 5);
        p.rekey(NetId::new(1), RekeyCause::SpanOverlap);
        p.phase_exit(Phase::InitialRouting);
        let trace = p.finish();
        // Stream: enter, net-tree, exit.
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.counter(Counter::HeapPop), 2);
        assert_eq!(trace.counter(Counter::RekeySpan), 1);
        assert_eq!(trace.hist(Hist::DirtySetSize)[Hist::bucket(5)], 1);
        assert_eq!(trace.spans.len(), 1);
        let span = &trace.spans[0];
        assert_eq!(span.phase, Phase::InitialRouting);
        assert_eq!(span.events_len, 1); // markers excluded
        assert_eq!(span.counters[Counter::HeapPop.index()], 2);
    }

    #[test]
    fn fault_probe_trips_on_its_threshold_only() {
        let mut p = FaultProbe::new(Fault::PanicAtEvent(2));
        p.event(TraceEvent::NetBecameTree { net: NetId::new(0) });
        p.event(TraceEvent::NetBecameTree { net: NetId::new(1) });
        // Non-matching hooks never trip.
        p.count(Counter::DensityWindowQuery, 100);
        p.rekey(NetId::new(0), RekeyCause::Graph);
        p.phase_enter(Phase::ImproveArea);
        let err = std::panic::catch_unwind(move || {
            p.event(TraceEvent::NetBecameTree { net: NetId::new(2) });
        })
        .expect_err("third event must trip");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(FAULT_MARKER), "{msg}");
    }

    #[test]
    fn fault_probe_density_fault_counts_by_amount() {
        let mut p = FaultProbe::new(Fault::PanicAtDensityRead(5));
        p.count(Counter::DensityWindowQuery, 3);
        p.count(Counter::KeyEval, 100); // not a density read
        let r = std::panic::catch_unwind(move || {
            p.count(Counter::DensityAggregateQuery, 10);
        });
        assert!(r.is_err());
    }

    #[test]
    fn phase_tracker_records_last_entered_phase() {
        let tracked = PhaseTracked::new(NoopProbe);
        let handle = tracked.handle();
        let mut tracked = tracked;
        assert_eq!(
            PhaseTracked::<NoopProbe>::label_of(handle.load(std::sync::atomic::Ordering::Relaxed)),
            "setup"
        );
        tracked.phase_enter(Phase::InitialRouting);
        tracked.phase_exit(Phase::InitialRouting);
        assert_eq!(
            PhaseTracked::<NoopProbe>::label_of(handle.load(std::sync::atomic::Ordering::Relaxed)),
            "initial_routing"
        );
        const { assert!(!PhaseTracked::<NoopProbe>::ENABLED) };
        let _ = tracked.into_inner();
    }

    #[test]
    fn corruption_polling_is_one_shot_or_persistent_by_variant() {
        // Panic faults never corrupt.
        let mut p = FaultProbe::new(Fault::PanicAtEvent(99));
        assert!(!p.corrupting());
        assert_eq!(p.corruption(), None);

        // One-shot: the phantom span is handed out exactly once.
        let flip = Corruption::FlipDensitySpan {
            channel: 2,
            x1: 10,
            x2: 20,
            width: 1,
        };
        let mut p = FaultProbe::new(Fault::Corrupt(flip));
        assert!(p.corrupting());
        assert_eq!(p.corruption(), Some(flip));
        assert_eq!(p.corruption(), None);
        assert!(p.corrupting(), "stays corrupting after the injection");

        // Persistent: returned on every poll.
        let skew = Corruption::SkewDelay {
            net: NetId::new(1),
            extra_um: -250.0,
        };
        let mut p = FaultProbe::new(Fault::Corrupt(skew));
        assert_eq!(p.corruption(), Some(skew));
        assert_eq!(p.corruption(), Some(skew));
    }

    #[test]
    fn noop_probe_is_disabled() {
        const { assert!(!NoopProbe::ENABLED) };
        const { assert!(CollectingProbe::ENABLED) };
        // All hooks are callable and inert.
        let mut p = NoopProbe;
        p.event(TraceEvent::PhaseEnter {
            phase: Phase::GraphBuild,
        });
        p.count(Counter::KeyEval, 1);
        p.rekey(NetId::new(0), RekeyCause::Graph);
    }
}
