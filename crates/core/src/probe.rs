//! Structured observability for the deletion engine.
//!
//! The router is a long sequence of heuristic decisions — ranked
//! criterion comparisons (§3.3–§3.4), three rip-up phases (§4.2),
//! feed-cell insertion (§4.3) — and every performance hypothesis about
//! it (parallel re-keying, sharded scoreboards, tighter density
//! invalidation) is an argument about *which* of those decisions
//! dominate. This module defines the instrumentation contract that
//! makes them measurable without giving up the engine's two core
//! properties:
//!
//! * **Zero cost when off.** [`Probe`] is statically dispatched and the
//!   default [`NoopProbe`] has empty inline bodies plus
//!   [`Probe::ENABLED`]` == false`, so instrumented call sites (and any
//!   extra work done *only* to feed the probe, like runner-up tracking
//!   for decision provenance) compile away entirely.
//! * **Determinism.** The [`TraceEvent`] stream is a pure function of
//!   the inputs and the configuration: it contains no wall-clock, no
//!   allocation addresses, and nothing strategy-dependent — the
//!   [`crate::SelectionStrategy::FullRescan`] oracle and the default
//!   scoreboard emit **identical** event streams (proven by
//!   `tests/trace_determinism.rs`). Wall-clock lives only in
//!   [`PhaseSpan`]s, and strategy-dependent diagnostics (re-keys, heap
//!   pops, cache hits) live only in [`Counter`]s / [`Hist`]ograms.
//!
//! [`CollectingProbe`] records everything into a [`RouteTrace`];
//! `bgr_io::write_trace_jsonl` serializes it and
//! [`crate::report::TraceSummary`] renders it for humans.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bgr_netlist::NetId;

use crate::select::DecidingTier;

/// The router's instrumented phases (Fig. 2 lines 01, 02, 04–07, 08,
/// 09, 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Feedthrough assignment with §4.3 feed-cell insertion (line 01).
    FeedAssign,
    /// Routing-graph construction, density probe pass and STA build
    /// (lines 02–03).
    GraphBuild,
    /// The main deletion loop (lines 04–07).
    InitialRouting,
    /// Constraint-violation recovery (§3.5 phase 1, line 08).
    RecoverViolate,
    /// Delay improvement (§3.5 phase 2, line 09).
    ImproveDelay,
    /// Area improvement (§3.5 phase 3, line 10).
    ImproveArea,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::FeedAssign,
        Phase::GraphBuild,
        Phase::InitialRouting,
        Phase::RecoverViolate,
        Phase::ImproveDelay,
        Phase::ImproveArea,
    ];

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Phase::FeedAssign => "feed_assign",
            Phase::GraphBuild => "graph_build",
            Phase::InitialRouting => "initial_routing",
            Phase::RecoverViolate => "recover_violate",
            Phase::ImproveDelay => "improve_delay",
            Phase::ImproveArea => "improve_area",
        }
    }
}

/// Why the scoreboard re-keyed a net after a deletion (the dirty-set
/// clauses of the invalidation contract — see `Engine::run_deletion`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RekeyCause {
    /// The net's own graph changed (deleted net or cascaded partner).
    Graph,
    /// A touched channel's aggregates (`C_M/NC_M/C_m/NC_m`) moved, so
    /// every key referencing the channel changed.
    AggregateMoved,
    /// Aggregates held but the net's trunk interval overlaps a touched
    /// span (its window query reads the mutated profile).
    SpanOverlap,
    /// The net belongs to a constraint whose margins were refreshed.
    Constraint,
}

impl RekeyCause {
    /// Every cause, in dirty-set derivation order.
    pub const ALL: [RekeyCause; 4] = [
        RekeyCause::Graph,
        RekeyCause::AggregateMoved,
        RekeyCause::SpanOverlap,
        RekeyCause::Constraint,
    ];

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            RekeyCause::Graph => "graph",
            RekeyCause::AggregateMoved => "aggregate_moved",
            RekeyCause::SpanOverlap => "span_overlap",
            RekeyCause::Constraint => "constraint",
        }
    }

    fn index(self) -> usize {
        match self {
            RekeyCause::Graph => 0,
            RekeyCause::AggregateMoved => 1,
            RekeyCause::SpanOverlap => 2,
            RekeyCause::Constraint => 3,
        }
    }

    /// The aggregated counter this cause feeds.
    pub fn counter(self) -> Counter {
        match self {
            RekeyCause::Graph => Counter::RekeyGraph,
            RekeyCause::AggregateMoved => Counter::RekeyAggregate,
            RekeyCause::SpanOverlap => Counter::RekeySpan,
            RekeyCause::Constraint => Counter::RekeyConstraint,
        }
    }
}

/// Per-cause re-key totals, indexed by [`RekeyCause`] (replaces the
/// former magic-index `[usize; 4]` of `RouteStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RekeyCauses {
    counts: [usize; 4],
}

impl RekeyCauses {
    /// Records one re-key attributed to `cause`.
    pub fn record(&mut self, cause: RekeyCause) {
        self.counts[cause.index()] += 1;
    }

    /// Re-keys attributed to `cause`.
    pub fn of(&self, cause: RekeyCause) -> usize {
        self.counts[cause.index()]
    }

    /// Total re-keys across all causes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Raw counts in [`RekeyCause::ALL`] order (the checkpoint codec's
    /// wire form).
    pub fn counts(&self) -> [usize; 4] {
        self.counts
    }

    /// Rebuilds the table from raw counts in [`RekeyCause::ALL`] order
    /// (checkpoint restore).
    pub fn from_counts(counts: [usize; 4]) -> Self {
        Self { counts }
    }

    /// Element-wise sum — merges a resumed slice's counts into the
    /// totals carried by a checkpoint.
    pub fn merged(&self, other: &Self) -> Self {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(other.counts) {
            *c += o;
        }
        Self { counts }
    }

    /// `(cause, count)` pairs in [`RekeyCause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (RekeyCause, usize)> + '_ {
        RekeyCause::ALL.iter().map(|&c| (c, self.of(c)))
    }
}

/// A profiled sub-phase scope of the hot path.
///
/// Scopes are the profiler's vocabulary: nestable wall-clock brackets
/// *inside* a [`Phase`], emitted via [`Probe::scope_enter`] /
/// [`Probe::scope_exit`] only when [`Probe::PROFILING`] is on. Like
/// phase spans, scope timings are diagnostics — wall-clock stays
/// confined to the probe and never enters the deterministic
/// [`TraceEvent`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Champion tournament: popping (and stale-draining) the next valid
    /// deletion candidate from the scoreboard.
    Select,
    /// Applying the selected deletion: edge removal, differential
    /// cascade, dangling-chain pruning and density mutation.
    DeleteModify,
    /// Deriving the dirty set from the invalidation contract's clauses.
    DeriveDirty,
    /// Re-keying champions over the dirty set (the dominant cost at
    /// paper scale — see ROADMAP "incremental STA").
    Rekey,
    /// Re-keying attributed to one [`RekeyCause`] — children of
    /// [`Scope::Rekey`] when per-cause attribution is enabled
    /// (single-thread profiling runs).
    RekeyFor(RekeyCause),
    /// One guarded reroute attempt in an improvement phase.
    Reroute,
    /// An in-engine self-audit (`VerifyLevel::Phases`/`Steps`).
    Audit,
}

impl Scope {
    /// Stable label (used by the folded-stack output and the profile
    /// tree).
    pub fn label(self) -> &'static str {
        match self {
            Scope::Select => "select",
            Scope::DeleteModify => "delete_modify",
            Scope::DeriveDirty => "derive_dirty",
            Scope::Rekey => "rekey",
            Scope::RekeyFor(RekeyCause::Graph) => "rekey:graph",
            Scope::RekeyFor(RekeyCause::AggregateMoved) => "rekey:aggregate_moved",
            Scope::RekeyFor(RekeyCause::SpanOverlap) => "rekey:span_overlap",
            Scope::RekeyFor(RekeyCause::Constraint) => "rekey:constraint",
            Scope::Reroute => "reroute",
            Scope::Audit => "audit",
        }
    }
}

/// One deterministic, strategy-independent decision of the router.
///
/// Net/edge ids, counts and [`DecidingTier`]s only — never wall-clock,
/// never anything the selection strategy is free to vary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A phase began (marker; the clock reading stays in the probe).
    PhaseEnter {
        /// The phase.
        phase: Phase,
    },
    /// A phase ended.
    PhaseExit {
        /// The phase.
        phase: Phase,
    },
    /// The deletion loop selected `(net, edge)`; `tier` is the decision
    /// provenance — the criterion that separated the winner from the
    /// runner-up champion (see [`crate::select::deciding_tier`]).
    DeletionSelected {
        /// Winning net.
        net: NetId,
        /// Winning edge index within the net.
        edge: u32,
        /// Which comparison tier decided the selection.
        tier: DecidingTier,
    },
    /// A selection cascaded to the differential partner (§4.1).
    CascadeDeleted {
        /// Partner net.
        net: NetId,
        /// Mirrored edge index.
        edge: u32,
    },
    /// Dangling-chain pruning removed `count` further edges of `net`.
    Pruned {
        /// Pruned net.
        net: NetId,
        /// Edges removed by the prune.
        count: u32,
    },
    /// A deletion left `net`'s routing graph a spanning tree.
    NetBecameTree {
        /// The finished net.
        net: NetId,
    },
    /// An improvement-phase reroute of `net` was kept.
    RerouteAccepted {
        /// Rerouted net.
        net: NetId,
    },
    /// An improvement-phase reroute of `net` regressed and was reverted.
    RerouteRejected {
        /// Reverted net.
        net: NetId,
    },
    /// Feed-cell insertion (§4.3) placed a group of `width` single-pitch
    /// feed cells at column `x` of `row`.
    FeedCellsInserted {
        /// Target row.
        row: u32,
        /// Insertion column in pitches.
        x: i32,
        /// Cells in the group (the flagged width).
        width: u32,
    },
    /// A deterministic step budget ([`crate::config::Budgets`]) ran out
    /// in `phase` after `steps` steps. Step counts are pure functions of
    /// the input, so this event fires at the same stream position in
    /// every run — unlike the wall-clock deadline, whose firings stay on
    /// the diagnostics side ([`Counter::DeadlineStop`]).
    BudgetExhausted {
        /// The phase whose budget ran out.
        phase: Phase,
        /// Steps spent when the ceiling was hit.
        steps: u64,
    },
    /// The post-budget fallback completion path deleted `(net, edge)` —
    /// the cheapest deterministic deletion (first alive non-bridge edge
    /// per net) that still drives every graph to a spanning tree.
    FallbackDeleted {
        /// Net being force-completed.
        net: NetId,
        /// Deleted edge index within the net.
        edge: u32,
    },
    /// An engine self-audit at a phase boundary
    /// ([`crate::config::VerifyLevel::Phases`] and up) recomputed the
    /// density profile and net lengths from scratch and found them
    /// consistent with the incremental state. Emitted only when
    /// verification is enabled, so [`crate::config::VerifyLevel::Off`]
    /// traces are byte-identical to pre-verifier ones.
    AuditPassed {
        /// The phase that just ended.
        phase: Phase,
        /// Individual comparisons performed (channels × aggregates +
        /// nets).
        checks: u64,
    },
    /// A mid-loop engine self-audit
    /// ([`crate::config::VerifyLevel::Steps`]) passed after `step`
    /// deletion selections.
    AuditStep {
        /// Deletion selections completed when the audit ran.
        step: u64,
        /// Individual comparisons performed.
        checks: u64,
    },
}

/// Monotonic work counters. Unlike [`TraceEvent`]s these are
/// *diagnostics*: they may legitimately differ between selection
/// strategies (the full rescan pushes no heap entries at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Candidate keys evaluated (`Engine::edge_key` calls).
    KeyEval,
    /// Scoreboard heap pushes.
    HeapPush,
    /// Scoreboard heap pops, valid and stale.
    HeapPop,
    /// Of the pops, generation-stale entries discarded.
    StaleHeapPop,
    /// Re-keys caused by a changed graph (deleted net / partner).
    RekeyGraph,
    /// Re-keys caused by moved channel aggregates.
    RekeyAggregate,
    /// Re-keys caused by span overlap with held aggregates.
    RekeySpan,
    /// Re-keys caused by refreshed timing constraints.
    RekeyConstraint,
    /// Density window queries (`edge_density` over a trunk interval).
    DensityWindowQuery,
    /// Density aggregate reads (`C_M/NC_M/C_m/NC_m` of a channel).
    DensityAggregateQuery,
    /// Hypothetical-wire cache hits.
    HypCacheHit,
    /// Hypothetical-wire cache misses (tentative-tree recomputations).
    HypCacheMiss,
    /// Delay-prefix memo hits: key evaluations that reused a memoized
    /// `C_d/Gl/LD` prefix and skipped the hypothetical-wire path
    /// entirely.
    DelayMemoHit,
    /// Delay-prefix memo misses (full delay-criteria evaluations). Every
    /// miss performs exactly one hypothetical-wire lookup, so
    /// `delay_memo_misses == hyp_cache_hits + hyp_cache_misses`.
    DelayMemoMiss,
    /// Champion-scan tasks handed to the parallel executor (one per net
    /// in a fanned-out batch).
    ParTask,
    /// Fan-out batches dispatched by the parallel executor.
    ParBatch,
    /// Scoreboard shards that received at least one fresh champion
    /// during a re-key batch (the shards a deletion actually rebuilt).
    ShardRebuild,
    /// Improvement-phase stops forced by the wall-clock deadline
    /// (`RouterConfig::deadline`). Inherently machine-dependent, which
    /// is exactly why deadline firings are a counter and not a
    /// [`TraceEvent`].
    DeadlineStop,
}

impl Counter {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 18;

    /// Every counter, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::KeyEval,
        Counter::HeapPush,
        Counter::HeapPop,
        Counter::StaleHeapPop,
        Counter::RekeyGraph,
        Counter::RekeyAggregate,
        Counter::RekeySpan,
        Counter::RekeyConstraint,
        Counter::DensityWindowQuery,
        Counter::DensityAggregateQuery,
        Counter::HypCacheHit,
        Counter::HypCacheMiss,
        Counter::DelayMemoHit,
        Counter::DelayMemoMiss,
        Counter::ParTask,
        Counter::ParBatch,
        Counter::ShardRebuild,
        Counter::DeadlineStop,
    ];

    /// Dense index into counter arrays.
    pub fn index(self) -> usize {
        match self {
            Counter::KeyEval => 0,
            Counter::HeapPush => 1,
            Counter::HeapPop => 2,
            Counter::StaleHeapPop => 3,
            Counter::RekeyGraph => 4,
            Counter::RekeyAggregate => 5,
            Counter::RekeySpan => 6,
            Counter::RekeyConstraint => 7,
            Counter::DensityWindowQuery => 8,
            Counter::DensityAggregateQuery => 9,
            Counter::HypCacheHit => 10,
            Counter::HypCacheMiss => 11,
            Counter::DelayMemoHit => 12,
            Counter::DelayMemoMiss => 13,
            Counter::ParTask => 14,
            Counter::ParBatch => 15,
            Counter::ShardRebuild => 16,
            Counter::DeadlineStop => 17,
        }
    }

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Counter::KeyEval => "key_evals",
            Counter::HeapPush => "heap_pushes",
            Counter::HeapPop => "heap_pops",
            Counter::StaleHeapPop => "stale_heap_pops",
            Counter::RekeyGraph => "rekeys_graph",
            Counter::RekeyAggregate => "rekeys_aggregate_moved",
            Counter::RekeySpan => "rekeys_span_overlap",
            Counter::RekeyConstraint => "rekeys_constraint",
            Counter::DensityWindowQuery => "density_window_queries",
            Counter::DensityAggregateQuery => "density_aggregate_queries",
            Counter::HypCacheHit => "hyp_cache_hits",
            Counter::HypCacheMiss => "hyp_cache_misses",
            Counter::DelayMemoHit => "delay_memo_hits",
            Counter::DelayMemoMiss => "delay_memo_misses",
            Counter::ParTask => "par_tasks",
            Counter::ParBatch => "par_batches",
            Counter::ShardRebuild => "shard_rebuilds",
            Counter::DeadlineStop => "deadline_stops",
        }
    }
}

/// Fixed-bucket histograms (diagnostics, like [`Counter`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Nets re-keyed per deletion (dirty-set size).
    DirtySetSize,
    /// Stale entries discarded per scoreboard selection pop.
    StalePopsPerSelection,
    /// Fresh champions merged back into the scoreboard per re-key batch
    /// (the fan-in width of one deletion's parallel scan).
    MergeBatchSize,
}

/// Bucket count of every [`Hist`]: powers of two —
/// `0, 1, 2–3, 4–7, 8–15, 16–31, 32–63, ≥64`.
pub const HIST_BUCKETS: usize = 8;

impl Hist {
    /// Number of histograms (array dimension).
    pub const COUNT: usize = 3;

    /// Every histogram, in declaration order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::DirtySetSize,
        Hist::StalePopsPerSelection,
        Hist::MergeBatchSize,
    ];

    /// Dense index into histogram arrays.
    pub fn index(self) -> usize {
        match self {
            Hist::DirtySetSize => 0,
            Hist::StalePopsPerSelection => 1,
            Hist::MergeBatchSize => 2,
        }
    }

    /// Stable snake_case label (used by the JSONL schema).
    pub fn label(self) -> &'static str {
        match self {
            Hist::DirtySetSize => "dirty_set_size",
            Hist::StalePopsPerSelection => "stale_pops_per_selection",
            Hist::MergeBatchSize => "merge_batch_size",
        }
    }

    /// The bucket a value falls into.
    pub fn bucket(value: u64) -> usize {
        match value {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            16..=31 => 5,
            32..=63 => 6,
            _ => 7,
        }
    }

    /// Human-readable range label of bucket `i`.
    pub fn bucket_label(i: usize) -> &'static str {
        ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", ">=64"][i]
    }
}

/// The instrumentation sink threaded through the router.
///
/// All methods have empty default bodies so implementations opt into
/// what they care about and future hooks don't break them. Statically
/// dispatched: routing with [`NoopProbe`] (the default) compiles every
/// call site away.
///
/// # Contract
///
/// * [`Probe::event`] receives only deterministic, strategy-independent
///   facts; implementations must not feed timing back into routing.
/// * [`Probe::count`] / [`Probe::sample`] / [`Probe::rekey`] receive
///   diagnostics that may differ between selection strategies.
/// * [`Probe::phase_enter`] / [`Probe::phase_exit`] are where an
///   implementation may read the wall clock; the engine itself never
///   does on the probe's behalf.
pub trait Probe {
    /// Whether this probe observes anything. Call sites use this to
    /// skip work performed *only* to feed the probe (runner-up
    /// tracking for provenance, tree checks, …); with the default
    /// `false` of [`NoopProbe`] those branches constant-fold away.
    const ENABLED: bool = true;

    /// Whether this probe profiles sub-phase [`Scope`]s. Call sites use
    /// this to skip restructuring done *only* for time attribution
    /// (e.g. splitting one dirty-set re-key batch into per-cause
    /// sub-batches); with the default `false` those branches
    /// constant-fold away, so non-profiling runs keep the exact hot
    /// path.
    const PROFILING: bool = false;

    /// A deterministic decision event.
    fn event(&mut self, _ev: TraceEvent) {}

    /// Adds `by` to a work counter.
    fn count(&mut self, _c: Counter, _by: u64) {}

    /// Records one histogram observation.
    fn sample(&mut self, _h: Hist, _value: u64) {}

    /// A scoreboard re-key of `net`, attributed to `cause`. The default
    /// forwards to the per-cause counter.
    fn rekey(&mut self, _net: NetId, cause: RekeyCause) {
        self.count(cause.counter(), 1);
    }

    /// A router phase began (the one place a probe should read a clock).
    fn phase_enter(&mut self, _phase: Phase) {}

    /// A router phase ended.
    fn phase_exit(&mut self, _phase: Phase) {}

    /// A profiled sub-phase scope began (nestable; see [`Scope`]). Only
    /// called on hot paths when [`Probe::PROFILING`] is on.
    fn scope_enter(&mut self, _scope: Scope) {}

    /// A profiled sub-phase scope ended.
    fn scope_exit(&mut self, _scope: Scope) {}

    /// Deterministic events recorded so far (phase markers included).
    /// Non-recording probes report 0. Checkpointing reads this to carry
    /// the global event-sequence position across suspensions, so a
    /// resumed session's trace lines continue at the right `seq`.
    fn events_len(&self) -> usize {
        0
    }

    /// A silent state corruption the engine should apply *now*, or
    /// `None`. Polled at deletion-loop hook points; only
    /// [`FaultProbe`] ever returns `Some`. One-shot corruptions
    /// ([`Corruption::FlipDensitySpan`]) are returned once; persistent
    /// ones ([`Corruption::StaleChampion`], [`Corruption::SkewDelay`])
    /// are returned every poll so restores can't wash them out.
    fn corruption(&mut self) -> Option<Corruption> {
        None
    }

    /// Whether this probe injects state corruption — engine
    /// self-consistency `debug_assert!`s are relaxed under it, so the
    /// corruption survives to the verifier it is meant to exercise.
    fn corrupting(&self) -> bool {
        false
    }
}

/// The zero-cost default probe: observes nothing, enables nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// Wall-clock and work profile of one completed phase.
///
/// The only place wall-clock appears in a trace; never part of the
/// deterministic event stream.
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// The phase.
    pub phase: Phase,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Index into [`RouteTrace::events`] of the span's first interior
    /// event (after its `PhaseEnter` marker).
    pub events_start: usize,
    /// Interior events emitted during the span (markers excluded).
    pub events_len: usize,
    /// Counter deltas accumulated during the span.
    pub counters: [u64; Counter::COUNT],
}

/// Everything a [`CollectingProbe`] observed over one route.
#[derive(Debug, Clone)]
pub struct RouteTrace {
    /// The deterministic decision stream, in emission order.
    pub events: Vec<TraceEvent>,
    /// Final counter totals, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Histograms, indexed by [`Hist::index`] then bucket.
    pub hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
    /// Completed phase spans, in completion order.
    pub spans: Vec<PhaseSpan>,
}

impl RouteTrace {
    /// Final value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Buckets of one histogram.
    pub fn hist(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hists[h.index()]
    }

    /// Number of `DeletionSelected` events (loop selections).
    pub fn selections(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DeletionSelected { .. }))
            .count()
    }

    /// Total edges deleted according to the event stream: selections
    /// plus cascades, fallback deletions and pruned counts. Equals
    /// `RouteStats::deletions`.
    pub fn deletions(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::DeletionSelected { .. }
                | TraceEvent::CascadeDeleted { .. }
                | TraceEvent::FallbackDeleted { .. } => 1,
                TraceEvent::Pruned { count, .. } => *count as usize,
                _ => 0,
            })
            .sum()
    }

    /// Selections attributed to each deciding tier, in
    /// [`DecidingTier::ALL`] order. Sums to [`RouteTrace::selections`].
    pub fn tier_breakdown(&self) -> Vec<(DecidingTier, usize)> {
        DecidingTier::ALL
            .iter()
            .map(|&t| {
                let n = self
                    .events
                    .iter()
                    .filter(
                        |e| matches!(e, TraceEvent::DeletionSelected { tier, .. } if *tier == t),
                    )
                    .count();
                (t, n)
            })
            .collect()
    }
}

struct OpenSpan {
    phase: Phase,
    started: Instant,
    counters_at_enter: [u64; Counter::COUNT],
    events_at_enter: usize,
}

/// A [`Probe`] that records everything into a [`RouteTrace`].
pub struct CollectingProbe {
    events: Vec<TraceEvent>,
    counters: [u64; Counter::COUNT],
    hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
    spans: Vec<PhaseSpan>,
    open: Vec<OpenSpan>,
}

impl CollectingProbe {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            counters: [0; Counter::COUNT],
            hists: [[0; HIST_BUCKETS]; Hist::COUNT],
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Consumes the collector into its trace. Unbalanced `phase_enter`s
    /// (a route that errored mid-phase) are dropped.
    pub fn finish(self) -> RouteTrace {
        RouteTrace {
            events: self.events,
            counters: self.counters,
            hists: self.hists,
            spans: self.spans,
        }
    }
}

impl Default for CollectingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CollectingProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectingProbe")
            .field("events", &self.events.len())
            .field("spans", &self.spans.len())
            .field("open", &self.open.len())
            .finish()
    }
}

impl Probe for CollectingProbe {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn events_len(&self) -> usize {
        self.events.len()
    }

    fn count(&mut self, c: Counter, by: u64) {
        self.counters[c.index()] += by;
    }

    fn sample(&mut self, h: Hist, value: u64) {
        self.hists[h.index()][Hist::bucket(value)] += 1;
    }

    fn phase_enter(&mut self, phase: Phase) {
        self.events.push(TraceEvent::PhaseEnter { phase });
        self.open.push(OpenSpan {
            phase,
            started: Instant::now(),
            counters_at_enter: self.counters,
            events_at_enter: self.events.len(),
        });
    }

    fn phase_exit(&mut self, phase: Phase) {
        if let Some(open) = self.open.pop() {
            debug_assert_eq!(open.phase, phase, "unbalanced phase markers");
            let mut counters = [0u64; Counter::COUNT];
            for (i, d) in counters.iter_mut().enumerate() {
                *d = self.counters[i] - open.counters_at_enter[i];
            }
            self.spans.push(PhaseSpan {
                phase: open.phase,
                wall: open.started.elapsed(),
                events_start: open.events_at_enter,
                events_len: self.events.len() - open.events_at_enter,
                counters,
            });
        }
        self.events.push(TraceEvent::PhaseExit { phase });
    }
}

/// One aggregated node of a [`ProfileTree`]: a `(phase, scope…)` stack
/// position with call count and cumulative wall-clock.
#[derive(Debug, Clone)]
struct ProfileNode {
    label: &'static str,
    children: Vec<usize>,
    calls: u64,
    total: Duration,
}

/// One flattened profile-tree entry (for reports and machine output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Stack of labels from the root phase down to this node.
    pub path: Vec<&'static str>,
    /// Times the scope was entered.
    pub calls: u64,
    /// Cumulative wall-clock including children.
    pub total: Duration,
    /// Wall-clock excluding profiled children (`total − Σ children`).
    pub self_time: Duration,
}

/// Aggregated call-tree of profiled phases and scopes with self/total
/// wall-clock, produced by [`ProfilingProbe::finish`].
///
/// Pure diagnostics: built entirely from probe-side monotonic
/// timestamps, rendered as an ASCII tree ([`ProfileTree::to_ascii`])
/// or folded stacks ([`ProfileTree::to_folded`], the
/// "flamegraph-collapsed" format `inferno`/`flamegraph.pl` consume).
#[derive(Debug, Clone, Default)]
pub struct ProfileTree {
    nodes: Vec<ProfileNode>,
    roots: Vec<usize>,
}

impl ProfileTree {
    fn children_total(&self, idx: usize) -> Duration {
        self.nodes[idx]
            .children
            .iter()
            .map(|&c| self.nodes[c].total)
            .sum()
    }

    fn self_time(&self, idx: usize) -> Duration {
        self.nodes[idx]
            .total
            .saturating_sub(self.children_total(idx))
    }

    /// Depth-first flattening in recording order.
    pub fn entries(&self) -> Vec<ProfileEntry> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<(usize, Vec<&'static str>)> =
            self.roots.iter().rev().map(|&r| (r, Vec::new())).collect();
        while let Some((idx, prefix)) = stack.pop() {
            let node = &self.nodes[idx];
            let mut path = prefix.clone();
            path.push(node.label);
            out.push(ProfileEntry {
                path: path.clone(),
                calls: node.calls,
                total: node.total,
                self_time: self.self_time(idx),
            });
            for &child in node.children.iter().rev() {
                stack.push((child, path.clone()));
            }
        }
        out
    }

    /// Total profiled wall-clock (sum over root phases).
    pub fn total(&self) -> Duration {
        self.roots.iter().map(|&r| self.nodes[r].total).sum()
    }

    /// Indented tree: one line per node with total/self/calls columns.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>10}",
            "phase/scope", "total", "self", "calls"
        );
        for entry in self.entries() {
            let indent = "  ".repeat(entry.path.len() - 1);
            let label = entry.path.last().copied().unwrap_or("?");
            let _ = writeln!(
                out,
                "{:<44} {:>12} {:>12} {:>10}",
                format!("{indent}{label}"),
                format_duration(entry.total),
                format_duration(entry.self_time),
                entry.calls
            );
        }
        out
    }

    /// Folded-stack ("flamegraph-collapsed") output: one
    /// `phase;scope;… <self-µs>` line per node with nonzero self time.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            let us = entry.self_time.as_micros();
            if us == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {us}", entry.path.join(";"));
        }
        out
    }
}

fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

/// A [`Probe`] that collects the full [`RouteTrace`] *and* aggregates
/// nestable phase/scope spans into a [`ProfileTree`].
///
/// `PROFILING == true` turns on the engine's scope hooks (and its
/// per-[`RekeyCause`] re-key attribution path); the deterministic
/// observables are still byte-identical to a [`CollectingProbe`] run —
/// proven by `tests/metrics_determinism.rs`.
pub struct ProfilingProbe {
    inner: CollectingProbe,
    tree: ProfileTree,
    /// Open stack: `(node index, enter timestamp)`.
    stack: Vec<(usize, Instant)>,
}

impl ProfilingProbe {
    /// Creates an empty profiling collector.
    pub fn new() -> Self {
        Self {
            inner: CollectingProbe::new(),
            tree: ProfileTree::default(),
            stack: Vec::new(),
        }
    }

    /// Consumes the probe into its trace and aggregated profile.
    /// Unbalanced opens (a route that errored mid-scope) are dropped,
    /// mirroring [`CollectingProbe::finish`].
    pub fn finish(self) -> (RouteTrace, ProfileTree) {
        (self.inner.finish(), self.tree)
    }

    fn open(&mut self, label: &'static str) {
        let parent = self.stack.last().map(|&(idx, _)| idx);
        let siblings: &[usize] = match parent {
            Some(p) => &self.tree.nodes[p].children,
            None => &self.tree.roots,
        };
        let existing = siblings
            .iter()
            .copied()
            .find(|&idx| self.tree.nodes[idx].label == label);
        let idx = match existing {
            Some(idx) => idx,
            None => {
                let idx = self.tree.nodes.len();
                self.tree.nodes.push(ProfileNode {
                    label,
                    children: Vec::new(),
                    calls: 0,
                    total: Duration::ZERO,
                });
                match parent {
                    Some(p) => self.tree.nodes[p].children.push(idx),
                    None => self.tree.roots.push(idx),
                }
                idx
            }
        };
        self.tree.nodes[idx].calls += 1;
        self.stack.push((idx, Instant::now()));
    }

    fn close(&mut self, label: &'static str) {
        if let Some((idx, started)) = self.stack.pop() {
            debug_assert_eq!(
                self.tree.nodes[idx].label, label,
                "unbalanced scope markers"
            );
            self.tree.nodes[idx].total += started.elapsed();
        }
    }
}

impl Default for ProfilingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ProfilingProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilingProbe")
            .field("inner", &self.inner)
            .field("nodes", &self.tree.nodes.len())
            .field("open", &self.stack.len())
            .finish()
    }
}

impl Probe for ProfilingProbe {
    const PROFILING: bool = true;

    fn event(&mut self, ev: TraceEvent) {
        self.inner.event(ev);
    }

    fn count(&mut self, c: Counter, by: u64) {
        self.inner.count(c, by);
    }

    fn sample(&mut self, h: Hist, value: u64) {
        self.inner.sample(h, value);
    }

    fn rekey(&mut self, net: NetId, cause: RekeyCause) {
        self.inner.rekey(net, cause);
    }

    fn phase_enter(&mut self, phase: Phase) {
        self.inner.phase_enter(phase);
        self.open(phase.label());
    }

    fn phase_exit(&mut self, phase: Phase) {
        self.close(phase.label());
        self.inner.phase_exit(phase);
    }

    fn scope_enter(&mut self, scope: Scope) {
        self.open(scope.label());
    }

    fn scope_exit(&mut self, scope: Scope) {
        self.close(scope.label());
    }

    fn events_len(&self) -> usize {
        self.inner.events_len()
    }
}

/// A *silent* state corruption a [`FaultProbe`] can ask the engine to
/// apply to its incremental structures, for proving the independent
/// verifier (`bgr_verify`) has teeth.
///
/// Unlike a [`Fault`], a corruption does not panic: it leaves the
/// engine running on subtly wrong state — exactly the failure class no
/// panic-isolation boundary can catch and the from-scratch oracles
/// exist to localize. Each variant targets one incremental structure,
/// so a sensitivity test can assert the audit blames the *right*
/// invariant (see `tests/verifier_sensitivity.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Silently add a phantom `width`-track span over `[x1, x2]` of
    /// `channel` to the incremental density map (one-shot, without the
    /// touch-tracking a real mutation performs). Drifts
    /// `channel_tracks` away from what the alive trees imply → the
    /// **density** oracle must flag `channel`.
    FlipDensitySpan {
        /// Corrupted channel.
        channel: u32,
        /// Span start (pitches).
        x1: i32,
        /// Span end (pitches).
        x2: i32,
        /// Phantom track count added.
        width: i32,
    },
    /// Freeze `net` in the scoreboard: invalidations drop its
    /// candidates but re-keying never pushes fresh ones, so the loop
    /// believes the net is finished while its graph still carries
    /// deletable edges (a stale champion left behind) → the **forest**
    /// oracle must flag `net`.
    StaleChampion {
        /// Frozen net.
        net: NetId,
    },
    /// Skew the memoized length of `net` by `extra_um` on every
    /// refresh, so the engine's incremental STA believes the net is
    /// shorter/longer than its tree → the **timing** oracle (full
    /// recompute from reported geometry) must flag the divergence.
    SkewDelay {
        /// Skewed net.
        net: NetId,
        /// Length bias in micrometres.
        extra_um: f64,
    },
}

/// A failure to inject through a [`FaultProbe`] hook point.
///
/// Each variant panics at a different layer of the engine, simulating
/// the internal-invariant failures the
/// [`crate::GlobalRouter::route_checked`] isolation boundary exists to
/// contain: a poisoned density read (the shared map returned garbage and
/// a consistency check tripped), a corrupted decision stream, a
/// mid-dirty-set scoreboard failure, and a phase that dies on entry.
/// Recovery *stalls* need no injection hook — the adversarial generator
/// (`bgr_gen::adversarial`) forces them with infeasible delay limits.
/// [`Fault::Corrupt`] is the exception: it panics nowhere and instead
/// silently corrupts engine state (see [`Corruption`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Panic when the `n`-th deterministic [`TraceEvent`] is observed
    /// (0-based), anywhere in the pipeline.
    PanicAtEvent(u64),
    /// Panic when the `n`-th scoreboard re-key is recorded — lands in
    /// the middle of a deletion's dirty-set processing, after density
    /// was mutated but before every champion is re-pushed.
    PanicAtRekey(u64),
    /// Panic when the `n`-th density read (window or aggregate query)
    /// is counted — models a poisoned density access detected by the
    /// reader.
    PanicAtDensityRead(u64),
    /// Panic on entering `phase`.
    PanicAtPhaseEnter(Phase),
    /// Silently corrupt incremental engine state instead of panicking.
    Corrupt(Corruption),
}

/// Marker every injected panic message carries, so tests can tell an
/// injected fault from a genuine invariant failure.
pub const FAULT_MARKER: &str = "injected fault";

/// A [`Probe`] that injects one [`Fault`] at its hook point, for the
/// fault-injection harness (`tests/fuzz_route.rs`).
///
/// `ENABLED` is `true`, so the engine performs all probe-feeding work
/// (provenance tracking, counter flushes) and every hook point is live.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    fault: Fault,
    events: u64,
    rekeys: u64,
    density_reads: u64,
    corrupted: bool,
}

impl FaultProbe {
    /// Arms `fault`.
    pub fn new(fault: Fault) -> Self {
        Self {
            fault,
            events: 0,
            rekeys: 0,
            density_reads: 0,
            corrupted: false,
        }
    }

    /// The armed fault.
    pub fn fault(&self) -> Fault {
        self.fault
    }

    fn trip(&self, what: &str) -> ! {
        panic!("{FAULT_MARKER}: {what} ({:?})", self.fault);
    }
}

impl Probe for FaultProbe {
    fn event(&mut self, _ev: TraceEvent) {
        if let Fault::PanicAtEvent(n) = self.fault {
            if self.events == n {
                self.trip("event threshold reached");
            }
        }
        self.events += 1;
    }

    fn count(&mut self, c: Counter, by: u64) {
        if let Fault::PanicAtDensityRead(n) = self.fault {
            if matches!(
                c,
                Counter::DensityWindowQuery | Counter::DensityAggregateQuery
            ) {
                self.density_reads += by;
                if self.density_reads > n {
                    self.trip("poisoned density read");
                }
            }
        }
    }

    fn rekey(&mut self, _net: NetId, cause: RekeyCause) {
        if let Fault::PanicAtRekey(n) = self.fault {
            if self.rekeys == n {
                self.trip("re-key threshold reached");
            }
        }
        self.rekeys += 1;
        self.count(cause.counter(), 1);
    }

    fn phase_enter(&mut self, phase: Phase) {
        if self.fault == Fault::PanicAtPhaseEnter(phase) {
            self.trip("phase entered");
        }
    }

    fn corruption(&mut self) -> Option<Corruption> {
        let Fault::Corrupt(c) = self.fault else {
            return None;
        };
        match c {
            // One-shot: a second phantom span would double the drift
            // and muddy the "first divergence" the test asserts on.
            Corruption::FlipDensitySpan { .. } => {
                if self.corrupted {
                    return None;
                }
                self.corrupted = true;
                Some(c)
            }
            // Persistent: re-applied every poll so snapshots/restores
            // and re-keys cannot silently heal the corruption.
            Corruption::StaleChampion { .. } | Corruption::SkewDelay { .. } => Some(c),
        }
    }

    fn corrupting(&self) -> bool {
        matches!(self.fault, Fault::Corrupt(_))
    }
}

/// Probe adapter recording the most recently entered [`Phase`] into a
/// shared cell, so [`crate::GlobalRouter::route_checked`] can attribute
/// a caught panic to the phase that was active when it unwound. The
/// cell is read *after* `catch_unwind`, hence the `Arc`/atomic rather
/// than a plain field.
pub(crate) struct PhaseTracked<P> {
    inner: P,
    current: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl<P: Probe> PhaseTracked<P> {
    /// Sentinel for "no phase entered yet".
    const SETUP: usize = usize::MAX;

    pub(crate) fn new(inner: P) -> Self {
        Self {
            inner,
            current: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(Self::SETUP)),
        }
    }

    /// Handle that survives the probe moving into (and unwinding out
    /// of) the engine.
    pub(crate) fn handle(&self) -> std::sync::Arc<std::sync::atomic::AtomicUsize> {
        self.current.clone()
    }

    /// Label of the phase index stored in a handle.
    pub(crate) fn label_of(raw: usize) -> &'static str {
        Phase::ALL.get(raw).map(|p| p.label()).unwrap_or("setup")
    }

    pub(crate) fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Probe> Probe for PhaseTracked<P> {
    const ENABLED: bool = P::ENABLED;
    const PROFILING: bool = P::PROFILING;

    fn event(&mut self, ev: TraceEvent) {
        self.inner.event(ev);
    }

    fn count(&mut self, c: Counter, by: u64) {
        self.inner.count(c, by);
    }

    fn sample(&mut self, h: Hist, value: u64) {
        self.inner.sample(h, value);
    }

    fn rekey(&mut self, net: NetId, cause: RekeyCause) {
        self.inner.rekey(net, cause);
    }

    fn phase_enter(&mut self, phase: Phase) {
        let idx = Phase::ALL
            .iter()
            .position(|&p| p == phase)
            .unwrap_or(Self::SETUP);
        self.current
            .store(idx, std::sync::atomic::Ordering::Relaxed);
        self.inner.phase_enter(phase);
    }

    fn phase_exit(&mut self, phase: Phase) {
        self.inner.phase_exit(phase);
    }

    fn scope_enter(&mut self, scope: Scope) {
        self.inner.scope_enter(scope);
    }

    fn scope_exit(&mut self, scope: Scope) {
        self.inner.scope_exit(scope);
    }

    fn events_len(&self) -> usize {
        self.inner.events_len()
    }

    fn corruption(&mut self) -> Option<Corruption> {
        self.inner.corruption()
    }

    fn corrupting(&self) -> bool {
        self.inner.corrupting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, r) in RekeyCause::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        // Labels are unique (the JSONL schema depends on it).
        let mut labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Counter::COUNT);
    }

    #[test]
    fn hist_buckets_cover_the_line() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(15), 4);
        assert_eq!(Hist::bucket(31), 5);
        assert_eq!(Hist::bucket(63), 6);
        assert_eq!(Hist::bucket(64), 7);
        assert_eq!(Hist::bucket(u64::MAX), 7);
    }

    #[test]
    fn rekey_causes_replace_magic_indices() {
        let mut rc = RekeyCauses::default();
        rc.record(RekeyCause::Graph);
        rc.record(RekeyCause::AggregateMoved);
        rc.record(RekeyCause::AggregateMoved);
        assert_eq!(rc.of(RekeyCause::Graph), 1);
        assert_eq!(rc.of(RekeyCause::AggregateMoved), 2);
        assert_eq!(rc.of(RekeyCause::SpanOverlap), 0);
        assert_eq!(rc.total(), 3);
        let pairs: Vec<_> = rc.iter().collect();
        assert_eq!(pairs[1], (RekeyCause::AggregateMoved, 2));
    }

    #[test]
    fn collecting_probe_separates_events_counters_and_spans() {
        let mut p = CollectingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.event(TraceEvent::NetBecameTree { net: NetId::new(3) });
        p.count(Counter::HeapPop, 2);
        p.sample(Hist::DirtySetSize, 5);
        p.rekey(NetId::new(1), RekeyCause::SpanOverlap);
        p.phase_exit(Phase::InitialRouting);
        let trace = p.finish();
        // Stream: enter, net-tree, exit.
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.counter(Counter::HeapPop), 2);
        assert_eq!(trace.counter(Counter::RekeySpan), 1);
        assert_eq!(trace.hist(Hist::DirtySetSize)[Hist::bucket(5)], 1);
        assert_eq!(trace.spans.len(), 1);
        let span = &trace.spans[0];
        assert_eq!(span.phase, Phase::InitialRouting);
        assert_eq!(span.events_len, 1); // markers excluded
        assert_eq!(span.counters[Counter::HeapPop.index()], 2);
    }

    #[test]
    fn fault_probe_trips_on_its_threshold_only() {
        let mut p = FaultProbe::new(Fault::PanicAtEvent(2));
        p.event(TraceEvent::NetBecameTree { net: NetId::new(0) });
        p.event(TraceEvent::NetBecameTree { net: NetId::new(1) });
        // Non-matching hooks never trip.
        p.count(Counter::DensityWindowQuery, 100);
        p.rekey(NetId::new(0), RekeyCause::Graph);
        p.phase_enter(Phase::ImproveArea);
        let err = std::panic::catch_unwind(move || {
            p.event(TraceEvent::NetBecameTree { net: NetId::new(2) });
        })
        .expect_err("third event must trip");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(FAULT_MARKER), "{msg}");
    }

    #[test]
    fn fault_probe_density_fault_counts_by_amount() {
        let mut p = FaultProbe::new(Fault::PanicAtDensityRead(5));
        p.count(Counter::DensityWindowQuery, 3);
        p.count(Counter::KeyEval, 100); // not a density read
        let r = std::panic::catch_unwind(move || {
            p.count(Counter::DensityAggregateQuery, 10);
        });
        assert!(r.is_err());
    }

    #[test]
    fn phase_tracker_records_last_entered_phase() {
        let tracked = PhaseTracked::new(NoopProbe);
        let handle = tracked.handle();
        let mut tracked = tracked;
        assert_eq!(
            PhaseTracked::<NoopProbe>::label_of(handle.load(std::sync::atomic::Ordering::Relaxed)),
            "setup"
        );
        tracked.phase_enter(Phase::InitialRouting);
        tracked.phase_exit(Phase::InitialRouting);
        assert_eq!(
            PhaseTracked::<NoopProbe>::label_of(handle.load(std::sync::atomic::Ordering::Relaxed)),
            "initial_routing"
        );
        const { assert!(!PhaseTracked::<NoopProbe>::ENABLED) };
        let _ = tracked.into_inner();
    }

    #[test]
    fn corruption_polling_is_one_shot_or_persistent_by_variant() {
        // Panic faults never corrupt.
        let mut p = FaultProbe::new(Fault::PanicAtEvent(99));
        assert!(!p.corrupting());
        assert_eq!(p.corruption(), None);

        // One-shot: the phantom span is handed out exactly once.
        let flip = Corruption::FlipDensitySpan {
            channel: 2,
            x1: 10,
            x2: 20,
            width: 1,
        };
        let mut p = FaultProbe::new(Fault::Corrupt(flip));
        assert!(p.corrupting());
        assert_eq!(p.corruption(), Some(flip));
        assert_eq!(p.corruption(), None);
        assert!(p.corrupting(), "stays corrupting after the injection");

        // Persistent: returned on every poll.
        let skew = Corruption::SkewDelay {
            net: NetId::new(1),
            extra_um: -250.0,
        };
        let mut p = FaultProbe::new(Fault::Corrupt(skew));
        assert_eq!(p.corruption(), Some(skew));
        assert_eq!(p.corruption(), Some(skew));
    }

    #[test]
    fn profiling_probe_builds_an_aggregated_tree() {
        let mut p = ProfilingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        for _ in 0..3 {
            p.scope_enter(Scope::Select);
            p.scope_exit(Scope::Select);
            p.scope_enter(Scope::Rekey);
            p.scope_enter(Scope::RekeyFor(RekeyCause::Graph));
            p.scope_exit(Scope::RekeyFor(RekeyCause::Graph));
            p.scope_exit(Scope::Rekey);
        }
        p.event(TraceEvent::NetBecameTree { net: NetId::new(0) });
        p.phase_exit(Phase::InitialRouting);
        p.phase_enter(Phase::ImproveArea);
        p.scope_enter(Scope::Reroute);
        p.scope_exit(Scope::Reroute);
        p.phase_exit(Phase::ImproveArea);

        let (trace, tree) = p.finish();
        // The inner trace is a normal collecting trace.
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.events.len(), 5); // 2×(enter+exit) + net-tree

        let entries = tree.entries();
        let paths: Vec<String> = entries.iter().map(|e| e.path.join(";")).collect();
        assert_eq!(
            paths,
            [
                "initial_routing",
                "initial_routing;select",
                "initial_routing;rekey",
                "initial_routing;rekey;rekey:graph",
                "improve_area",
                "improve_area;reroute",
            ]
        );
        let select = &entries[1];
        assert_eq!(select.calls, 3, "repeated scopes aggregate");
        let rekey = &entries[2];
        assert!(rekey.total >= entries[3].total, "parent covers child");
        assert!(rekey.self_time <= rekey.total);
        // Root self-time excludes profiled children.
        let root = &entries[0];
        assert!(root.self_time <= root.total);
        assert!(tree.total() >= root.total);
    }

    #[test]
    fn profile_tree_renders_ascii_and_folded() {
        let mut p = ProfilingProbe::new();
        p.phase_enter(Phase::InitialRouting);
        p.scope_enter(Scope::Select);
        std::thread::sleep(Duration::from_millis(2));
        p.scope_exit(Scope::Select);
        p.phase_exit(Phase::InitialRouting);
        let (_, tree) = p.finish();

        let ascii = tree.to_ascii();
        assert!(ascii.contains("phase/scope"), "{ascii}");
        assert!(ascii.contains("initial_routing"), "{ascii}");
        assert!(ascii.contains("  select"), "{ascii}");

        let folded = tree.to_folded();
        let select_line = folded
            .lines()
            .find(|l| l.starts_with("initial_routing;select "))
            .expect("folded stack for the scope");
        let us: u64 = select_line
            .rsplit(' ')
            .next()
            .expect("self-time field")
            .parse()
            .expect("numeric self-time");
        assert!(us >= 2_000, "slept 2ms inside the scope: {us}µs");
    }

    #[test]
    fn scope_labels_are_stable_and_unique() {
        let all = [
            Scope::Select,
            Scope::DeleteModify,
            Scope::DeriveDirty,
            Scope::Rekey,
            Scope::RekeyFor(RekeyCause::Graph),
            Scope::RekeyFor(RekeyCause::AggregateMoved),
            Scope::RekeyFor(RekeyCause::SpanOverlap),
            Scope::RekeyFor(RekeyCause::Constraint),
            Scope::Reroute,
            Scope::Audit,
        ];
        let mut labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn noop_probe_is_disabled() {
        const { assert!(!NoopProbe::ENABLED) };
        const { assert!(CollectingProbe::ENABLED) };
        // All hooks are callable and inert.
        let mut p = NoopProbe;
        p.event(TraceEvent::PhaseEnter {
            phase: Phase::GraphBuild,
        });
        p.count(Counter::KeyEval, 1);
        p.rekey(NetId::new(0), RekeyCause::Graph);
    }
}
