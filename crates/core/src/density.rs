//! Channel density bookkeeping (§3.3, Fig. 4).
//!
//! For every channel `c` and wiring-grid column `x`, the router tracks
//!
//! * `d_M(c,x)` — the number of *alive* trunk edges (weighted by net
//!   width) running over `x`: an **upper bound** on the final density;
//! * `d_m(c,x)` — the same count restricted to *bridge* trunk edges,
//!   i.e. wiring that can no longer be avoided: a **lower bound**.
//!
//! Channel aggregates `C_M, NC_M, C_m, NC_m` (the maxima and the number of
//! columns attaining them) and per-edge interval parameters
//! `D_M, ND_M, D_m, ND_m` feed the density conditions of §3.4.

use bgr_layout::ChannelId;

/// Per-edge density parameters over the edge's interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeDensity {
    /// `D_M(e)`: max of `d_M` over the interval.
    pub d_max: i32,
    /// `ND_M(e)`: columns of the interval attaining `D_M(e)`.
    pub nd_max: i32,
    /// `D_m(e)`: max of `d_m` over the interval.
    pub d_min: i32,
    /// `ND_m(e)`: columns of the interval attaining `D_m(e)`.
    pub nd_min: i32,
}

#[derive(Debug, Clone)]
struct Channel {
    d_max: Vec<i32>,
    d_min: Vec<i32>,
    dirty: bool,
    c_max: i32,
    nc_max: i32,
    c_min: i32,
    nc_min: i32,
}

impl Channel {
    fn new(width: usize) -> Self {
        Self {
            d_max: vec![0; width],
            d_min: vec![0; width],
            dirty: false,
            c_max: 0,
            nc_max: 0,
            c_min: 0,
            nc_min: 0,
        }
    }

    fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        let (mut cm, mut ncm) = (0, 0);
        for &d in &self.d_max {
            if d > cm {
                cm = d;
                ncm = 1;
            } else if d == cm {
                ncm += 1;
            }
        }
        let (mut cn, mut ncn) = (0, 0);
        for &d in &self.d_min {
            if d > cn {
                cn = d;
                ncn = 1;
            } else if d == cn {
                ncn += 1;
            }
        }
        self.c_max = cm;
        self.nc_max = if cm == 0 { 0 } else { ncm };
        self.c_min = cn;
        self.nc_min = if cn == 0 { 0 } else { ncn };
        self.dirty = false;
    }
}

/// Density state over all channels.
#[derive(Debug, Clone)]
pub struct DensityMap {
    width: usize,
    channels: Vec<Channel>,
}

impl DensityMap {
    /// Creates an all-zero map for `num_channels` channels over a chip of
    /// `width` pitch columns.
    pub fn new(num_channels: usize, width: usize) -> Self {
        Self {
            width,
            channels: vec![Channel::new(width); num_channels],
        }
    }

    /// Chip width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    fn clamp(&self, x1: i32, x2: i32) -> (usize, usize) {
        let a = x1.clamp(0, self.width as i32) as usize;
        let b = x2.clamp(0, self.width as i32) as usize;
        (a, b)
    }

    /// Adds a trunk span of weight `w` over `[x1, x2)` to `d_M`; when
    /// `bridge`, also to `d_m`.
    pub fn add_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32, bridge: bool) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        let ch = &mut self.channels[channel.index()];
        for x in a..b {
            ch.d_max[x] += w;
        }
        if bridge {
            for x in a..b {
                ch.d_min[x] += w;
            }
        }
        ch.dirty = true;
    }

    /// Removes a span previously added with the given bridge status.
    pub fn remove_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32, was_bridge: bool) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        let ch = &mut self.channels[channel.index()];
        for x in a..b {
            ch.d_max[x] -= w;
            debug_assert!(ch.d_max[x] >= 0, "d_M underflow");
        }
        if was_bridge {
            for x in a..b {
                ch.d_min[x] -= w;
                debug_assert!(ch.d_min[x] >= 0, "d_m underflow");
            }
        }
        ch.dirty = true;
    }

    /// Promotes a span to bridge status (adds it to `d_m` only).
    pub fn promote_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        let ch = &mut self.channels[channel.index()];
        for x in a..b {
            ch.d_min[x] += w;
        }
        ch.dirty = true;
    }

    /// `C_M(c)`: maximum of `d_M` in the channel.
    pub fn c_max(&mut self, channel: ChannelId) -> i32 {
        let ch = &mut self.channels[channel.index()];
        ch.refresh();
        ch.c_max
    }

    /// `NC_M(c)`: number of columns attaining `C_M(c)`.
    pub fn nc_max(&mut self, channel: ChannelId) -> i32 {
        let ch = &mut self.channels[channel.index()];
        ch.refresh();
        ch.nc_max
    }

    /// `C_m(c)`: maximum of `d_m` in the channel.
    pub fn c_min(&mut self, channel: ChannelId) -> i32 {
        let ch = &mut self.channels[channel.index()];
        ch.refresh();
        ch.c_min
    }

    /// `NC_m(c)`: number of columns attaining `C_m(c)`.
    pub fn nc_min(&mut self, channel: ChannelId) -> i32 {
        let ch = &mut self.channels[channel.index()];
        ch.refresh();
        ch.nc_min
    }

    /// Per-edge parameters `D_M, ND_M, D_m, ND_m` over `[x1, x2)`.
    ///
    /// An empty interval yields all zeros (vertical edges have no density
    /// footprint).
    pub fn edge_density(&self, channel: ChannelId, x1: i32, x2: i32) -> EdgeDensity {
        let (a, b) = self.clamp(x1, x2);
        let mut out = EdgeDensity::default();
        if a >= b {
            return out;
        }
        let ch = &self.channels[channel.index()];
        for x in a..b {
            let d = ch.d_max[x];
            if d > out.d_max {
                out.d_max = d;
                out.nd_max = 1;
            } else if d == out.d_max {
                out.nd_max += 1;
            }
            let d = ch.d_min[x];
            if d > out.d_min {
                out.d_min = d;
                out.nd_min = 1;
            } else if d == out.d_min {
                out.nd_min += 1;
            }
        }
        out
    }

    /// Column of the globally highest `d_M` and its channel.
    pub fn hottest_column(&mut self) -> Option<(ChannelId, usize, i32)> {
        let mut best: Option<(ChannelId, usize, i32)> = None;
        for c in 0..self.channels.len() {
            self.channels[c].refresh();
            let ch = &self.channels[c];
            if ch.c_max == 0 {
                continue;
            }
            if best.map(|(_, _, d)| ch.c_max > d).unwrap_or(true) {
                let x = ch
                    .d_max
                    .iter()
                    .position(|&d| d == ch.c_max)
                    .expect("c_max attained");
                best = Some((ChannelId::new(c), x, ch.c_max));
            }
        }
        best
    }

    /// Snapshot of `d_M` per channel (for reporting and for the channel
    /// router's lower-bound checks).
    pub fn snapshot_max(&self) -> Vec<Vec<i32>> {
        self.channels.iter().map(|c| c.d_max.clone()).collect()
    }

    /// Final per-channel density (`C_M`), the global-routing estimate of
    /// channel track counts.
    pub fn channel_maxima(&mut self) -> Vec<i32> {
        (0..self.channels.len())
            .map(|c| self.c_max(ChannelId::new(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut d = DensityMap::new(2, 10);
        let c = ChannelId::new(1);
        d.add_span(c, 2, 6, 1, false);
        d.add_span(c, 4, 8, 2, true);
        assert_eq!(d.c_max(c), 3);
        assert_eq!(d.c_min(c), 2);
        d.remove_span(c, 4, 8, 2, true);
        assert_eq!(d.c_max(c), 1);
        assert_eq!(d.c_min(c), 0);
        d.remove_span(c, 2, 6, 1, false);
        assert_eq!(d.c_max(c), 0);
    }

    #[test]
    fn nc_counts_columns_at_max() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 4, 1, false);
        d.add_span(c, 2, 8, 1, false);
        // d_max: 1 1 2 2 1 1 1 1 0 0 -> C_M = 2 at columns 2,3.
        assert_eq!(d.c_max(c), 2);
        assert_eq!(d.nc_max(c), 2);
    }

    #[test]
    fn promote_moves_lower_bound() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 5, 1, false);
        assert_eq!(d.c_min(c), 0);
        d.promote_span(c, 0, 5, 1);
        assert_eq!(d.c_min(c), 1);
        assert_eq!(d.nc_min(c), 5);
    }

    #[test]
    fn edge_density_over_interval() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 4, 1, true);
        d.add_span(c, 2, 8, 1, false);
        // d_max: 1 1 2 2 1 1 1 1 0 0 ; d_min: 1 1 1 1 0 0 0 0 0 0
        let e = d.edge_density(c, 1, 5);
        assert_eq!(e.d_max, 2);
        assert_eq!(e.nd_max, 2);
        assert_eq!(e.d_min, 1);
        assert_eq!(e.nd_min, 3);
        // Vertical edge: zero footprint.
        assert_eq!(d.edge_density(c, 3, 3), EdgeDensity::default());
    }

    #[test]
    fn width_weights_spans() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 3, 2, false);
        assert_eq!(d.c_max(c), 2);
    }

    #[test]
    fn hottest_column_finds_global_peak() {
        let mut d = DensityMap::new(3, 10);
        d.add_span(ChannelId::new(0), 0, 2, 1, false);
        d.add_span(ChannelId::new(2), 5, 7, 4, false);
        let (c, x, v) = d.hottest_column().unwrap();
        assert_eq!(c, ChannelId::new(2));
        assert_eq!(x, 5);
        assert_eq!(v, 4);
    }

    #[test]
    fn spans_outside_chip_are_clamped() {
        let mut d = DensityMap::new(1, 4);
        let c = ChannelId::new(0);
        d.add_span(c, -3, 99, 1, false);
        assert_eq!(d.c_max(c), 1);
        assert_eq!(d.nc_max(c), 4);
        d.remove_span(c, -3, 99, 1, false);
        assert_eq!(d.c_max(c), 0);
    }
}
