//! Channel density bookkeeping (§3.3, Fig. 4), on segment trees.
//!
//! For every channel `c` and wiring-grid column `x`, the router tracks
//!
//! * `d_M(c,x)` — the number of *alive* trunk edges (weighted by net
//!   width) running over `x`: an **upper bound** on the final density;
//! * `d_m(c,x)` — the same count restricted to *bridge* trunk edges,
//!   i.e. wiring that can no longer be avoided: a **lower bound**.
//!
//! Channel aggregates `C_M, NC_M, C_m, NC_m` (the maxima and the number of
//! columns attaining them) and per-edge interval parameters
//! `D_M, ND_M, D_m, ND_m` feed the density conditions of §3.4.
//!
//! # Complexity
//!
//! Each profile is a segment tree maintaining `(max, count-of-max)` under
//! lazy range-add. `add_span` / `remove_span` / `promote_span` and every
//! interval query run in O(log width); the channel aggregates are read
//! off the root in O(1). The seed implementation kept flat per-column
//! vectors with a dirty flag and rescanned the whole chip width per
//! refresh — O(width) on the engine's hottest path.
//!
//! # Zero-density convention
//!
//! A channel with no wiring has `d(c,x) = 0` everywhere; its maximum is
//! 0 at *every* column. The **channel aggregates** (`nc_max`, `nc_min`)
//! deliberately report the attained-count as **0** in that case, not
//! `width`: the selection criteria of §3.4 read `NC` as "columns of
//! *congestion* at the peak", and an empty channel exerts no pressure.
//! The **interval queries** ([`DensityMap::edge_density`]) do NOT apply
//! this convention — a window whose maximum is 0 reports how many of its
//! columns attain 0, because the per-edge terms `NC − ND` must stay
//! consistent for edges over empty regions. Both behaviors are pinned by
//! unit tests below.

use bgr_layout::ChannelId;

/// Per-edge density parameters over the edge's interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeDensity {
    /// `D_M(e)`: max of `d_M` over the interval.
    pub d_max: i32,
    /// `ND_M(e)`: columns of the interval attaining `D_M(e)`.
    pub nd_max: i32,
    /// `D_m(e)`: max of `d_m` over the interval.
    pub d_min: i32,
    /// `ND_m(e)`: columns of the interval attaining `D_m(e)`.
    pub nd_min: i32,
}

/// A segment tree over `width` columns maintaining `(max, count-of-max)`
/// under lazy range-add updates.
///
/// Nodes store the subtree maximum and the number of leaves attaining
/// it; pending adds are kept in `lazy` and never pushed down — queries
/// carry the accumulated offset on the way down instead, so reads take
/// `&self`.
#[derive(Debug, Clone)]
struct MaxCountTree {
    width: usize,
    /// Subtree max (including this node's own lazy offset).
    max: Vec<i32>,
    /// Leaves attaining `max` within the subtree.
    cnt: Vec<i32>,
    /// Pending add for the node's whole subtree, *already included* in
    /// `max` of this node but not in its children.
    lazy: Vec<i32>,
}

impl MaxCountTree {
    fn new(width: usize) -> Self {
        let n = width.max(1);
        Self {
            width: n,
            max: vec![0; 4 * n],
            cnt: Self::init_cnt(n),
            lazy: vec![0; 4 * n],
        }
    }

    fn init_cnt(n: usize) -> Vec<i32> {
        // Every leaf starts at 0, so every node's count is its span size.
        let mut cnt = vec![0; 4 * n];
        fn fill(cnt: &mut [i32], node: usize, l: usize, r: usize) {
            cnt[node] = (r - l) as i32;
            if r - l > 1 {
                let m = l + (r - l) / 2;
                fill(cnt, 2 * node, l, m);
                fill(cnt, 2 * node + 1, m, r);
            }
        }
        fill(&mut cnt, 1, 0, n);
        cnt
    }

    /// Adds `v` over `[l, r)` (caller clamps to `[0, width)`).
    fn range_add(&mut self, l: usize, r: usize, v: i32) {
        if l < r {
            self.add_rec(1, 0, self.width, l, r, v);
        }
    }

    fn add_rec(&mut self, node: usize, nl: usize, nr: usize, l: usize, r: usize, v: i32) {
        if r <= nl || nr <= l {
            return;
        }
        if l <= nl && nr <= r {
            self.max[node] += v;
            self.lazy[node] += v;
            return;
        }
        let m = nl + (nr - nl) / 2;
        self.add_rec(2 * node, nl, m, l, r, v);
        self.add_rec(2 * node + 1, m, nr, l, r, v);
        let off = self.lazy[node];
        let (a, b) = (self.max[2 * node], self.max[2 * node + 1]);
        self.max[node] = a.max(b) + off;
        self.cnt[node] = if a == b {
            self.cnt[2 * node] + self.cnt[2 * node + 1]
        } else if a > b {
            self.cnt[2 * node]
        } else {
            self.cnt[2 * node + 1]
        };
    }

    /// Maximum over the whole profile.
    #[inline]
    fn root_max(&self) -> i32 {
        self.max[1]
    }

    /// Columns attaining the whole-profile maximum.
    #[inline]
    fn root_cnt(&self) -> i32 {
        self.cnt[1]
    }

    /// `(max, count-of-max)` over `[l, r)` (caller clamps; `l < r`).
    fn query(&self, l: usize, r: usize) -> (i32, i32) {
        self.query_rec(1, 0, self.width, l, r, 0)
    }

    fn query_rec(
        &self,
        node: usize,
        nl: usize,
        nr: usize,
        l: usize,
        r: usize,
        off: i32,
    ) -> (i32, i32) {
        if l <= nl && nr <= r {
            return (self.max[node] + off, self.cnt[node]);
        }
        let m = nl + (nr - nl) / 2;
        let off = off + self.lazy[node];
        let left = if l < m {
            Some(self.query_rec(2 * node, nl, m, l, r, off))
        } else {
            None
        };
        let right = if r > m {
            Some(self.query_rec(2 * node + 1, m, nr, l, r, off))
        } else {
            None
        };
        match (left, right) {
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some((am, ac)), Some((bm, bc))) => {
                if am == bm {
                    (am, ac + bc)
                } else if am > bm {
                    (am, ac)
                } else {
                    (bm, bc)
                }
            }
            (None, None) => unreachable!("query range does not straddle node"),
        }
    }

    /// Leftmost column attaining the whole-profile maximum.
    fn first_max_column(&self) -> usize {
        let target = self.root_max();
        let (mut node, mut nl, mut nr, mut off) = (1usize, 0usize, self.width, 0i32);
        while nr - nl > 1 {
            off += self.lazy[node];
            let m = nl + (nr - nl) / 2;
            if self.max[2 * node] + off == target {
                node *= 2;
                nr = m;
            } else {
                node = 2 * node + 1;
                nl = m;
            }
        }
        nl
    }

    /// Reconstructs the flat per-column profile (O(width); reporting
    /// only).
    fn values(&self) -> Vec<i32> {
        let mut out = vec![0; self.width];
        self.values_rec(1, 0, self.width, 0, &mut out);
        out
    }

    fn values_rec(&self, node: usize, nl: usize, nr: usize, off: i32, out: &mut [i32]) {
        if nr - nl == 1 {
            out[nl] = self.max[node] + off;
            return;
        }
        let off = off + self.lazy[node];
        let m = nl + (nr - nl) / 2;
        self.values_rec(2 * node, nl, m, off, out);
        self.values_rec(2 * node + 1, m, nr, off, out);
    }
}

#[derive(Debug, Clone)]
struct Channel {
    d_max: MaxCountTree,
    d_min: MaxCountTree,
}

impl Channel {
    fn new(width: usize) -> Self {
        Self {
            d_max: MaxCountTree::new(width),
            d_min: MaxCountTree::new(width),
        }
    }
}

/// Density state over all channels.
#[derive(Debug, Clone)]
pub struct DensityMap {
    width: usize,
    channels: Vec<Channel>,
}

impl DensityMap {
    /// Creates an all-zero map for `num_channels` channels over a chip of
    /// `width` pitch columns.
    pub fn new(num_channels: usize, width: usize) -> Self {
        Self {
            width,
            channels: (0..num_channels).map(|_| Channel::new(width)).collect(),
        }
    }

    /// Chip width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    fn clamp(&self, x1: i32, x2: i32) -> (usize, usize) {
        let a = x1.clamp(0, self.width as i32) as usize;
        let b = x2.clamp(0, self.width as i32) as usize;
        (a, b)
    }

    /// Adds a trunk span of weight `w` over `[x1, x2)` to `d_M`; when
    /// `bridge`, also to `d_m`.
    pub fn add_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32, bridge: bool) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        let ch = &mut self.channels[channel.index()];
        ch.d_max.range_add(a, b, w);
        if bridge {
            ch.d_min.range_add(a, b, w);
        }
    }

    /// Removes a span previously added with the given bridge status.
    pub fn remove_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32, was_bridge: bool) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        let ch = &mut self.channels[channel.index()];
        ch.d_max.range_add(a, b, -w);
        debug_assert!(ch.d_max.root_max() >= 0 || ch.d_max.values().iter().all(|&d| d >= 0));
        if was_bridge {
            ch.d_min.range_add(a, b, -w);
        }
    }

    /// Promotes a span to bridge status (adds it to `d_m` only).
    pub fn promote_span(&mut self, channel: ChannelId, x1: i32, x2: i32, w: i32) {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return;
        }
        self.channels[channel.index()].d_min.range_add(a, b, w);
    }

    /// `C_M(c)`: maximum of `d_M` in the channel.
    pub fn c_max(&self, channel: ChannelId) -> i32 {
        self.channels[channel.index()].d_max.root_max()
    }

    /// `NC_M(c)`: number of columns attaining `C_M(c)`.
    ///
    /// Zero-density convention: reports 0 (not `width`) when `C_M` is 0.
    pub fn nc_max(&self, channel: ChannelId) -> i32 {
        let t = &self.channels[channel.index()].d_max;
        if t.root_max() == 0 {
            0
        } else {
            t.root_cnt()
        }
    }

    /// `C_m(c)`: maximum of `d_m` in the channel.
    pub fn c_min(&self, channel: ChannelId) -> i32 {
        self.channels[channel.index()].d_min.root_max()
    }

    /// `NC_m(c)`: number of columns attaining `C_m(c)`.
    ///
    /// Zero-density convention: reports 0 (not `width`) when `C_m` is 0.
    pub fn nc_min(&self, channel: ChannelId) -> i32 {
        let t = &self.channels[channel.index()].d_min;
        if t.root_max() == 0 {
            0
        } else {
            t.root_cnt()
        }
    }

    /// Per-edge parameters `D_M, ND_M, D_m, ND_m` over `[x1, x2)`.
    ///
    /// An empty interval yields all zeros (vertical edges have no density
    /// footprint). A non-empty interval over an all-zero region reports
    /// its maximum (0) with the true attained-count — see the module docs
    /// on the zero-density convention.
    pub fn edge_density(&self, channel: ChannelId, x1: i32, x2: i32) -> EdgeDensity {
        let (a, b) = self.clamp(x1, x2);
        if a >= b {
            return EdgeDensity::default();
        }
        let ch = &self.channels[channel.index()];
        let (d_max, nd_max) = ch.d_max.query(a, b);
        let (d_min, nd_min) = ch.d_min.query(a, b);
        EdgeDensity {
            d_max,
            nd_max,
            d_min,
            nd_min,
        }
    }

    /// Column of the globally highest `d_M` and its channel.
    pub fn hottest_column(&self) -> Option<(ChannelId, usize, i32)> {
        let mut best: Option<(ChannelId, usize, i32)> = None;
        for (c, ch) in self.channels.iter().enumerate() {
            let m = ch.d_max.root_max();
            if m == 0 {
                continue;
            }
            if best.map(|(_, _, d)| m > d).unwrap_or(true) {
                best = Some((ChannelId::new(c), ch.d_max.first_max_column(), m));
            }
        }
        best
    }

    /// Snapshot of `d_M` per channel (for reporting and for the channel
    /// router's lower-bound checks).
    pub fn snapshot_max(&self) -> Vec<Vec<i32>> {
        self.channels.iter().map(|c| c.d_max.values()).collect()
    }

    /// Final per-channel density (`C_M`), the global-routing estimate of
    /// channel track counts.
    pub fn channel_maxima(&self) -> Vec<i32> {
        (0..self.channels.len())
            .map(|c| self.c_max(ChannelId::new(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut d = DensityMap::new(2, 10);
        let c = ChannelId::new(1);
        d.add_span(c, 2, 6, 1, false);
        d.add_span(c, 4, 8, 2, true);
        assert_eq!(d.c_max(c), 3);
        assert_eq!(d.c_min(c), 2);
        d.remove_span(c, 4, 8, 2, true);
        assert_eq!(d.c_max(c), 1);
        assert_eq!(d.c_min(c), 0);
        d.remove_span(c, 2, 6, 1, false);
        assert_eq!(d.c_max(c), 0);
    }

    #[test]
    fn nc_counts_columns_at_max() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 4, 1, false);
        d.add_span(c, 2, 8, 1, false);
        // d_max: 1 1 2 2 1 1 1 1 0 0 -> C_M = 2 at columns 2,3.
        assert_eq!(d.c_max(c), 2);
        assert_eq!(d.nc_max(c), 2);
    }

    #[test]
    fn zero_density_channel_reports_zero_counts() {
        // The documented convention: an empty channel has C = 0 attained
        // "nowhere that matters" — NC reports 0, not the chip width.
        let d = DensityMap::new(2, 16);
        for c in [ChannelId::new(0), ChannelId::new(1)] {
            assert_eq!(d.c_max(c), 0);
            assert_eq!(d.nc_max(c), 0);
            assert_eq!(d.c_min(c), 0);
            assert_eq!(d.nc_min(c), 0);
        }
        // And it re-enters that state after wiring is removed.
        let mut d = d;
        d.add_span(ChannelId::new(0), 3, 9, 2, true);
        assert_eq!(d.nc_max(ChannelId::new(0)), 6);
        assert_eq!(d.nc_min(ChannelId::new(0)), 6);
        d.remove_span(ChannelId::new(0), 3, 9, 2, true);
        assert_eq!(d.nc_max(ChannelId::new(0)), 0);
        assert_eq!(d.nc_min(ChannelId::new(0)), 0);
    }

    #[test]
    fn interval_query_keeps_true_zero_counts() {
        // Unlike the channel aggregates, edge_density over an all-zero
        // window reports the genuine attained-count of max 0.
        let d = DensityMap::new(1, 10);
        let e = d.edge_density(ChannelId::new(0), 2, 7);
        assert_eq!(e.d_max, 0);
        assert_eq!(e.nd_max, 5);
        assert_eq!(e.d_min, 0);
        assert_eq!(e.nd_min, 5);
    }

    #[test]
    fn promote_moves_lower_bound() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 5, 1, false);
        assert_eq!(d.c_min(c), 0);
        d.promote_span(c, 0, 5, 1);
        assert_eq!(d.c_min(c), 1);
        assert_eq!(d.nc_min(c), 5);
    }

    #[test]
    fn edge_density_over_interval() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 4, 1, true);
        d.add_span(c, 2, 8, 1, false);
        // d_max: 1 1 2 2 1 1 1 1 0 0 ; d_min: 1 1 1 1 0 0 0 0 0 0
        let e = d.edge_density(c, 1, 5);
        assert_eq!(e.d_max, 2);
        assert_eq!(e.nd_max, 2);
        assert_eq!(e.d_min, 1);
        assert_eq!(e.nd_min, 3);
        // Vertical edge: zero footprint.
        assert_eq!(d.edge_density(c, 3, 3), EdgeDensity::default());
    }

    #[test]
    fn width_weights_spans() {
        let mut d = DensityMap::new(1, 10);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 3, 2, false);
        assert_eq!(d.c_max(c), 2);
    }

    #[test]
    fn hottest_column_finds_global_peak() {
        let mut d = DensityMap::new(3, 10);
        d.add_span(ChannelId::new(0), 0, 2, 1, false);
        d.add_span(ChannelId::new(2), 5, 7, 4, false);
        let (c, x, v) = d.hottest_column().unwrap();
        assert_eq!(c, ChannelId::new(2));
        assert_eq!(x, 5);
        assert_eq!(v, 4);
    }

    #[test]
    fn hottest_column_is_leftmost_at_peak() {
        let mut d = DensityMap::new(1, 12);
        d.add_span(ChannelId::new(0), 3, 6, 2, false);
        d.add_span(ChannelId::new(0), 8, 11, 2, false);
        let (_, x, v) = d.hottest_column().unwrap();
        assert_eq!((x, v), (3, 2));
    }

    #[test]
    fn spans_outside_chip_are_clamped() {
        let mut d = DensityMap::new(1, 4);
        let c = ChannelId::new(0);
        d.add_span(c, -3, 99, 1, false);
        assert_eq!(d.c_max(c), 1);
        assert_eq!(d.nc_max(c), 4);
        d.remove_span(c, -3, 99, 1, false);
        assert_eq!(d.c_max(c), 0);
    }

    #[test]
    fn width_one_chip_works() {
        let mut d = DensityMap::new(1, 1);
        let c = ChannelId::new(0);
        d.add_span(c, 0, 1, 3, true);
        assert_eq!(d.c_max(c), 3);
        assert_eq!(d.nc_max(c), 1);
        assert_eq!(d.edge_density(c, 0, 1).d_min, 3);
    }
}
