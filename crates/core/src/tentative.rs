//! Tentative-tree wire-length estimation (§3.2).
//!
//! "The shortest paths from the driving terminal vertex to all other
//! terminals are first obtained with Dijkstra's shortest-path algorithm.
//! The union of all paths is the tentative tree." The tentative tree's
//! total length is the net's wire-length estimate `CL(n)` feeding the
//! delay model; re-running it *assuming the deletion of `e`* yields the
//! hypothetical lengths behind `LM(e, P)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::RoutingGraph;

/// Min-heap entry with a total-order `f64` key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    vert: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties by vertex for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vert.cmp(&self.vert))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a tentative-tree computation.
#[derive(Debug, Clone, PartialEq)]
pub struct TentativeTree {
    /// Total length of the union of driver-to-sink shortest paths, in µm.
    pub length_um: f64,
    /// Edge indices of the union.
    pub edges: Vec<u32>,
}

/// Computes the tentative tree of a net's routing graph, optionally
/// assuming one extra edge is deleted.
///
/// Returns `None` if some terminal is unreachable from the driver under
/// the assumption (never happens when `skip` is a non-bridge).
pub fn tentative_tree(graph: &RoutingGraph, skip: Option<u32>) -> Option<TentativeTree> {
    tentative_tree_with(graph, skip, |e| graph.edges()[e as usize].len_um)
}

/// Like [`tentative_tree`], but with a caller-supplied edge weight for
/// the shortest-path search (e.g. length plus a congestion penalty, as
/// the sequential baseline router uses). The returned `length_um` is
/// always the *physical* length of the union, independent of the
/// weights.
pub fn tentative_tree_with(
    graph: &RoutingGraph,
    skip: Option<u32>,
    weight: impl Fn(u32) -> f64,
) -> Option<TentativeTree> {
    let nv = graph.verts().len();
    let mut dist = vec![f64::INFINITY; nv];
    let mut parent_edge = vec![u32::MAX; nv];
    let src = graph.driver_vert();
    dist[src as usize] = 0.0;
    let mut heap = BinaryHeap::with_capacity(nv);
    heap.push(HeapItem {
        dist: 0.0,
        vert: src,
    });
    while let Some(HeapItem { dist: d, vert: v }) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, e) in graph.adj(v) {
            if !graph.is_alive(e) || Some(e) == skip {
                continue;
            }
            let nd = d + weight(e);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                parent_edge[w as usize] = e;
                heap.push(HeapItem { dist: nd, vert: w });
            }
        }
    }
    // Union of the driver-to-terminal paths.
    let mut in_union = vec![false; graph.edges().len()];
    for &t in graph.terminal_verts() {
        if dist[t as usize].is_infinite() {
            return None;
        }
        let mut cur = t;
        while cur != src {
            let e = parent_edge[cur as usize];
            if e == u32::MAX || in_union[e as usize] {
                break;
            }
            in_union[e as usize] = true;
            let edge = &graph.edges()[e as usize];
            cur = if edge.a == cur { edge.b } else { edge.a };
        }
    }
    let mut length_um = 0.0;
    let mut edges = Vec::new();
    for (i, &used) in in_union.iter().enumerate() {
        if used {
            length_um += graph.edges()[i].len_um;
            edges.push(i as u32);
        }
    }
    Some(TentativeTree { length_um, edges })
}

/// Tentative length only (µm); `None` on disconnection.
pub fn tentative_length_um(graph: &RoutingGraph, skip: Option<u32>) -> Option<f64> {
    tentative_tree(graph, skip).map(|t| t.length_um)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::{cross_row_net, same_row_net};
    use crate::graph::RoutingGraph;

    #[test]
    fn picks_shortest_side_of_cycle() {
        let (circuit, placement, net) = same_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        let t = tentative_tree(&g, None).unwrap();
        // Shortest driver->sink path: branch + trunk + branch = 30 + 8 + 30.
        assert!((t.length_um - 68.0).abs() < 1e-9);
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn skip_forces_detour() {
        let (circuit, placement, net) = same_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        let base = tentative_tree(&g, None).unwrap();
        // Skipping an edge on the chosen path forces the same-cost other
        // channel (symmetric graph), so length is unchanged; skipping BOTH
        // is impossible with one skip, so check a used trunk.
        let used_trunk = base
            .edges
            .iter()
            .copied()
            .find(|&e| g.edges()[e as usize].kind.is_trunk())
            .unwrap();
        let alt = tentative_tree(&g, Some(used_trunk)).unwrap();
        assert!((alt.length_um - base.length_um).abs() < 1e-9);
        assert!(!alt.edges.contains(&used_trunk));
    }

    #[test]
    fn disconnection_returns_none() {
        let (circuit, placement, net) = cross_row_net();
        let g = RoutingGraph::build(&circuit, &placement, net, &[(1, 4)], 30.0);
        // The feed-half edges are bridges; skipping one disconnects.
        let feed_half = (0..g.edges().len() as u32)
            .find(|&e| {
                matches!(
                    g.edges()[e as usize].kind,
                    crate::graph::REdgeKind::FeedHalf { .. }
                )
            })
            .unwrap();
        assert!(tentative_tree(&g, Some(feed_half)).is_none());
        assert!(tentative_tree(&g, None).is_some());
    }

    #[test]
    fn multi_sink_union_shares_trunk() {
        // Three terminals in one row: driver at x=2 (u1.Y), sinks at x=6,
        // x=9; the union should share trunk segments, with total length
        // less than the sum of individual paths.
        use bgr_layout::{Geometry, PlacementBuilder};
        use bgr_netlist::{CellId, CellLibrary, CircuitBuilder};
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let a = cb.add_input_pad("a");
        let y = cb.add_output_pad("y");
        let u1 = cb.add_cell("u1", inv);
        let u2 = cb.add_cell("u2", inv);
        let u3 = cb.add_cell("u3", inv);
        cb.add_net("n0", cb.pad_term(a), [cb.cell_term(u1, "A").unwrap()])
            .unwrap();
        let net = cb
            .add_net(
                "n1",
                cb.cell_term(u1, "Y").unwrap(),
                [
                    cb.cell_term(u2, "A").unwrap(),
                    cb.cell_term(u3, "A").unwrap(),
                ],
            )
            .unwrap();
        cb.add_net("n2", cb.cell_term(u2, "Y").unwrap(), [cb.pad_term(y)])
            .unwrap();
        // u3.Y dangles (legal).
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 1);
        pb.append_with_width(0, CellId::new(0), 3);
        pb.append_with_width(0, CellId::new(1), 3);
        pb.append_with_width(0, CellId::new(2), 3);
        pb.place_pad_bottom(a, 0);
        pb.place_pad_top(y, 8);
        let placement = pb.finish(&circuit).unwrap();
        let g = RoutingGraph::build(&circuit, &placement, net, &[], 30.0);
        let t = tentative_tree(&g, None).unwrap();
        // Driver u1.Y at x=2, sinks at x=3 and x=6 (pin offsets included):
        // one channel: branches 3×30 + trunk spans (2->3) + (3->6) =
        // 8 + 24 µm.
        assert!((t.length_um - (90.0 + 8.0 + 24.0)).abs() < 1e-9);
    }
}
