//! Feed-cell insertion (§4.3).
//!
//! Bipolar standard cells leave no room for feedthroughs, so when the
//! first assignment pass runs out of positions the router inserts feed
//! cells: per row `r` and width `w`, the shortfall `F(w,r)` determines
//! how many `w`-wide flagged groups to insert; every row additionally
//! receives single-pitch feed cells up to the global maximum
//! `F = max_r Σ_w w·F(w,r)`, so the chip widens by `F` pitches and the
//! re-assignment pass (which respects width flags) is guaranteed to
//! succeed.

use std::collections::HashMap;

use bgr_layout::{FlagPolicy, Placement, SlotStore};
use bgr_netlist::{Circuit, NetId};

use crate::assign::{assign_feedthroughs, AssignOutcome};
use crate::diffpair::PairMap;
use crate::error::RouteError;
use crate::probe::{Probe, TraceEvent};

/// Result of assignment-with-insertion.
#[derive(Debug, Clone)]
pub struct FeedPlan {
    /// Final slot occupancy.
    pub slots: SlotStore,
    /// Per net: assigned `(row, x)` feedthrough points.
    pub feeds: Vec<Vec<(usize, i32)>>,
    /// Feed cells inserted.
    pub inserted_cells: usize,
    /// Chip widening in pitches (`F`).
    pub widened: i32,
}

/// Gap indices eligible for insertion in a row: between two cells where
/// not both neighbors are feed cells (so existing adjacent feed windows
/// are never split), plus the row ends.
fn eligible_gaps(circuit: &Circuit, placement: &Placement, row: usize) -> Vec<usize> {
    let cells = placement.rows()[row].cells();
    let is_feed = |i: usize| {
        circuit
            .library()
            .kind(circuit.cell(cells[i].cell).kind())
            .is_feed()
    };
    let mut gaps = vec![0];
    for g in 1..cells.len() {
        if !(is_feed(g - 1) && is_feed(g)) {
            gaps.push(g);
        }
    }
    gaps.push(cells.len());
    gaps.dedup();
    gaps
}

/// Inserts a group of `w` adjacent 1-pitch feed cells at gap `gap` of
/// `row`; returns the inserted cell ids.
fn insert_group<P: Probe>(
    circuit: &mut Circuit,
    placement: &mut Placement,
    row: usize,
    gap: usize,
    w: u32,
    counter: &mut usize,
    probe: &mut P,
) -> Vec<bgr_netlist::CellId> {
    let feed_kind = circuit
        .library()
        .kind_by_name("FEED1")
        .expect("assign_with_insertion checked FEED1 exists before any §4.3 insertion");
    let cells = placement.rows()[row].cells();
    let x = if gap == 0 {
        0
    } else if gap < cells.len() {
        cells[gap].x
    } else {
        // Append after the last cell's right edge.
        cells
            .last()
            .map(|pc| {
                pc.x + circuit
                    .library()
                    .kind(circuit.cell(pc.cell).kind())
                    .width_pitches() as i32
            })
            .unwrap_or(0)
    };
    let mut ids = Vec::with_capacity(w as usize);
    for k in 0..w {
        let id = circuit.add_feed_cell(format!("feedins{}", *counter), feed_kind);
        *counter += 1;
        placement.insert_cell_at_x(row, id, x + k as i32, 1);
        ids.push(id);
    }
    probe.event(TraceEvent::FeedCellsInserted {
        row: row as u32,
        x,
        width: w,
    });
    ids
}

/// Runs feedthrough assignment; on shortfall, inserts feed cells per
/// §4.3 and re-assigns with width flags. Iterates defensively until
/// success (the paper's construction succeeds on the first retry).
///
/// # Errors
///
/// [`RouteError::ReassignFailed`] if assignment still fails after
/// `max_iters` insertion rounds (an internal invariant violation).
pub fn assign_with_insertion<P: Probe>(
    circuit: &mut Circuit,
    placement: &mut Placement,
    order: &[NetId],
    pairs: &PairMap,
    max_iters: usize,
    probe: &mut P,
) -> Result<FeedPlan, RouteError> {
    let initial_width = placement.width_pitches();
    let mut inserted_cells = 0usize;
    let mut name_counter = 0usize;
    let mut slots = SlotStore::from_placement(circuit, placement);
    let mut outcome = assign_feedthroughs(
        circuit,
        placement,
        &mut slots,
        order,
        pairs,
        FlagPolicy::Ignore,
    );
    // Insertion is the only consumer of FEED1; a custom library without
    // it must fail structurally, not panic mid-insertion.
    if !outcome.failures.is_empty() && circuit.library().kind_by_name("FEED1").is_none() {
        return Err(RouteError::MissingFeedKind);
    }
    let mut iters = 0;
    while !outcome.failures.is_empty() {
        if iters >= max_iters {
            return Err(RouteError::ReassignFailed(outcome.failures[0].net));
        }
        iters += 1;
        // Record width flags of successful wide assignments by owning
        // feed cell, so they survive the x shifts of insertion.
        let mut flag_records: Vec<(usize, bgr_netlist::CellId, i32, u32)> = Vec::new();
        for (ni, ranges) in outcome.ranges.iter().enumerate() {
            let net = NetId::new(ni);
            let width = circuit.net(net).width_pitches()
                * if pairs.partner_of(net).is_some() {
                    2
                } else {
                    1
                };
            if width <= 1 {
                continue;
            }
            for range in ranges {
                for slot in range.iter() {
                    if let Some(owner) = slots.owner(slot) {
                        let offset = slots.x_of(slot) - placement.cell_loc(owner).x;
                        flag_records.push((slot.row as usize, owner, offset, width));
                    }
                }
            }
        }
        // Shortfalls per (row, width).
        let mut f_wr: HashMap<(usize, u32), u32> = HashMap::new();
        for s in &outcome.failures {
            *f_wr.entry((s.row, s.width)).or_default() += 1;
        }
        let mut f_r = vec![0u32; placement.num_rows()];
        for (&(row, w), &count) in &f_wr {
            f_r[row] += w * count;
        }
        let f_total = f_r.iter().copied().max().unwrap_or(0);
        // Insert per row: wide groups first (flagged w), then singles.
        let mut new_flags: Vec<(usize, bgr_netlist::CellId, u32)> = Vec::new();
        for row in 0..placement.num_rows() {
            let mut groups: Vec<u32> = Vec::new();
            let mut widths: Vec<u32> = f_wr
                .keys()
                .filter(|&&(r, w)| r == row && w > 1)
                .map(|&(_, w)| w)
                .collect();
            widths.sort_unstable_by(|a, b| b.cmp(a));
            for w in widths {
                for _ in 0..f_wr[&(row, w)] {
                    groups.push(w);
                }
            }
            let singles = f_wr.get(&(row, 1)).copied().unwrap_or(0) + f_total - f_r[row];
            groups.extend(std::iter::repeat_n(1u32, singles as usize));
            if groups.is_empty() {
                continue;
            }
            let total = groups.len();
            for (k, w) in groups.into_iter().enumerate() {
                // Spread groups evenly over the currently eligible gaps.
                let gaps = eligible_gaps(circuit, placement, row);
                let gi = ((k + 1) * gaps.len()) / (total + 1);
                let gap = gaps[gi.min(gaps.len() - 1)];
                let ids = insert_group(circuit, placement, row, gap, w, &mut name_counter, probe);
                inserted_cells += ids.len();
                if w > 1 {
                    for id in ids {
                        new_flags.push((row, id, w));
                    }
                }
            }
        }
        // Rebuild slots; re-apply flags by owner identity.
        slots = SlotStore::from_placement(circuit, placement);
        for (row, owner, offset, w) in flag_records {
            let cell_x = placement.cell_loc(owner).x;
            if let Some(slot) = slots.slot_of_cell(row, owner, offset, cell_x) {
                slots.set_flag(
                    bgr_layout::SlotRange {
                        row: slot.row,
                        start: slot.idx,
                        len: 1,
                    },
                    w,
                );
            }
        }
        for (row, owner, w) in new_flags {
            let cell_x = placement.cell_loc(owner).x;
            if let Some(slot) = slots.slot_of_cell(row, owner, 0, cell_x) {
                slots.set_flag(
                    bgr_layout::SlotRange {
                        row: slot.row,
                        start: slot.idx,
                        len: 1,
                    },
                    w,
                );
            }
        }
        outcome = assign_feedthroughs(
            circuit,
            placement,
            &mut slots,
            order,
            pairs,
            FlagPolicy::Respect,
        );
    }
    let AssignOutcome { feeds, .. } = outcome;
    // Grow the per-net feed table in case nets were processed but the
    // vector is shorter than the net count (it never is, but be safe).
    let widened = placement.width_pitches() - initial_width;
    Ok(FeedPlan {
        slots,
        feeds,
        inserted_cells,
        widened,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgr_layout::{Geometry, PlacementBuilder};
    use bgr_netlist::{CellLibrary, CircuitBuilder};

    /// Two nets that must each cross row 1, but only one slot exists.
    fn scarce() -> (Circuit, Placement, Vec<NetId>) {
        let lib = CellLibrary::ecl();
        let inv = lib.kind_by_name("INV").unwrap();
        let feed = lib.kind_by_name("FEED1").unwrap();
        let mut cb = CircuitBuilder::new(lib);
        let mut nets = Vec::new();
        let u_bot: Vec<_> = (0..2).map(|i| cb.add_cell(format!("b{i}"), inv)).collect();
        let u_mid = cb.add_cell("m0", inv);
        let u_top: Vec<_> = (0..2).map(|i| cb.add_cell(format!("t{i}"), inv)).collect();
        let f = cb.add_cell("f", feed);
        for i in 0..2 {
            nets.push(
                cb.add_net(
                    format!("n{i}"),
                    cb.cell_term(u_bot[i], "Y").unwrap(),
                    [cb.cell_term(u_top[i], "A").unwrap()],
                )
                .unwrap(),
            );
        }
        // A same-row net to keep u_mid connected (not strictly needed).
        cb.add_net(
            "nm",
            cb.cell_term(u_mid, "Y").unwrap(),
            [cb.cell_term(u_bot[0], "A").unwrap()],
        )
        .unwrap();
        let circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 3);
        pb.place_at(0, u_bot[0], 0, 3).unwrap();
        pb.place_at(0, u_bot[1], 4, 3).unwrap();
        pb.place_at(1, u_mid, 0, 3).unwrap();
        pb.place_at(1, f, 4, 1).unwrap();
        pb.place_at(2, u_top[0], 0, 3).unwrap();
        pb.place_at(2, u_top[1], 4, 3).unwrap();
        let placement = pb.finish(&circuit).unwrap();
        (circuit, placement, nets)
    }

    #[test]
    fn insertion_resolves_shortfall() {
        let (mut circuit, mut placement, nets) = scarce();
        let pairs = PairMap::build(&circuit);
        let order: Vec<NetId> = circuit.net_ids().collect();
        let cells_before = circuit.cells().len();
        let width_before = placement.width_pitches();
        let plan = assign_with_insertion(
            &mut circuit,
            &mut placement,
            &order,
            &pairs,
            5,
            &mut crate::probe::NoopProbe,
        )
        .unwrap();
        // Both crossing nets got a feed in row 1.
        for &n in &nets {
            assert_eq!(plan.feeds[n.index()].len(), 1, "net {n} crossed row 1");
            assert_eq!(plan.feeds[n.index()][0].0, 1);
        }
        assert!(plan.inserted_cells >= 1);
        assert_eq!(circuit.cells().len(), cells_before + plan.inserted_cells);
        assert!(placement.width_pitches() > width_before);
        assert_eq!(plan.widened, placement.width_pitches() - width_before);
        // Placement still valid with the new cells.
        placement.validate(&circuit).unwrap();
    }

    #[test]
    fn no_shortfall_means_no_insertion() {
        let (mut circuit, mut placement, _) = scarce();
        // Only route one of the crossing nets: the single slot suffices.
        let pairs = PairMap::build(&circuit);
        let order = vec![NetId::new(0)];
        let plan = assign_with_insertion(
            &mut circuit,
            &mut placement,
            &order,
            &pairs,
            5,
            &mut crate::probe::NoopProbe,
        )
        .unwrap();
        assert_eq!(plan.inserted_cells, 0);
        assert_eq!(plan.widened, 0);
        assert_eq!(plan.feeds[0], vec![(1, 4)]);
    }

    #[test]
    fn missing_feed_kind_is_a_structured_error() {
        // The scarce topology again, but with a custom library that has
        // no FEED1 (and no pre-placed feed cell): insertion is needed
        // and must fail with MissingFeedKind rather than panic.
        let mut lib = CellLibrary::new();
        let inv = lib.add(
            bgr_netlist::CellKind::builder("INV", 3)
                .input("A", 5.0, 0)
                .output("Y", 2)
                .arc("A", "Y", 60.0)
                .fanin_delay(2.5)
                .load_delay(0.45)
                .build(),
        );
        let mut cb = CircuitBuilder::new(lib);
        let u_bot: Vec<_> = (0..2).map(|i| cb.add_cell(format!("b{i}"), inv)).collect();
        let u_mid = cb.add_cell("m0", inv);
        let u_top: Vec<_> = (0..2).map(|i| cb.add_cell(format!("t{i}"), inv)).collect();
        for i in 0..2 {
            cb.add_net(
                format!("n{i}"),
                cb.cell_term(u_bot[i], "Y").unwrap(),
                [cb.cell_term(u_top[i], "A").unwrap()],
            )
            .unwrap();
        }
        cb.add_net(
            "nm",
            cb.cell_term(u_mid, "Y").unwrap(),
            [cb.cell_term(u_bot[0], "A").unwrap()],
        )
        .unwrap();
        let mut circuit = cb.finish().unwrap();
        let mut pb = PlacementBuilder::new(Geometry::default(), 3);
        pb.place_at(0, u_bot[0], 0, 3).unwrap();
        pb.place_at(0, u_bot[1], 4, 3).unwrap();
        pb.place_at(1, u_mid, 0, 3).unwrap();
        pb.place_at(2, u_top[0], 0, 3).unwrap();
        pb.place_at(2, u_top[1], 4, 3).unwrap();
        let mut placement = pb.finish(&circuit).unwrap();
        let pairs = PairMap::build(&circuit);
        let order: Vec<NetId> = circuit.net_ids().collect();
        let err = assign_with_insertion(
            &mut circuit,
            &mut placement,
            &order,
            &pairs,
            5,
            &mut crate::probe::NoopProbe,
        )
        .unwrap_err();
        assert!(matches!(err, RouteError::MissingFeedKind), "{err:?}");
    }

    use bgr_layout::Placement;
    use bgr_netlist::Circuit;
}
