//! Error type for global routing.

use bgr_netlist::{NetId, NetlistError};
use bgr_timing::TimingError;

/// Errors produced by [`crate::GlobalRouter::route`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// A net's routing graph is disconnected even after feed-cell
    /// insertion — the placement offers no path between its terminals.
    DisconnectedNet(NetId),
    /// The circuit failed validation.
    Netlist(NetlistError),
    /// Constraint-graph construction failed.
    Timing(TimingError),
    /// The placement failed validation.
    Layout(bgr_layout::LayoutError),
    /// Feedthrough re-assignment failed after feed-cell insertion; this
    /// indicates an internal invariant violation (§4.3 guarantees
    /// success).
    ReassignFailed(NetId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DisconnectedNet(n) => write!(f, "routing graph of net {n} is disconnected"),
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::Timing(e) => write!(f, "timing error: {e}"),
            Self::Layout(e) => write!(f, "layout error: {e}"),
            Self::ReassignFailed(n) => {
                write!(f, "feedthrough re-assignment failed for net {n}")
            }
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::Timing(e) => Some(e),
            Self::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for RouteError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

impl From<TimingError> for RouteError {
    fn from(e: TimingError) -> Self {
        Self::Timing(e)
    }
}

impl From<bgr_layout::LayoutError> for RouteError {
    fn from(e: bgr_layout::LayoutError) -> Self {
        Self::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impl_and_source() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RouteError>();
        let e = RouteError::from(NetlistError::EmptyNet(NetId::new(1)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("netlist error"));
    }
}
