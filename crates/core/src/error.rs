//! Error type for global routing.

use bgr_netlist::{NetId, NetlistError};
use bgr_timing::TimingError;

use crate::result::ViolationReport;

/// Errors produced by [`crate::GlobalRouter::route`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// A net's routing graph is disconnected even after feed-cell
    /// insertion — the placement offers no path between its terminals.
    DisconnectedNet(NetId),
    /// The circuit failed validation.
    Netlist(NetlistError),
    /// Constraint-graph construction failed.
    Timing(TimingError),
    /// The placement failed validation.
    Layout(bgr_layout::LayoutError),
    /// Feedthrough re-assignment failed after feed-cell insertion; this
    /// indicates an internal invariant violation (§4.3 guarantees
    /// success).
    ReassignFailed(NetId),
    /// Feed-cell insertion (§4.3) was needed but the circuit's cell
    /// library has no `FEED1` kind to insert. Reachable with a custom
    /// [`bgr_netlist::CellLibrary`]; the stock ECL library always
    /// provides it.
    MissingFeedKind,
    /// §3.5 phase-1 recovery exhausted its passes with constraints still
    /// violated and [`crate::config::OnViolation::Fail`] was requested.
    /// The report carries the full residual state; switching to
    /// [`crate::config::OnViolation::BestEffort`] returns the same
    /// report attached to a completed [`crate::Routed`] instead.
    ConstraintsUnsatisfied(ViolationReport),
    /// An internal invariant panicked inside
    /// [`crate::GlobalRouter::route_checked`]'s isolation boundary.
    /// `phase` names the pipeline phase that was active (or `"setup"`
    /// before the first phase marker); `message` is the panic payload.
    Internal {
        /// Stable label of the active phase (see `Phase::label`).
        phase: &'static str,
        /// The original panic message.
        message: String,
    },
    /// A serving-layer slice deadline expired before the slice could
    /// run (`bgr-serve`'s `QueuePolicy`): the job is abandoned with
    /// this structured verdict instead of consuming further budget.
    /// `budget_ms` is the configured per-job budget (0 when the expiry
    /// was detected remotely, where the original budget is unknown).
    DeadlineExpired {
        /// Configured wall-clock budget in milliseconds.
        budget_ms: u64,
    },
    /// A checkpoint could not be restored into a live session: version
    /// skew, a truncated or corrupted file, or serialized state
    /// inconsistent with the embedded design (wrong mask lengths, a
    /// disconnected alive set). Restoring never panics on bad input —
    /// it degrades to this variant (DESIGN.md §13).
    Checkpoint {
        /// What was wrong with the checkpoint.
        message: String,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DisconnectedNet(n) => write!(f, "routing graph of net {n} is disconnected"),
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::Timing(e) => write!(f, "timing error: {e}"),
            Self::Layout(e) => write!(f, "layout error: {e}"),
            Self::ReassignFailed(n) => {
                write!(f, "feedthrough re-assignment failed for net {n}")
            }
            Self::MissingFeedKind => {
                write!(
                    f,
                    "feed-cell insertion required but the library has no FEED1 kind"
                )
            }
            Self::ConstraintsUnsatisfied(report) => {
                write!(f, "recovery exhausted: {report}")
            }
            Self::Internal { phase, message } => {
                write!(f, "internal error during {phase}: {message}")
            }
            Self::DeadlineExpired { budget_ms } => {
                write!(f, "slice deadline expired (budget {budget_ms} ms)")
            }
            Self::Checkpoint { message } => {
                write!(f, "checkpoint rejected: {message}")
            }
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::Timing(e) => Some(e),
            Self::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for RouteError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

impl From<TimingError> for RouteError {
    fn from(e: TimingError) -> Self {
        Self::Timing(e)
    }
}

impl From<bgr_layout::LayoutError> for RouteError {
    fn from(e: bgr_layout::LayoutError) -> Self {
        Self::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impl_and_source() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<RouteError>();
        let e = RouteError::from(NetlistError::EmptyNet(NetId::new(1)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("netlist error"));
    }

    #[test]
    fn internal_and_violation_variants_display() {
        let e = RouteError::Internal {
            phase: "initial_routing",
            message: "edge already dead".into(),
        };
        assert!(e.to_string().contains("initial_routing"));
        assert!(e.to_string().contains("edge already dead"));
        let e = RouteError::ConstraintsUnsatisfied(ViolationReport::default());
        assert!(e.to_string().contains("recovery exhausted"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
